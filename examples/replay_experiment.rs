//! A miniature of the paper's main experiment.
//!
//! Generates a small synthetic user cohort, replays every trace twice
//! against the same database — normal vs. speculative processing — and
//! prints the improvement table, exactly the methodology behind the
//! paper's Figure 4 (at toy scale; the full experiment is
//! `cargo bench --bench single_user`).
//!
//! Run with: `cargo run --release --example replay_experiment`

use specdb::obs::Observer;
use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::report::{
    bucketize, improvement, pair_runs, render_rows, render_speculation_summary, SpeculationSummary,
};
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::trace::{UserModel, UserModelConfig};

fn main() {
    let spec =
        DatasetSpec { label: "demo-100MB", nominal_mb: 100, buffer_mb: 32, divisor: 100, seed: 42 };
    println!(
        "building {} base (actual {} MB, buffer {} pages, clock x{})...",
        spec.label,
        spec.actual_mb(),
        spec.buffer_pages(),
        spec.divisor
    );
    let base = build_base_db(&spec).expect("base db");

    let model = UserModel::new(
        UserModelConfig { queries: 15, questions: 3, ..Default::default() },
        specdb::tpch::ExploreDomain::tpch(),
    );
    let traces = model.generate_cohort(4, 7);
    println!("replaying {} traces x {} queries, twice each...", traces.len(), 15);

    // One enabled observer shared across the speculative replays so the
    // report can quote hit rate, waste, and cost-model calibration.
    let observer = Observer::enabled();
    let mut pairs = Vec::new();
    let mut outcomes = Vec::new();
    for trace in &traces {
        let mut db_n = base.clone();
        let normal = replay_trace(&mut db_n, trace, &ReplayConfig::normal()).expect("normal");
        let mut db_s = base.clone();
        db_s.set_observer(observer.clone());
        let spec_run =
            replay_trace(&mut db_s, trace, &ReplayConfig::speculative()).expect("speculative");
        pairs.extend(pair_runs(&normal.queries, &spec_run.queries).expect("replays must align"));
        outcomes.push(spec_run);
    }

    let rows = bucketize(&pairs, 0.0, 60.0, 5.0, 2);
    println!("\n{}", render_rows("improvement by execution-time bucket", &rows, true));
    println!(
        "overall improvement: {:+.1}% over {} queries",
        improvement(&pairs) * 100.0,
        pairs.len(),
    );
    let summary = SpeculationSummary::from_outcomes(&outcomes);
    println!("\n{}", render_speculation_summary(&summary, Some(observer.calibration())));
}
