//! A miniature of the paper's main experiment.
//!
//! Generates a small synthetic user cohort, replays every trace twice
//! against the same database — normal vs. speculative processing — and
//! prints the improvement table, exactly the methodology behind the
//! paper's Figure 4 (at toy scale; the full experiment is
//! `cargo bench --bench single_user`).
//!
//! Run with: `cargo run --release --example replay_experiment`

use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::report::{bucketize, improvement, pair_runs, render_rows};
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::trace::{UserModel, UserModelConfig};

fn main() {
    let spec = DatasetSpec {
        label: "demo-100MB",
        nominal_mb: 100,
        buffer_mb: 32,
        divisor: 100,
        seed: 42,
    };
    println!(
        "building {} base (actual {} MB, buffer {} pages, clock x{})...",
        spec.label,
        spec.actual_mb(),
        spec.buffer_pages(),
        spec.divisor
    );
    let base = build_base_db(&spec).expect("base db");

    let model = UserModel::new(
        UserModelConfig { queries: 15, questions: 3, ..Default::default() },
        specdb::tpch::ExploreDomain::tpch(),
    );
    let traces = model.generate_cohort(4, 7);
    println!("replaying {} traces x {} queries, twice each...", traces.len(), 15);

    let mut pairs = Vec::new();
    let mut issued = 0;
    let mut completed = 0;
    for trace in &traces {
        let mut db_n = base.clone();
        let normal = replay_trace(&mut db_n, trace, &ReplayConfig::normal()).expect("normal");
        let mut db_s = base.clone();
        let spec_run =
            replay_trace(&mut db_s, trace, &ReplayConfig::speculative()).expect("speculative");
        issued += spec_run.issued;
        completed += spec_run.completed;
        pairs.extend(pair_runs(&normal.queries, &spec_run.queries));
    }

    let rows = bucketize(&pairs, 0.0, 60.0, 5.0, 2);
    println!("\n{}", render_rows("improvement by execution-time bucket", &rows, true));
    println!(
        "overall improvement: {:+.1}% over {} queries ({} manipulations issued, {} completed)",
        improvement(&pairs) * 100.0,
        pairs.len(),
        issued,
        completed
    );
}
