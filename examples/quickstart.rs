//! Quickstart: the paper's introduction example, end to end.
//!
//! A user explores an `employee` table through a visual interface. While
//! they are still formulating `SELECT name FROM employee WHERE age < 30`,
//! the system speculatively materializes `σ(age<30)(employee)`; when GO
//! arrives, the query is rewritten onto the materialized relation and
//! reads a fraction of the pages.
//!
//! Run with: `cargo run --release --example quickstart`

use specdb::exec::CancelToken;
use specdb::prelude::*;

fn main() {
    // 1. A database with one relation, employee(name, age, salary).
    let mut db = Database::new(specdb::exec::DatabaseConfig::with_buffer_pages(512));
    db.create_table(
        "employee",
        Schema::new(vec![
            ColumnDef::new("name", specdb::catalog::DataType::Str),
            ColumnDef::new("age", specdb::catalog::DataType::Int),
            ColumnDef::new("salary", specdb::catalog::DataType::Int),
        ]),
    )
    .expect("create table");
    db.load(
        "employee",
        (0..50_000i64).map(|i| {
            Tuple::new(vec![
                Value::Str(format!("employee-{i:05}")),
                Value::Int(20 + (i * 7) % 45),
                Value::Int(30_000 + (i * 13) % 90_000),
            ])
        }),
    )
    .expect("load");
    println!("loaded employee: {} rows", db.catalog().table("employee").unwrap().stats.rows);

    // 2. The final query the user has in mind (parsed from SQL).
    let query = parse_sql(&db, "SELECT name FROM employee WHERE age < 30").expect("parse");

    // 3. Normal processing: cold buffer, sequential scan.
    db.clear_buffer();
    let normal = db.execute(&query).expect("normal execution");
    println!(
        "normal processing:      {:>8} rows in {} ({} pages read)",
        normal.row_count,
        normal.elapsed,
        normal.demand.disk_reads()
    );

    // 4. Think time: the preview already shows `age < 30`, so the system
    //    issues the materialization the paper's introduction describes:
    //    SELECT * FROM employee WHERE age<30 INTO TABLE young_employee.
    let mut preview = QueryGraph::new();
    preview.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30i64)));
    let mat = db.materialize(&preview, CancelToken::new()).expect("materialize");
    println!("speculative mat.:       {:>8} rows into {} in {}", mat.rows, mat.table, mat.elapsed);

    // 5. GO: the same query now rewrites onto the materialized relation.
    db.clear_buffer();
    let speculative = db.execute(&query).expect("speculative execution");
    println!(
        "speculative processing: {:>8} rows in {} ({} pages read, via {})",
        speculative.row_count,
        speculative.elapsed,
        speculative.demand.disk_reads(),
        speculative.used_views.join(", ")
    );
    assert_eq!(normal.row_count, speculative.row_count, "same answer either way");

    let improvement = 1.0 - speculative.elapsed.as_secs_f64() / normal.elapsed.as_secs_f64();
    println!("improvement:            {:>7.1}%", improvement * 100.0);
    println!("\nplan used:\n{}", speculative.plan);
}
