//! Two concurrent wire-protocol sessions sharing one speculative
//! artifact — the serving layer's headline demo.
//!
//! The example boots `specdb::serve::serve()` on a loopback port, then
//! scripts two line-protocol clients against it:
//!
//! 1. **alice** formulates `lineitem WHERE l_quantity <= 2` edit by
//!    edit. During her think time the speculator materializes the
//!    predicate on a background build thread (admitted by the fleet
//!    governor, installed into the shared artifact cache).
//! 2. **bob** converges on the same question. His GO never builds
//!    anything: the planner rewrites his query over alice's artifact
//!    and the response reports `"shared_hit": true`.
//!
//! Run it with:
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The full protocol grammar is documented in `docs/serving.md`.

use serde_json::{parse, Value};
use specdb::serve::{serve, ServeConfig};
use specdb::sim::{build_base_db, DatasetSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A minimal line-protocol client: one request line out, one JSON
/// response line back.
struct Client {
    name: &'static str,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(name: &'static str, addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve()");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut c = Client { name, writer: stream, reader };
        c.send(&format!("CONNECT {name}"));
        c
    }

    fn send(&mut self, line: &str) -> Value {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        println!("  {:>5} > {line}", self.name);
        println!("  {:>5} < {}", self.name, reply.trim());
        let v = parse(reply.trim()).unwrap_or_else(|e| panic!("bad JSON for {line:?}: {e}"));
        assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line} failed: {reply}");
        v
    }

    /// Quietly poll STATS until the shared cache holds a ready artifact.
    fn wait_for_artifact(&mut self) {
        for _ in 0..500 {
            let stats = self.send("STATS");
            if as_u64(field(field(&stats, "cache"), "ready")) >= 1 {
                return;
            }
            // A benign no-op edit gives the speculator another decision
            // point while the background build finishes.
            self.send("EDIT ADD_RELATION lineitem");
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("speculative build never installed");
    }
}

fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {name:?} in {v:?}")),
        other => panic!("expected object with {name:?}, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(u) => *u,
        Value::I64(i) => *i as u64,
        other => panic!("expected integer, got {other:?}"),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::F64(f) => *f,
        Value::U64(u) => *u as f64,
        Value::I64(i) => *i as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

fn main() {
    println!("== specdb serve demo: two sessions, one speculative artifact ==\n");
    println!("building the base database...");
    let db = build_base_db(&DatasetSpec::tiny()).expect("base db");
    let handle = serve(db, ServeConfig::default()).expect("bind loopback listener");
    let addr = handle.addr();
    println!("serving on {addr}\n");

    println!("-- alice formulates the query; the speculator works in her think time --");
    let mut alice = Client::connect("alice", addr);
    alice.send("EDIT ADD_RELATION lineitem");
    alice.send("EDIT ADD_SELECTION lineitem l_quantity <= 2");
    alice.wait_for_artifact();
    let go1 = alice.send("GO");
    let rows = as_u64(field(&go1, "rows"));
    assert!(rows > 0, "the predicate must match rows");
    assert_eq!(field(&go1, "shared_hit"), &Value::Bool(false));
    println!("\nalice's GO answered {rows} rows from her own speculative build.\n");

    println!("-- bob asks the same question; his GO reuses alice's artifact --");
    let mut bob = Client::connect("bob", addr);
    bob.send("EDIT ADD_RELATION lineitem");
    bob.send("EDIT ADD_SELECTION lineitem l_quantity <= 2");
    let go2 = bob.send("GO");
    assert_eq!(as_u64(field(&go2, "rows")), rows, "same query, same answer");
    assert_eq!(
        field(&go2, "shared_hit"),
        &Value::Bool(true),
        "bob's plan must read alice's artifact"
    );
    println!("\nbob's GO answered {rows} rows as a cross-session shared hit.\n");

    let stats = bob.send("STATS");
    let cache = field(&stats, "cache");
    println!(
        "\nfleet: {} sessions, {} shared hit(s), cross-session reuse {:.0}%",
        as_u64(field(&stats, "sessions")),
        as_u64(field(cache, "shared_hits")),
        as_f64(field(cache, "cross_session_reuse")) * 100.0,
    );

    bob.send("QUIT");
    alice.send("QUIT");
    handle.shutdown();
    println!("\ndemo complete: the second session answered without building anything.");
}
