//! A live speculative session over the TPC-H subset.
//!
//! Drives the embeddable runtime ([`specdb::core::SpeculativeSession`])
//! the way a visual query builder would: edits arrive one at a time with
//! real think-time pauses between them, a background thread runs the
//! speculator's chosen manipulations, and GO executes the final query —
//! rewritten onto whatever speculation managed to prepare.
//!
//! Run with: `cargo run --release --example exploratory_session`

use specdb::core::{SpeculativeSession, SpeculatorConfig};
use specdb::exec::{Database, DatabaseConfig};
use specdb::prelude::*;
use specdb::tpch::{generate_into, TpchConfig};
use std::thread::sleep;
use std::time::Duration;

fn main() {
    println!("generating 8MB skewed TPC-H subset...");
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(4096));
    generate_into(&mut db, &TpchConfig::new(8)).expect("generate");
    db.clear_buffer();

    let mut session = SpeculativeSession::new(db, SpeculatorConfig::default());

    // The user explores: which French customers place urgent orders?
    println!("user: placing `customer` on the canvas");
    session.edit(EditOp::AddRelation("customer".into()));
    think(&mut session, 300);

    println!("user: filtering c_nation = 'FRANCE'");
    session.edit(EditOp::AddSelection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "FRANCE"),
    )));
    think(&mut session, 700); // speculation materializes σ(nation)(customer)

    println!("user: joining in `orders`");
    session.edit(EditOp::AddJoin(specdb::query::Join::new(
        "orders",
        "o_custkey",
        "customer",
        "c_custkey",
    )));
    think(&mut session, 700);

    println!("user: filtering o_orderpriority <= 2");
    session.edit(EditOp::AddSelection(Selection::new(
        "orders",
        Predicate::new("o_orderpriority", CompareOp::Le, 2i64),
    )));
    think(&mut session, 800);

    println!("user: GO");
    let out = session.go().expect("final query");
    println!(
        "  -> {} rows in {} (virtual), plan used views: [{}]",
        out.row_count,
        out.elapsed,
        out.used_views.join(", ")
    );

    // A follow-up query in the same session reuses surviving views.
    println!("user: tightening to o_orderpriority = 1, GO again");
    session.edit(EditOp::UpdateSelection {
        old: Selection::new("orders", Predicate::new("o_orderpriority", CompareOp::Le, 2i64)),
        new: Selection::new("orders", Predicate::new("o_orderpriority", CompareOp::Eq, 1i64)),
    });
    think(&mut session, 600);
    let out2 = session.go().expect("second query");
    println!(
        "  -> {} rows in {} (virtual), plan used views: [{}]",
        out2.row_count,
        out2.elapsed,
        out2.used_views.join(", ")
    );

    let stats = session.stats();
    println!(
        "\nsession stats: issued={} completed={} cancelled={} queries={} gc'd={}",
        stats.issued, stats.completed, stats.cancelled, stats.queries, stats.collected
    );
    session.finish();
}

/// Let the background speculation worker make progress, like a user
/// pausing to think.
fn think(session: &mut SpeculativeSession, ms: u64) {
    sleep(Duration::from_millis(ms));
    let _ = session; // the worker runs on its own thread; nothing to poll
}
