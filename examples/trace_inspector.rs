//! Record/replay trace files, as the paper's modified SQUID produced.
//!
//! Generates a cohort, saves it to JSON, loads it back, and prints the
//! Section 5 behaviour statistics plus a peek inside one formulation —
//! useful when tuning the user model or inspecting what the Learner sees.
//!
//! Run with: `cargo run --release --example trace_inspector [out.json]`

use specdb::query::EditOp;
use specdb::trace::{format, TraceStats, UserModel};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir().join("specdb-traces.json").to_string_lossy().into_owned()
    });
    let traces = UserModel::default().generate_cohort(15, 2026);
    format::save(&path, &traces).expect("save traces");
    println!("wrote {} traces to {path}", traces.len());

    let restored = format::load(&path).expect("load traces");
    assert_eq!(traces, restored, "round trip must be exact");

    let stats = TraceStats::compute(&restored);
    println!("\n{}", stats.think_time_table());
    println!(
        "\nqueries/trace {:.1} | selections/query {:.2} | relations/query {:.2}",
        stats.queries_per_trace, stats.selections_per_query, stats.relations_per_query
    );
    println!(
        "selection persistence {:.2} queries | join persistence {:.2} queries",
        stats.selection_persistence, stats.join_persistence
    );

    // Peek inside the first user's second formulation.
    let trace = &restored[0];
    let formulations = trace.formulations();
    let f = &formulations[1];
    println!("\nuser {}, query #2 ({} edits over {}):", trace.user, f.edits.len(), f.duration());
    for te in f.edits {
        let desc = match &te.op {
            EditOp::AddRelation(r) => format!("+ relation {r}"),
            EditOp::RemoveRelation(r) => format!("- relation {r}"),
            EditOp::AddSelection(s) => format!("+ selection {s}"),
            EditOp::RemoveSelection(s) => format!("- selection {s}"),
            EditOp::UpdateSelection { old, new } => format!("~ selection {old} -> {new}"),
            EditOp::AddJoin(j) => format!("+ join {j}"),
            EditOp::RemoveJoin(j) => format!("- join {j}"),
            EditOp::AddProjection(r, c) => format!("+ project {r}.{c}"),
            EditOp::RemoveProjection(r, c) => format!("- project {r}.{c}"),
            EditOp::Go => "GO".to_string(),
        };
        println!("  [{:>8}] {desc}", format!("{}", te.at));
    }
    println!("final SQL: {}", specdb::query::sql::to_sql(&f.final_query));
}
