//! An interactive SQL shell with live speculation.
//!
//! Reads SQL from stdin against a generated TPC-H subset. Every query's
//! WHERE clause acts as the "visual canvas": after answering, the shell
//! feeds the query's parts to the speculative session as edits, so think
//! time between queries prepares the database for the next one — type a
//! similar follow-up query and watch `used views` light up.
//!
//! Commands: plain SQL, `\views`, `\stats`, `\explain <sql>`, `\quit`.
//!
//! Run with: `cargo run --release --example sql_shell`
//! (pipe a script: `echo "SELECT * FROM customer WHERE c_nation='PERU'" | cargo run --release --example sql_shell`)

use specdb::core::{SpeculativeSession, SpeculatorConfig};
use specdb::exec::{Database, DatabaseConfig};
use specdb::prelude::*;
use specdb::tpch::{generate_into, TpchConfig};
use std::io::{BufRead, Write};

fn main() {
    println!(
        "generating 8MB skewed TPC-H subset (customer/orders/lineitem/part/partsupp/supplier)..."
    );
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(4096));
    generate_into(&mut db, &TpchConfig::new(8)).expect("generate");
    db.clear_buffer();
    let mut session = SpeculativeSession::new(db, SpeculatorConfig::default());
    println!(
        "ready. SQL (conjunctive SELECT-FROM-WHERE), \\views, \\stats, \\explain <sql>, \\quit"
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("specdb> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\quit" | "\\q" => break,
            "\\views" => {
                session.with_db(|db| {
                    if db.views().is_empty() {
                        println!("(no materialized views)");
                    }
                    for v in db.views().iter() {
                        let rows = db.catalog().table(&v.name).map(|t| t.stats.rows).unwrap_or(0);
                        println!("{}  {} rows  := {}", v.name, rows, v.graph);
                    }
                });
                continue;
            }
            "\\stats" => {
                let s = session.stats();
                println!(
                    "manipulations: issued={} completed={} cancelled={} | queries={} | gc'd={}",
                    s.issued, s.completed, s.cancelled, s.queries, s.collected
                );
                continue;
            }
            _ => {}
        }
        let (explain_only, sql) = match line.strip_prefix("\\explain ") {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let parsed = session.with_db(|db| parse_sql(db, sql));
        let query = match parsed {
            Ok(q) => q,
            Err(e) => {
                println!("parse error: {e}");
                continue;
            }
        };
        if explain_only {
            // Plan without executing.
            let plan = session.with_db(|db| {
                db.estimate_query_time(&query).map(|t| {
                    let out = db.execute_discard(&query); // executes to show the real plan
                    (t, out)
                })
            });
            match plan {
                Ok((est, Ok(out))) => {
                    println!("estimated: {est}  measured: {}\n{}", out.elapsed, out.plan)
                }
                Ok((_, Err(e))) | Err(e) => println!("plan error: {e}"),
            }
            continue;
        }
        // Feed the query's parts as canvas edits (training + speculation),
        // then GO.
        for rel in query.graph.relations() {
            session.edit(EditOp::AddRelation(rel.to_string()));
        }
        for j in query.graph.joins() {
            session.edit(EditOp::AddJoin(j.clone()));
        }
        for s in query.graph.selections() {
            session.edit(EditOp::AddSelection(s.clone()));
        }
        for (rel, col) in &query.projections {
            session.edit(EditOp::AddProjection(rel.clone(), col.clone()));
        }
        match session.go_with(&query) {
            Ok(outp) => {
                for row in outp.rows.iter().take(10) {
                    let cells: Vec<String> = row.values().iter().map(|v| format!("{v}")).collect();
                    println!("{}", cells.join(" | "));
                }
                if outp.row_count > 10 {
                    println!("... ({} rows total)", outp.row_count);
                }
                println!(
                    "{} rows in {} (virtual){}",
                    outp.row_count,
                    outp.elapsed,
                    if outp.used_views.is_empty() {
                        String::new()
                    } else {
                        format!(", used views: {}", outp.used_views.join(", "))
                    }
                );
            }
            Err(e) => println!("execution error: {e}"),
        }
        // Reset the canvas for the next query (each shell query is a
        // fresh formulation; views persist per the GC heuristic).
        let rels: Vec<String> = session.partial().relations().map(str::to_string).collect();
        for r in rels {
            session.edit(EditOp::RemoveRelation(r));
        }
    }
    println!("bye");
    session.finish();
}
