//! The life of every speculative bet in one trace, as data.
//!
//! Replays a single exploration trace with full observability switched
//! on: every speculation-lifecycle event (decision, start, cancel,
//! completion, used-at-GO, wasted) streams to a JSONL file stamped in
//! virtual time; the tracer's spans are exported as Chrome/Perfetto
//! `trace_event` JSON and rendered as a self-contained HTML timeline
//! dashboard (lanes for edits, builds colored used/wasted/cancelled,
//! queries, and worker occupancy); and the run ends with a per-operator
//! profile table, the metrics registry's counter/histogram summary, and
//! the speculator's prediction-calibration report.
//!
//! Run with: `cargo run --release --example speculation_timeline`
//! (optional first argument: path for the JSONL event log, default
//! `target/speculation_timeline.jsonl`; the Perfetto trace and HTML
//! dashboard are written next to it with `.trace.json` and `.html`
//! extensions).

use specdb::obs::events::parse_jsonl;
use specdb::obs::span::validate_chrome_trace;
use specdb::obs::{Event, JsonlSink, Observer, Tracer};
use specdb::sim::dashboard::render_timeline_html;
use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::report::{
    render_operator_profiles, render_speculation_summary, SpeculationSummary,
};
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::trace::{UserModel, UserModelConfig};
use std::sync::Arc;

fn describe(event: &Event) -> Option<String> {
    Some(match event {
        Event::SpecDecision { manipulation, score, predicted_build_secs, .. } => format!(
            "decide   {manipulation} (score {score:.3}, predicted build {predicted_build_secs:.2}s)"
        ),
        Event::SpecStarted { manipulation, table } => {
            format!("start    {manipulation} -> {table}")
        }
        Event::SpecCancelled { manipulation, reason, .. } => {
            format!("cancel   {manipulation} ({reason:?})")
        }
        Event::SpecCompleted { table, build_secs, .. } => {
            format!("complete {table} (built in {build_secs:.2}s)")
        }
        Event::SpecUsed { table } => format!("used     {table} by the GO query"),
        Event::SpecWasted { table } => format!("wasted   {table} (never read)"),
        Event::SpecCollected { table } => format!("gc       {table}"),
        _ => return None,
    })
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/speculation_timeline.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create log directory");
    }

    let spec = DatasetSpec::tiny();
    println!("building {} base database...", spec.label);
    let base = build_base_db(&spec).expect("base db");

    let sink = Arc::new(JsonlSink::create(&path).expect("create event log"));
    let observer = Observer::enabled().with_sink(sink.clone()).with_tracer(Tracer::enabled());
    let mut db = base.clone();
    db.set_observer(observer.clone());

    let seed = std::env::var("SPECDB_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    // A hurried user: think gaps comparable to build times, so the
    // timeline shows cancellations as well as completed-and-used bets.
    let model = UserModel::new(
        UserModelConfig {
            queries: 12,
            questions: 3,
            think_median_secs: 0.2,
            think_min_secs: 0.05,
            think_max_secs: 2.0,
            ..Default::default()
        },
        specdb::tpch::ExploreDomain::tpch(),
    );
    let trace = model.generate("explorer", seed);
    println!("replaying {} timed edits with speculation on...\n", trace.edits.len());
    let outcome = replay_trace(&mut db, &trace, &ReplayConfig::speculative()).expect("replay");
    sink.flush().expect("flush event log");

    // Replay the event log back as a human-readable timeline.
    let log = std::fs::read_to_string(&path).expect("read event log");
    let events = parse_jsonl(&log).expect("parse event log");
    println!("## Speculation timeline ({} events total, log at {path})", events.len());
    for timed in &events {
        if let Some(line) = describe(&timed.event) {
            println!("  t={:8.2}s  {line}", timed.t_micros as f64 / 1e6);
        }
    }

    // Export the tracer's spans: Perfetto trace + HTML dashboard.
    let tracer = observer.tracer();
    let spans = tracer.spans();
    let stem = path.strip_suffix(".jsonl").unwrap_or(&path);
    let trace_path = format!("{stem}.trace.json");
    let chrome = tracer.to_chrome_trace();
    let n = validate_chrome_trace(&chrome).expect("trace JSON must satisfy the schema");
    std::fs::write(&trace_path, &chrome).expect("write Perfetto trace");
    println!("\nwrote {n} trace events to {trace_path} (open in ui.perfetto.dev)");

    let html_path = format!("{stem}.html");
    let timed: Vec<(u64, Event)> = events.iter().map(|t| (t.t_micros, t.event.clone())).collect();
    let html = render_timeline_html(
        &format!("speculation timeline — {} / seed {seed}", spec.label),
        &timed,
        &spans,
    );
    std::fs::write(&html_path, html).expect("write timeline dashboard");
    println!("wrote timeline dashboard to {html_path}");

    println!();
    print!("{}", render_operator_profiles(&tracer.operator_profiles()));

    println!();
    let summary = SpeculationSummary::from_outcomes(std::slice::from_ref(&outcome));
    print!("{}", render_speculation_summary(&summary, Some(observer.calibration())));

    println!("\n## Metrics");
    print!("{}", observer.metrics().snapshot().render());
    println!(
        "\nspans recorded: {} (dropped {}), sink events dropped: {}",
        spans.len(),
        tracer.dropped(),
        sink.dropped()
    );
}
