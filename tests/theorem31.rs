//! Property-based validation of Theorem 3.1.
//!
//! The paper's central analytical result: if the cost function satisfies
//! **P1 (containment dependence)** — a materialization only affects
//! queries containing it — and **P2 (linearity)** — the cost of a union
//! of disjoint sub-queries is the sum of their costs — then minimizing
//! the expected cost over the (finite, here) universe of final queries,
//!
//! ```text
//! Cost(m) = Σ_q f(q) · cost(q, m)
//! ```
//!
//! is equivalent to minimizing the local quantity
//!
//! ```text
//! Cost⊆(m) = f⊆(qm) · (cost(qm, m) − cost(qm, m∅)),
//! f⊆(qm) = Σ_{q ⊇ qm} f(q).
//! ```
//!
//! We construct random universes of conjunctive queries from random
//! atomic parts, random probabilities, and a random P1/P2-satisfying
//! cost function, and check the two minimizations agree.

use proptest::prelude::*;
use specdb::prelude::*;
use specdb::query::Join;

/// Atomic parts the universes draw from. Each selection is on its own
/// relation so parts are pairwise disjoint, which keeps every subset of
/// parts a valid "disjoint union" decomposition (the setting of P2).
fn parts_pool() -> Vec<QueryGraph> {
    let rels = ["R", "S", "T", "U"];
    let mut out = Vec::new();
    for (i, r) in rels.iter().enumerate() {
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new(
            *r,
            Predicate::new(format!("c{i}"), CompareOp::Lt, 10 + i as i64),
        ));
        out.push(g);
    }
    // One join part over two dedicated relations (disjoint from the rest).
    let mut j = QueryGraph::new();
    j.add_join(Join::new("X", "a", "Y", "a"));
    out.push(j);
    out
}

/// The universe Q: every non-empty subset of the parts pool (union of
/// parts). 2^5 − 1 = 31 queries.
fn universe(pool: &[QueryGraph]) -> Vec<QueryGraph> {
    let n = pool.len();
    (1u32..(1 << n))
        .map(|mask| {
            let mut g = QueryGraph::new();
            for (i, p) in pool.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    g = g.union(p);
                }
            }
            g
        })
        .collect()
}

/// A P1/P2-satisfying cost function: each part has a base cost `w`;
/// `cost(q, m∅) = Σ_{parts ⊆ q} w(part)`. Materializing part `qm`
/// replaces its contribution with a (cheaper or costlier!) scan cost
/// `s(qm)` in every query containing it:
/// `cost(q, m) = cost(q, m∅) − w(qm) + s(qm)` if `qm ⊆ q`, else unchanged.
struct SyntheticCost {
    pool: Vec<QueryGraph>,
    base: Vec<f64>,
    scan: Vec<f64>,
}

impl SyntheticCost {
    /// `cost(q, m)` where `m` is `Some(part index)` or `None` for m∅.
    fn cost(&self, q: &QueryGraph, m: Option<usize>) -> f64 {
        let mut total = 0.0;
        for (i, p) in self.pool.iter().enumerate() {
            if q.contains(p) {
                total += match m {
                    Some(mi) if mi == i => self.scan[i],
                    _ => self.base[i],
                };
            }
        }
        total
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem31_reduction_agrees(
        base in prop::collection::vec(1.0f64..100.0, 5),
        scan in prop::collection::vec(0.1f64..120.0, 5),
        weights in prop::collection::vec(0.01f64..1.0, 31),
    ) {
        let pool = parts_pool();
        let qs = universe(&pool);
        prop_assert_eq!(qs.len(), 31);
        let wsum: f64 = weights.iter().sum();
        let f: Vec<f64> = weights.iter().map(|w| w / wsum).collect();
        let cost = SyntheticCost { pool: pool.clone(), base, scan };

        // Full minimization over M = {m∅} ∪ {materialize each part}.
        let full = |m: Option<usize>| -> f64 {
            qs.iter().zip(&f).map(|(q, fq)| fq * cost.cost(q, m)).sum()
        };
        let mut best_full = (None, full(None));
        for mi in 0..pool.len() {
            let c = full(Some(mi));
            if c < best_full.1 - 1e-12 {
                best_full = (Some(mi), c);
            }
        }

        // Local minimization via Cost⊆.
        let mut best_local = (None, 0.0f64);
        for (mi, qm) in pool.iter().enumerate() {
            let f_sub: f64 = qs
                .iter()
                .zip(&f)
                .filter(|(q, _)| q.contains(qm))
                .map(|(_, fq)| fq)
                .sum();
            let delta = cost.cost(qm, Some(mi)) - cost.cost(qm, None);
            let local = f_sub * delta;
            if local < best_local.1 - 1e-12 {
                best_local = (Some(mi), local);
            }
        }

        // The two procedures must pick the same manipulation (and both
        // compute the same objective difference for it).
        prop_assert_eq!(best_full.0, best_local.0,
            "full pick {:?} vs local pick {:?}", best_full.0, best_local.0);
        if let Some(mi) = best_full.0 {
            let full_delta = full(Some(mi)) - full(None);
            prop_assert!((full_delta - best_local.1).abs() < 1e-9,
                "objective deltas diverge: {} vs {}", full_delta, best_local.1);
        }
    }

    #[test]
    fn cost_subset_of_null_manipulation_is_zero(
        base in prop::collection::vec(1.0f64..100.0, 5),
    ) {
        // Cost⊆(m∅) = 0 by definition; the full objective difference of
        // "doing nothing" must also be 0.
        let pool = parts_pool();
        let qs = universe(&pool);
        let cost = SyntheticCost { pool, scan: base.clone(), base };
        for q in &qs {
            prop_assert!((cost.cost(q, None) - cost.cost(q, None)).abs() < 1e-12);
        }
    }
}

/// P1 and P2 hold for the synthetic cost function itself — the premise
/// of the theorem, checked explicitly.
#[test]
fn synthetic_cost_satisfies_p1_and_p2() {
    let pool = parts_pool();
    let qs = universe(&pool);
    let cost = SyntheticCost {
        pool: pool.clone(),
        base: vec![10.0, 20.0, 30.0, 40.0, 50.0],
        scan: vec![1.0, 2.0, 3.0, 4.0, 5.0],
    };
    for (mi, qm) in pool.iter().enumerate() {
        for q in &qs {
            if !q.contains(qm) {
                // P1: cost unaffected when qm ⊄ q.
                assert_eq!(cost.cost(q, Some(mi)), cost.cost(q, None));
            }
        }
    }
    // P2: for disjoint unions, cost adds (check all part-pairs).
    for i in 0..pool.len() {
        for j in 0..pool.len() {
            if i == j {
                continue;
            }
            assert!(pool[i].is_disjoint(&pool[j]));
            let u = pool[i].union(&pool[j]);
            for m in [None, Some(0), Some(3)] {
                let lhs = cost.cost(&u, m);
                let rhs = cost.cost(&pool[i], m) + cost.cost(&pool[j], m);
                assert!((lhs - rhs).abs() < 1e-12, "P2 violated for parts {i},{j}");
            }
        }
    }
}
