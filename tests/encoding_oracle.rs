//! Encoded-segment correctness against the plain columnar pipeline.
//!
//! Segment encoding (dictionary, RLE, zone-map page skipping) promises
//! bit-identical rows, order, AND virtual-time accounting against the
//! unencoded pipeline for any scan. The cases that break encoded kernels
//! in practice are NULL-heavy columns (NULL must stay excluded from dict
//! membership and zone bounds), low-cardinality columns (dict code paths),
//! sorted columns (RLE runs and zone maps that actually exclude pages),
//! mixed Int/Float columns (cross-representation equality must not be
//! conflated by the encoder), and table sizes straddling the k·1024 batch
//! boundary. This property generates exactly those and cross-checks every
//! encoding setting against the plain row oracle.

use proptest::prelude::*;
use specdb::catalog::{ColumnDef, DataType, Schema};
use specdb::exec::{Database, DatabaseConfig, ExecMode};
use specdb::prelude::*;
use specdb::query::Query;
use specdb::storage::Value;

const TAGS: [&str; 4] = ["red", "green", "blue", "red "];

/// One-table database stressing every encoding path at once:
/// w(id: Int sorted unique, dept: Int? low-cardinality, run: Int long
/// runs, mix: Float? mixed Int/Float/NULL, tag: Str? tiny domain).
#[derive(Debug, Clone)]
struct EncDb {
    n: usize,
    seed: u64,
}

impl EncDb {
    /// Deterministic row stream from the seed (xorshift, like the
    /// executor oracle) — keeps proptest shrinking tractable at 2049 rows.
    fn rows(&self) -> Vec<Tuple> {
        let mut x = self.seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..self.n)
            .map(|i| {
                let dept =
                    if next() % 10 < 3 { Value::Null } else { Value::Int((next() % 8) as i64) };
                // Mixed representations sharing numeric values: Int(6)
                // and Float(3.0) both appear, and so does Float(6.0) via
                // x=12 — the encoder must not merge Int(6) with Float(6.0).
                let mix = match next() % 10 {
                    0..=2 => Value::Null,
                    m if m % 2 == 0 => Value::Float((next() % 12) as f64 / 2.0),
                    _ => Value::Int((next() % 12) as i64),
                };
                let tag = if next() % 10 < 2 {
                    Value::Null
                } else {
                    Value::from(TAGS[(next() % 4) as usize])
                };
                Tuple::new(vec![Value::Int(i as i64), dept, Value::Int((i / 64) as i64), mix, tag])
            })
            .collect()
    }
}

fn arb_db() -> impl Strategy<Value = EncDb> {
    (
        prop_oneof![Just(1023usize), Just(1024), Just(1025), Just(2047), Just(2048), Just(2049)],
        any::<u64>(),
    )
        .prop_map(|(n, seed)| EncDb { n, seed })
}

#[derive(Debug, Clone)]
struct EncQuery {
    /// `id < c` — sorted column: zone maps genuinely exclude pages.
    id_lt: Option<i64>,
    /// `dept = c` — dictionary membership with NULLs in the column.
    dept_eq: Option<i64>,
    /// `run >= c` — RLE runs spanning whole pages.
    run_ge: Option<i64>,
    /// `mix <= c` — mixed Int/Float representations.
    mix_le: Option<i64>,
    /// `tag = TAGS[i]` — string dictionary.
    tag_eq: Option<u8>,
}

fn arb_query() -> impl Strategy<Value = EncQuery> {
    (
        prop::option::of(0i64..2100),
        prop::option::of(0i64..9),
        prop::option::of(0i64..34),
        prop::option::of(0i64..7),
        prop::option::of(0u8..4),
    )
        .prop_map(|(id_lt, dept_eq, run_ge, mix_le, tag_eq)| EncQuery {
            id_lt,
            dept_eq,
            run_ge,
            mix_le,
            tag_eq,
        })
}

fn build_engine(db: &EncDb, encoding: bool) -> Database {
    let mut engine = Database::new(DatabaseConfig::with_buffer_pages(256).encoding(encoding));
    engine
        .create_table(
            "w",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("dept", DataType::Int),
                ColumnDef::new("run", DataType::Int),
                ColumnDef::new("mix", DataType::Float),
                ColumnDef::new("tag", DataType::Str),
            ]),
        )
        .unwrap();
    engine.load("w", db.rows()).unwrap();
    engine
}

fn to_query(q: &EncQuery) -> Query {
    let mut g = QueryGraph::new();
    g.add_relation("w");
    if let Some(c) = q.id_lt {
        g.add_selection(Selection::new("w", Predicate::new("id", CompareOp::Lt, c)));
    }
    if let Some(c) = q.dept_eq {
        g.add_selection(Selection::new("w", Predicate::new("dept", CompareOp::Eq, c)));
    }
    if let Some(c) = q.run_ge {
        g.add_selection(Selection::new("w", Predicate::new("run", CompareOp::Ge, c)));
    }
    if let Some(c) = q.mix_le {
        g.add_selection(Selection::new("w", Predicate::new("mix", CompareOp::Le, c)));
    }
    if let Some(t) = q.tag_eq {
        g.add_selection(Selection::new(
            "w",
            Predicate::new("tag", CompareOp::Eq, TAGS[t as usize]),
        ));
    }
    Query::star(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encoded_scans_match_plain(db in arb_db(), q in arb_query()) {
        let query = to_query(&q);
        // Oracle: the row executor with encoding off — no segments, no
        // zones, no dictionaries anywhere near the result.
        let mut oracle = build_engine(&db, false);
        oracle.set_exec_mode(ExecMode::Row);
        let expected = oracle.execute(&query).unwrap();
        for encoding in [false, true] {
            let mut engine = build_engine(&db, encoding);
            engine.set_exec_mode(ExecMode::Columnar);
            // Twice: cold (decodes every page) then warm (segment-cache
            // hits + zone-map skips) must be indistinguishable.
            for pass in ["cold", "warm"] {
                let got = engine.execute(&query).unwrap();
                prop_assert_eq!(&got.rows, &expected.rows,
                    "encoding={} {} rows diverged; plan:\n{}", encoding, pass, got.plan);
                prop_assert_eq!(got.row_count, expected.row_count,
                    "encoding={} {} row_count", encoding, pass);
                prop_assert_eq!(got.demand, expected.demand,
                    "encoding={} {} accounting diverged; plan:\n{}", encoding, pass, got.plan);
            }
        }
    }
}
