//! Plan-cache invalidation: a cached plan or estimate must be dropped
//! and re-derived after every catalog-shape change — index and histogram
//! creation/drop, materialization, and data loads — so cached planning
//! can never serve stale answers. Exercised both directly against the
//! engine and through the incremental manipulation space.

use specdb::core::{IncrementalSpace, Manipulation, ManipulationSpace};
use specdb::exec::{CancelToken, Database, DatabaseConfig};
use specdb::query::{CompareOp, Join, Predicate, Query, QueryGraph, Selection};
use specdb::storage::Tuple;
use specdb::storage::Value;
use specdb::tpch::{generate_into, TpchConfig};

/// TPC-H subset *without* auxiliary indexes/histograms, so the DDL each
/// test issues is the first of its kind and genuinely changes the
/// catalog (`build_base_db` pre-builds aux structures on every skewed
/// column, which would make `create_histogram` etc. no-ops here).
fn db() -> Database {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(2048));
    generate_into(&mut db, &TpchConfig::new(2).build_aux(false)).unwrap();
    db
}

fn partial() -> QueryGraph {
    let mut g = QueryGraph::new();
    g.add_join(Join::new("orders", "o_custkey", "customer", "c_custkey"));
    g.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "FRANCE"),
    ));
    g.add_selection(Selection::new(
        "orders",
        Predicate::new("o_orderpriority", CompareOp::Le, 2i64),
    ));
    g
}

/// Warm the estimate cache for the partial query and return the cached
/// estimate (hits confirmed via the stats counters).
fn warm(db: &specdb::exec::Database, q: &Query) -> specdb::storage::VirtualTime {
    let first = db.estimate_query_time(q).unwrap();
    let misses = db.plan_cache_stats().misses;
    let second = db.estimate_query_time(q).unwrap();
    assert_eq!(first, second);
    assert_eq!(db.plan_cache_stats().misses, misses, "second estimate must be a cache hit");
    first
}

#[test]
fn index_create_and_drop_invalidate_cached_estimates() {
    let mut db = db();
    let q = Query::star(partial());
    let before = warm(&db, &q);
    let epoch = db.ddl_epoch();

    db.create_index("customer", "c_custkey").unwrap();
    assert_eq!(db.ddl_epoch(), epoch + 1);
    // The optimizer may or may not pick the index on a tiny table, but
    // the estimate must be *re-derived* against the new catalog rather
    // than served from the pre-DDL cache.
    let misses = db.plan_cache_stats().misses;
    let _ = db.estimate_query_time(&q).unwrap();
    assert!(
        db.plan_cache_stats().misses > misses,
        "post-create_index estimate must miss the cache and re-derive"
    );

    db.drop_index("customer", "c_custkey");
    assert_eq!(db.ddl_epoch(), epoch + 2);
    let misses = db.plan_cache_stats().misses;
    assert_eq!(db.estimate_query_time(&q).unwrap(), before, "dropping must restore the estimate");
    assert!(
        db.plan_cache_stats().misses > misses,
        "post-drop_index estimate must miss the cache and re-derive"
    );

    // Dropping a non-existent index is a no-op and must NOT invalidate.
    let invalidations = db.plan_cache_stats().invalidations;
    db.drop_index("customer", "c_custkey");
    assert_eq!(db.ddl_epoch(), epoch + 2);
    assert_eq!(db.plan_cache_stats().invalidations, invalidations);
}

#[test]
fn histogram_create_invalidates_cached_estimates() {
    let mut db = db();
    // A join query: the histogram shifts the selectivity of the orders
    // predicate, which changes the orders-side output cardinality feeding
    // the hash join's CPU cost. (A single-table scan would not do: its
    // cost is pages + cpu(input rows), independent of output selectivity.)
    let q = Query::star(partial());
    let before = warm(&db, &q);
    db.create_histogram("orders", "o_orderpriority").unwrap();
    let after = db.estimate_query_time(&q).unwrap();
    // The histogram changes the selectivity estimate for the predicate;
    // equality would mean the cache served the pre-histogram answer.
    assert_ne!(before, after, "histogram must be visible to post-DDL estimates");
    db.drop_histogram("orders", "o_orderpriority");
    assert_eq!(db.estimate_query_time(&q).unwrap(), before);
}

#[test]
fn materialize_invalidates_cached_plans_and_estimates() {
    let mut db = db();
    let q = Query::star(partial());
    let before = warm(&db, &q);
    let out_before = db.execute_discard(&q).unwrap();
    assert!(out_before.used_views.is_empty());

    let sub =
        partial().selection_subgraph(partial().selections().find(|s| s.rel == "customer").unwrap());
    let mat = db.materialize(&sub, CancelToken::new()).unwrap();

    // Both the estimate and the executed plan must now see the view.
    let after = db.estimate_query_time(&q).unwrap();
    assert_ne!(before, after, "estimate must re-derive against the view");
    let out_after = db.execute_discard(&q).unwrap();
    assert_eq!(out_after.used_views, vec![mat.table.clone()]);
    assert_eq!(out_after.row_count, out_before.row_count);

    db.drop_materialized(&mat.table);
    assert_eq!(db.estimate_query_time(&q).unwrap(), before);
    assert!(db.execute_discard(&q).unwrap().used_views.is_empty());
}

#[test]
fn load_invalidates_cached_estimates() {
    let mut db = db();
    let mut g = QueryGraph::new();
    g.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "FRANCE"),
    ));
    let q = Query::star(g);
    let before = warm(&db, &q);
    let rows_before = db.execute_discard(&q).unwrap().row_count;
    // Append more FRANCE customers: stats re-analyze, estimates shift.
    // Column 2 is c_nation in the TPC-H subset schema; verify rather
    // than trust the fixture's hard-coded row shape.
    let nation_idx = db.catalog().table("customer").unwrap().schema.index_of("c_nation").unwrap();
    assert_eq!(nation_idx, 2, "test fixture assumes c_nation at position 2");
    let extra = (0..500i64).map(|i| {
        Tuple::new(vec![
            Value::Int(1_000_000 + i),
            Value::Str(format!("extra#{i}")),
            Value::Str("FRANCE".into()),
            Value::Str("BUILDING".into()),
            Value::Float(i as f64),
        ])
    });
    db.load("customer", extra).unwrap();
    let after = db.estimate_query_time(&q).unwrap();
    assert_ne!(before, after, "load must invalidate the cached estimate");
    assert_eq!(db.execute_discard(&q).unwrap().row_count, rows_before + 500);
}

#[test]
fn incremental_space_tracks_every_invalidation_source() {
    let mut db = db();
    let space = ManipulationSpace::default();
    let mut inc = IncrementalSpace::default();
    let p = partial();
    assert_eq!(inc.candidates(&p, &db), space.enumerate(&p, &db));

    // Each DDL operation must be reflected on the incremental space's
    // next call, exactly as a fresh enumeration would see it.
    let sub = p.selection_subgraph(p.selections().find(|s| s.rel == "customer").unwrap());
    let mat = db.materialize(&sub, CancelToken::new()).unwrap();
    let after_mat = inc.candidates(&p, &db);
    assert_eq!(after_mat, space.enumerate(&p, &db));
    assert!(!after_mat.iter().any(|m| m.graph() == Some(&sub)));

    db.drop_materialized(&mat.table);
    let after_drop = inc.candidates(&p, &db);
    assert_eq!(after_drop, space.enumerate(&p, &db));
    assert!(after_drop.iter().any(|m| m.graph() == Some(&sub)));

    // Index/histogram arms (config with everything on).
    let everything = specdb::core::SpaceConfig::everything();
    let space = ManipulationSpace::new(everything.clone());
    let mut inc = IncrementalSpace::new(everything);
    assert_eq!(inc.candidates(&p, &db), space.enumerate(&p, &db));
    db.create_index("customer", "c_nation").unwrap();
    db.create_histogram("orders", "o_orderpriority").unwrap();
    let after_ddl = inc.candidates(&p, &db);
    assert_eq!(after_ddl, space.enumerate(&p, &db));
    assert!(!after_ddl.contains(&Manipulation::CreateIndex {
        table: "customer".into(),
        column: "c_nation".into()
    }));
    assert!(!after_ddl.contains(&Manipulation::CreateHistogram {
        table: "orders".into(),
        column: "o_orderpriority".into()
    }));

    // A load (stats refresh) also bumps the epoch and forces rescoring.
    let epoch = db.ddl_epoch();
    db.load("customer", std::iter::empty::<Tuple>()).unwrap();
    assert_eq!(db.ddl_epoch(), epoch + 1);
    assert_eq!(inc.candidates(&p, &db), space.enumerate(&p, &db));
}
