//! SQL aggregate semantics, including NULL handling, end to end.

use specdb::catalog::{ColumnDef, DataType, Schema};
use specdb::exec::{Database, DatabaseConfig};
use specdb::prelude::*;
use specdb::storage::Value;

/// t(grp, v): v contains NULLs; grp 0 has values 1..4, grp 1 is all-NULL.
fn db_with_nulls() -> Database {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(64));
    db.create_table(
        "t",
        Schema::new(vec![ColumnDef::new("grp", DataType::Int), ColumnDef::new("v", DataType::Int)]),
    )
    .unwrap();
    let rows = vec![
        Tuple::new(vec![Value::Int(0), Value::Int(1)]),
        Tuple::new(vec![Value::Int(0), Value::Int(2)]),
        Tuple::new(vec![Value::Int(0), Value::Null]),
        Tuple::new(vec![Value::Int(0), Value::Int(3)]),
        Tuple::new(vec![Value::Int(0), Value::Int(4)]),
        Tuple::new(vec![Value::Int(1), Value::Null]),
        Tuple::new(vec![Value::Int(1), Value::Null]),
    ];
    db.load("t", rows).unwrap();
    db
}

#[test]
fn count_star_vs_count_column() {
    let mut db = db_with_nulls();
    let q = parse_sql(&db, "SELECT count(*), count(v) FROM t").unwrap();
    let out = db.execute(&q).unwrap();
    assert_eq!(out.rows[0].get(0), &Value::Int(7), "count(*) counts null rows");
    assert_eq!(out.rows[0].get(1), &Value::Int(4), "count(v) skips nulls");
}

#[test]
fn sum_avg_min_max_skip_nulls() {
    let mut db = db_with_nulls();
    let q = parse_sql(&db, "SELECT sum(v), avg(v), min(v), max(v) FROM t").unwrap();
    let out = db.execute(&q).unwrap();
    assert_eq!(out.rows[0].get(0), &Value::Float(10.0));
    assert_eq!(out.rows[0].get(1), &Value::Float(2.5));
    assert_eq!(out.rows[0].get(2), &Value::Int(1));
    assert_eq!(out.rows[0].get(3), &Value::Int(4));
}

#[test]
fn all_null_group_aggregates_to_null() {
    let mut db = db_with_nulls();
    let q =
        parse_sql(&db, "SELECT grp, sum(v), avg(v), min(v), count(v) FROM t GROUP BY grp").unwrap();
    let out = db.execute(&q).unwrap();
    assert_eq!(out.row_count, 2);
    // Groups come out key-sorted: grp 0 then grp 1.
    let g1 = &out.rows[1];
    assert_eq!(g1.get(0), &Value::Int(1));
    assert_eq!(g1.get(1), &Value::Null, "sum over all-null is NULL");
    assert_eq!(g1.get(2), &Value::Null, "avg over all-null is NULL");
    assert_eq!(g1.get(3), &Value::Null, "min over all-null is NULL");
    assert_eq!(g1.get(4), &Value::Int(0), "count(v) over all-null is 0");
}

#[test]
fn aggregate_over_filtered_join() {
    // Aggregates sit on top of the conjunctive core: filter + join + group.
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(512));
    specdb::tpch::generate_into(&mut db, &specdb::tpch::TpchConfig::new(1)).unwrap();
    let q = parse_sql(
        &db,
        "SELECT c_nation, count(*) FROM customer, orders \
         WHERE orders.o_custkey = customer.c_custkey AND o_orderpriority <= 2 \
         GROUP BY c_nation",
    )
    .unwrap();
    let out = db.execute(&q).unwrap();
    assert!(out.row_count >= 2, "several nations have urgent orders");
    // Cross-check the total against the unaggregated count.
    let q_flat = parse_sql(
        &db,
        "SELECT * FROM customer, orders \
         WHERE orders.o_custkey = customer.c_custkey AND o_orderpriority <= 2",
    )
    .unwrap();
    let flat = db.execute_discard(&q_flat).unwrap().row_count;
    let sum: i64 = out
        .rows
        .iter()
        .map(|r| match r.get(1) {
            Value::Int(n) => *n,
            other => panic!("count must be Int, got {other:?}"),
        })
        .sum();
    assert_eq!(sum as u64, flat, "group counts must sum to the flat count");
}
