//! End-to-end tracing: a multi-threaded speculative replay with the
//! tracer attached must yield a schema-valid Chrome/Perfetto trace, a
//! populated per-operator profile, latency histograms, and a renderable
//! timeline dashboard.

use specdb::obs::span::{validate_chrome_trace, SpanKind};
use specdb::obs::{MemorySink, Observer, Tracer};
use specdb::sim::dashboard::render_timeline_html;
use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::report::render_operator_profiles;
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::trace::{UserModel, UserModelConfig};
use std::sync::Arc;

#[test]
fn traced_replay_produces_valid_artifacts() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let cfg = UserModelConfig { queries: 8, questions: 2, ..Default::default() };
    let trace =
        UserModel::new(cfg, specdb::tpch::ExploreDomain::tpch()).generate("tracing-user", 42);
    assert!(trace.edits.len() >= 20, "fixture trace too small: {} edits", trace.edits.len());

    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::enabled();
    let mut db = base.clone();
    db.set_threads(4);
    db.set_observer(Observer::enabled().with_sink(sink.clone()).with_tracer(tracer.clone()));
    let outcome = replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap();
    assert!(outcome.issued > 0, "fixture must speculate");

    let spans = tracer.spans();
    let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count();
    assert_eq!(count(SpanKind::Session), 1, "one session span per replay");
    assert_eq!(count(SpanKind::Execute), outcome.queries.len(), "one execute span per GO query");
    assert!(count(SpanKind::Decide) > 0, "speculator decisions must be traced");
    assert!(count(SpanKind::Speculation) as u64 >= outcome.issued);
    assert!(count(SpanKind::Operator) > 0, "per-operator spans must be recorded");
    assert!(count(SpanKind::Morsel) > 0, "4-thread run must record morsel spans");
    assert!(count(SpanKind::Edit) >= 20, "every user edit leaves an instant");
    assert_eq!(tracer.dropped(), 0, "span cap must not trip on a small replay");

    // Spans nest: every parent id must exist, and operator spans sit
    // under an execute (or another operator) span.
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for s in &spans {
        if let Some(p) = s.parent {
            assert!(ids.contains(&p), "span {} has dangling parent {p}", s.id);
        }
        assert!(s.virt_end_us >= s.virt_start_us);
        assert!(s.wall_end_us >= s.wall_start_us);
    }

    // Chrome trace_event export passes the schema check and round-trips
    // through the JSON parser.
    let chrome = tracer.to_chrome_trace();
    let n = validate_chrome_trace(&chrome).expect("trace JSON must satisfy the schema");
    assert!(n >= spans.len(), "every span becomes at least one event");

    // Operator profiles aggregate and render.
    let profiles = tracer.operator_profiles();
    assert!(!profiles.is_empty());
    let table = render_operator_profiles(&profiles);
    assert!(table.contains("seq_scan") || table.contains("project"), "table:\n{table}");

    // Latency histograms landed in the metrics registry with quantiles.
    let snapshot = db.observer().metrics().snapshot();
    let rendered = snapshot.render();
    for h in ["lat.decide_us", "lat.query_secs", "lat.time_to_go_secs", "lat.spec_build_secs"] {
        assert!(rendered.contains(h), "missing histogram {h} in:\n{rendered}");
    }
    assert!(rendered.contains("p95="), "histograms must render quantiles");

    // The dashboard renders from the same artifacts.
    let events = sink.events();
    let html = render_timeline_html("tracing test", &events, &spans);
    assert!(html.contains("<svg"), "dashboard must draw charts");
    assert!(html.contains("queries"), "dashboard must label lanes");
}

/// Disabled tracing stays zero-cost and empty: no spans accumulate and
/// exports degrade gracefully.
#[test]
fn disabled_tracer_records_nothing_during_replay() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let cfg = UserModelConfig { queries: 2, questions: 1, ..Default::default() };
    let trace = UserModel::new(cfg, specdb::tpch::ExploreDomain::tpch()).generate("u", 7);
    let mut db = base.clone();
    // Observer enabled (metrics flow) but tracer left at its default:
    // disabled unless SPECDB_TRACE opts in.
    db.set_observer(Observer::enabled().with_tracer(Tracer::disabled()));
    replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap();
    let tracer = db.observer().tracer().clone();
    assert!(!tracer.is_enabled());
    assert!(tracer.spans().is_empty());
    assert!(tracer.operator_profiles().is_empty());
    validate_chrome_trace(&tracer.to_chrome_trace()).expect("empty trace still schema-valid");
}
