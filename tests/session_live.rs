//! Live-runtime integration tests: the threaded `SpeculativeSession`
//! under realistic interaction patterns (wall-clock think time, pivots,
//! aggregate GOs, and many consecutive queries).

use specdb::core::{SpeculativeSession, SpeculatorConfig};
use specdb::exec::{Database, DatabaseConfig};
use specdb::prelude::*;
use specdb::query::{Join, Query};
use specdb::tpch::{generate_into, TpchConfig};
use std::thread::sleep;
use std::time::Duration;

fn db() -> Database {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(2048));
    generate_into(&mut db, &TpchConfig::new(1)).expect("generate");
    db.clear_buffer();
    db
}

fn nation(v: &str) -> EditOp {
    EditOp::AddSelection(Selection::new("customer", Predicate::new("c_nation", CompareOp::Eq, v)))
}

#[test]
fn consecutive_queries_reuse_surviving_views() {
    let mut s = SpeculativeSession::new(db(), SpeculatorConfig::default());
    s.edit(EditOp::AddRelation("customer".into()));
    s.edit(nation("FRANCE"));
    sleep(Duration::from_millis(400));
    let first = s.go().expect("first GO");
    // Same predicate again (inter-query locality): if the view survived
    // GC, the second query must use it.
    sleep(Duration::from_millis(50));
    let second = s.go().expect("second GO");
    assert_eq!(first.row_count, second.row_count);
    if s.stats().completed >= 1 {
        assert!(!second.used_views.is_empty(), "surviving view should answer the repeat query");
    }
    s.finish();
}

#[test]
fn go_with_aggregate_layers_over_canvas() {
    let mut s = SpeculativeSession::new(db(), SpeculatorConfig::default());
    s.edit(EditOp::AddRelation("customer".into()));
    s.edit(nation("GERMANY"));
    sleep(Duration::from_millis(300));
    // Plain canvas GO for the expected count.
    let rows = {
        let q = Query::star(s.partial().clone());
        s.with_db(|db| db.execute_discard(&q)).expect("probe").row_count
    };
    let agg_query = Query::star(s.partial().clone()).aggregate(specdb::query::AggSpec {
        group_by: vec![],
        aggs: vec![specdb::query::Aggregate::count_star()],
    });
    let out = s.go_with(&agg_query).expect("aggregate GO");
    assert_eq!(out.row_count, 1);
    assert_eq!(out.rows[0].get(0), &Value::Int(rows as i64));
    s.finish();
}

#[test]
fn rapid_fire_edits_never_deadlock_or_crash() {
    // Hammer the session with edits faster than manipulations can finish;
    // every path (issue, cancel, supersede, GO) must stay consistent.
    let mut s = SpeculativeSession::new(db(), SpeculatorConfig::default());
    let nations = ["FRANCE", "GERMANY", "RUSSIA", "JAPAN", "CHINA"];
    for round in 0..4 {
        s.edit(EditOp::AddRelation("customer".into()));
        for (i, n) in nations.iter().enumerate() {
            s.edit(nation(n));
            if i % 2 == round % 2 {
                s.edit(EditOp::RemoveSelection(Selection::new(
                    "customer",
                    Predicate::new("c_nation", CompareOp::Eq, *n),
                )));
            }
        }
        s.edit(EditOp::AddJoin(Join::new("orders", "o_custkey", "customer", "c_custkey")));
        let _ = s.go().expect("GO under churn"); // executed without error
                                                 // Clear the canvas for the next round.
        for rel in ["customer", "orders"] {
            s.edit(EditOp::RemoveRelation(rel.into()));
        }
    }
    let st = s.stats();
    assert_eq!(st.queries, 4);
    assert_eq!(st.issued, st.completed + st.cancelled, "bookkeeping must balance");
    s.finish();
}

#[test]
fn finish_returns_database_with_consistent_views() {
    let mut s = SpeculativeSession::new(db(), SpeculatorConfig::default());
    s.edit(EditOp::AddRelation("supplier".into()));
    s.edit(EditOp::AddSelection(Selection::new(
        "supplier",
        Predicate::new("s_nation", CompareOp::Eq, "PERU"),
    )));
    sleep(Duration::from_millis(300));
    let _ = s.go().expect("GO");
    let db = s.finish();
    // Every registered view has a backing catalog table.
    for v in db.views().iter() {
        assert!(db.catalog().table(&v.name).is_some(), "view {} must have storage", v.name);
    }
}
