//! Cost-model calibration: the speculator's predicted build times must
//! track the builds' measured virtual times. The raw analytic estimate
//! ran ~2x hot (mean |rel err| ~107% on the tiny dataset; scaled, it measures ~37%); the
//! `BUILD_TIME_SCALE` constant in `specdb-exec` corrects the systematic
//! bias, and this test pins the corrected accuracy.

use specdb::obs::Observer;
use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::trace::UserModel;

#[test]
fn build_time_predictions_within_fifty_percent() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let observer = Observer::enabled();
    let mut db = base.clone();
    db.set_observer(observer.clone());
    // Several users' worth of completed builds so the mean is not a
    // one-sample fluke.
    for (i, trace) in UserModel::default().generate_cohort(3, 2026).iter().enumerate() {
        let _ = i;
        replay_trace(&mut db, trace, &ReplayConfig::speculative()).unwrap();
    }
    let report = observer
        .calibration()
        .build_report()
        .expect("speculative replay must complete at least one build");
    assert!(report.count >= 5, "too few builds to judge calibration: {}", report.count);
    assert!(
        report.mean_abs_rel_err <= 0.50,
        "build-time predictions drifted: mean |rel err| = {:.3} over {} builds \
         (p50 {:.3}, p90 {:.3}) — retune BUILD_TIME_SCALE in specdb-exec",
        report.mean_abs_rel_err,
        report.count,
        report.p50_rel_err,
        report.p90_rel_err,
    );
}
