//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use specdb::catalog::Histogram;
use specdb::prelude::*;
use specdb::query::Join;
use specdb::storage::{BufferPool, HeapFile};

// ---------- generators ----------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Tuple::new)
}

fn arb_selection() -> impl Strategy<Value = Selection> {
    (
        prop_oneof![Just("R"), Just("S"), Just("T")],
        prop_oneof![Just("a"), Just("b"), Just("c")],
        prop_oneof![
            Just(CompareOp::Eq),
            Just(CompareOp::Lt),
            Just(CompareOp::Gt),
            Just(CompareOp::Le),
            Just(CompareOp::Ge),
            Just(CompareOp::Ne)
        ],
        -100i64..100,
    )
        .prop_map(|(r, c, op, v)| Selection::new(r, Predicate::new(c, op, v)))
}

fn arb_join() -> impl Strategy<Value = Join> {
    (
        prop_oneof![Just("R"), Just("S"), Just("T"), Just("U")],
        prop_oneof![Just("x"), Just("y")],
        prop_oneof![Just("R"), Just("S"), Just("T"), Just("U")],
        prop_oneof![Just("x"), Just("y")],
    )
        .prop_filter("self-joins excluded", |(a, _, b, _)| a != b)
        .prop_map(|(ra, ca, rb, cb)| Join::new(ra, ca, rb, cb))
}

fn arb_graph() -> impl Strategy<Value = QueryGraph> {
    (prop::collection::vec(arb_selection(), 0..4), prop::collection::vec(arb_join(), 0..3))
        .prop_map(|(sels, joins)| {
            let mut g = QueryGraph::new();
            for s in sels {
                g.add_selection(s);
            }
            for j in joins {
                g.add_join(j);
            }
            g
        })
}

// ---------- storage ----------

proptest! {
    #[test]
    fn tuple_codec_round_trips(t in arb_tuple()) {
        let decoded = Tuple::decode(&t.encode()).unwrap();
        prop_assert_eq!(&decoded, &t);
        prop_assert_eq!(t.encode().len(), t.encoded_len());
    }

    #[test]
    fn heap_file_preserves_tuples(rows in prop::collection::vec(arb_tuple(), 1..200)) {
        let mut pool = BufferPool::new(64);
        let heap = HeapFile::create(&mut pool);
        let mut loader = specdb::storage::heap::BulkLoader::new(heap, &pool);
        let mut tids = Vec::new();
        for r in &rows {
            tids.push(loader.push(&mut pool, r).unwrap());
        }
        loader.finish(&mut pool).unwrap();
        // Scan order equals insertion order.
        let all = heap.collect_all(&mut pool).unwrap();
        prop_assert_eq!(&all, &rows);
        // Point fetch agrees for a sample.
        for (i, tid) in tids.iter().enumerate().step_by(17) {
            prop_assert_eq!(&heap.get(&mut pool, *tid).unwrap(), &rows[i]);
        }
    }

    #[test]
    fn buffer_accounting_is_consistent(reads in prop::collection::vec(0u32..32, 1..100)) {
        let mut pool = BufferPool::new(8);
        let f = pool.create_file();
        for i in 0..32u32 {
            let mut p = specdb::storage::Page::new();
            p.insert(&[1u8; 8]).unwrap();
            pool.put_page(specdb::storage::PageId::new(f, i), p).unwrap();
        }
        pool.clear();
        let snap = pool.snapshot();
        for &r in &reads {
            pool.read_page(specdb::storage::PageId::new(f, r), specdb::storage::AccessKind::Random)
                .unwrap();
        }
        let d = pool.demand_since(snap);
        // Every read is either a hit or a miss; never more misses than reads.
        prop_assert_eq!(d.hits + d.rand_reads, reads.len() as u64);
        prop_assert!(pool.resident() <= 8);
    }
}

// ---------- histogram ----------

proptest! {
    #[test]
    fn histogram_fractions_are_probabilities(
        vals in prop::collection::vec(-1000i64..1000, 1..500),
        probe in -1500i64..1500,
    ) {
        let values: Vec<Value> = vals.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&values);
        let p = Value::Int(probe);
        for frac in [h.fraction_lt(&p), h.fraction_le(&p), h.fraction_eq(&p)] {
            prop_assert!((0.0..=1.0).contains(&frac), "fraction {frac} out of range");
        }
        prop_assert!(h.fraction_le(&p) + 1e-9 >= h.fraction_lt(&p));
    }

    #[test]
    fn histogram_lt_is_monotone(
        vals in prop::collection::vec(-1000i64..1000, 10..300),
        a in -1200i64..1200,
        b in -1200i64..1200,
    ) {
        let values: Vec<Value> = vals.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&values);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            h.fraction_lt(&Value::Int(lo)) <= h.fraction_lt(&Value::Int(hi)) + 1e-9
        );
    }

    #[test]
    fn histogram_eq_matches_exact_counts_on_small_domains(
        vals in prop::collection::vec(0i64..8, 50..400),
    ) {
        // With ≤ 8 distinct values and ≥ 50 rows, every value is a "heavy
        // hitter" getting its own bucket: estimates should be near-exact.
        let values: Vec<Value> = vals.iter().copied().map(Value::Int).collect();
        let h = Histogram::build(&values);
        for v in 0..8 {
            let actual = vals.iter().filter(|&&x| x == v).count() as f64 / vals.len() as f64;
            let est = h.fraction_eq(&Value::Int(v));
            prop_assert!((est - actual).abs() < 0.02, "v={v}: est {est} vs actual {actual}");
        }
    }
}

// ---------- query graph algebra ----------

proptest! {
    #[test]
    fn containment_is_reflexive_and_antisymmetric(g in arb_graph(), h in arb_graph()) {
        prop_assert!(g.contains(&g));
        if g.contains(&h) && h.contains(&g) {
            prop_assert_eq!(&g, &h);
        }
    }

    #[test]
    fn union_intersection_laws(a in arb_graph(), b in arb_graph()) {
        let u = a.union(&b);
        let i = a.intersection(&b);
        prop_assert!(u.contains(&a) && u.contains(&b));
        prop_assert!(a.contains(&i) && b.contains(&i));
        // Commutativity.
        prop_assert_eq!(&u, &b.union(&a));
        prop_assert_eq!(&i, &b.intersection(&a));
        // Absorption: a ∪ (a ∩ b) = a.
        prop_assert_eq!(&a.union(&i), &a);
        // Disjointness definition.
        prop_assert_eq!(a.is_disjoint(&b), i.is_empty());
    }

    #[test]
    fn difference_partitions(a in arb_graph(), b in arb_graph()) {
        let d = a.difference(&b);
        let i = a.intersection(&b);
        prop_assert_eq!(&d.union(&i), &a);
    }

    #[test]
    fn components_partition_the_graph(g in arb_graph()) {
        let comps = g.connected_components();
        let reunited = comps.iter().fold(QueryGraph::new(), |acc, c| acc.union(c));
        prop_assert_eq!(&reunited, &g);
        for c in &comps {
            prop_assert!(c.is_connected());
        }
        // Components are pairwise disjoint on relations.
        for (i, a) in comps.iter().enumerate() {
            for b in comps.iter().skip(i + 1) {
                for r in a.relations() {
                    prop_assert!(!b.has_relation(r));
                }
            }
        }
    }

    #[test]
    fn canonical_key_agrees_with_equality(a in arb_graph(), b in arb_graph()) {
        use specdb::query::canonical_key;
        prop_assert_eq!(a == b, canonical_key(&a) == canonical_key(&b));
    }

    #[test]
    fn enumerated_subgraphs_are_contained(g in arb_graph()) {
        for s in g.selections() {
            prop_assert!(g.contains(&g.selection_subgraph(s)));
        }
        for j in g.joins() {
            let sub = g.join_subgraph(j);
            prop_assert!(g.contains(&sub));
            // Attached selections are exactly those on the endpoints.
            for s in sub.selections() {
                prop_assert!(s.rel == j.left || s.rel == j.right);
            }
        }
    }
}

// ---------- partial-query edits ----------

proptest! {
    #[test]
    fn apply_then_invert_restores_graph(g in arb_graph(), s in arb_selection(), j in arb_join()) {
        use specdb::query::{EditOp, PartialQuery};
        let mut pq = PartialQuery::from_query(specdb::query::Query::star(g.clone()));
        let had_sel = g.selections().any(|e| e == &s);
        let had_join = g.joins().any(|e| e == &j);
        let had_sel_rel = g.has_relation(&s.rel);
        let had_join_rels = (g.has_relation(&j.left), g.has_relation(&j.right));
        pq.apply(&EditOp::AddSelection(s.clone()));
        pq.apply(&EditOp::AddJoin(j.clone()));
        if !had_join {
            pq.apply(&EditOp::RemoveJoin(j.clone()));
        }
        if !had_sel {
            pq.apply(&EditOp::RemoveSelection(s.clone()));
        }
        // Relations implicitly added must be removed to restore exactly.
        if !had_sel_rel && !pq.graph().selections_on(&s.rel).any(|_| true)
            && !pq.graph().joins_on(&s.rel).any(|_| true) && !g.has_relation(&s.rel) {
            pq.apply(&EditOp::RemoveRelation(s.rel.clone()));
        }
        for (rel, had) in [(&j.left, had_join_rels.0), (&j.right, had_join_rels.1)] {
            if !had && !pq.graph().selections_on(rel).any(|_| true)
                && !pq.graph().joins_on(rel).any(|_| true) && !g.has_relation(rel) {
                pq.apply(&EditOp::RemoveRelation(rel.clone()));
            }
        }
        prop_assert_eq!(pq.graph(), &g);
    }
}
