//! Differential suite: the batch-vectorized executor must be
//! bit-identical to the row-at-a-time executor — same tuples, same
//! order, same virtual-time I/O accounting — on every workload, from
//! single scans to full speculative TPC-H replays. The batch path is a
//! wall-clock optimization only; any observable divergence is a bug.

use specdb::exec::{Database, DatabaseConfig};
use specdb::prelude::*;
use specdb::query::Join;
use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::tpch::{generate_into, TpchConfig};
use specdb::trace::UserModel;

/// Execute `sql` against clones of `base` with batch execution on and
/// off (cold buffers) and assert identical results and accounting.
fn assert_query_agrees(base: &Database, sql: &str) {
    let mut bdb = base.clone();
    let mut rdb = base.clone();
    rdb.set_batch_exec(false);
    bdb.clear_buffer();
    rdb.clear_buffer();
    let q = parse_sql(&bdb, sql).unwrap_or_else(|e| panic!("{sql}: {e:?}"));
    let b = bdb.execute(&q).unwrap();
    let r = rdb.execute(&q).unwrap();
    assert_eq!(b.rows, r.rows, "{sql}: tuples or order differ");
    assert_eq!(b.row_count, r.row_count, "{sql}");
    assert_eq!(b.demand, r.demand, "{sql}: I/O accounting differs");
    assert_eq!(b.elapsed, r.elapsed, "{sql}: virtual time differs");
}

/// The headline contract: a recorded TPC-H exploration session replays
/// to the *same* `ReplayOutcome` — per-query rows and virtual times,
/// speculation lifecycle counts, wait times — with `batch_exec` on or
/// off, under both normal and speculative replay.
#[test]
fn replay_identical_with_batch_on_and_off() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |batch: bool, cfg: &ReplayConfig| {
        let mut db = base.clone();
        db.set_batch_exec(batch);
        replay_trace(&mut db, &trace, cfg).unwrap()
    };
    for cfg in [ReplayConfig::normal(), ReplayConfig::speculative()] {
        let b = run(true, &cfg);
        let r = run(false, &cfg);
        assert_eq!(b, r, "batch_exec changed observable replay behaviour");
    }
    let spec = run(true, &ReplayConfig::speculative());
    assert!(spec.issued > 0, "trace must exercise speculation");
}

#[test]
fn tpch_queries_agree_across_paths() {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(4096));
    generate_into(&mut db, &TpchConfig::new(2)).unwrap();
    for sql in [
        "SELECT * FROM customer WHERE c_nation = 'FRANCE'",
        "SELECT c_name, c_acctbal FROM customer WHERE c_acctbal >= 5000",
        "SELECT customer.c_name, orders.o_totalprice FROM customer, orders \
         WHERE orders.o_custkey = customer.c_custkey AND c_nation = 'FRANCE'",
        "SELECT c_nation, count(*), avg(o_totalprice) FROM customer, orders \
         WHERE orders.o_custkey = customer.c_custkey GROUP BY c_nation",
        "SELECT count(*), min(o_totalprice), max(o_totalprice) FROM orders",
    ] {
        assert_query_agrees(&db, sql);
    }
}

#[test]
fn empty_tables_agree_across_paths() {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(64));
    let schema = || {
        Schema::new(vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("v", DataType::Int)])
    };
    db.create_table("t", schema()).unwrap();
    db.create_table("u", schema()).unwrap();
    db.load("u", (0..100i64).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)])))
        .unwrap();
    // Empty scan, empty-input global aggregate (one row by SQL
    // convention), and joins with the empty side as build and probe.
    assert_query_agrees(&db, "SELECT * FROM t");
    assert_query_agrees(&db, "SELECT count(*) FROM t");
    assert_query_agrees(&db, "SELECT * FROM t, u WHERE t.k = u.k");
    assert_query_agrees(&db, "SELECT * FROM u, t WHERE u.k = t.k");
}

#[test]
fn null_join_keys_agree_across_paths() {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(64));
    let schema = || {
        Schema::new(vec![ColumnDef::new("k", DataType::Int), ColumnDef::new("v", DataType::Int)])
    };
    db.create_table("l", schema()).unwrap();
    db.create_table("r", schema()).unwrap();
    // Every third key is NULL on each side; NULL never joins NULL.
    let rows = |offset: i64| {
        (0..300i64).map(move |i| {
            let k = if i % 3 == 0 { Value::Null } else { Value::Int(i % 50) };
            Tuple::new(vec![k, Value::Int(i + offset)])
        })
    };
    db.load("l", rows(0)).unwrap();
    db.load("r", rows(1000)).unwrap();
    assert_query_agrees(&db, "SELECT * FROM l, r WHERE l.k = r.k");
    assert_query_agrees(&db, "SELECT count(*) FROM l, r WHERE l.k = r.k");
}

/// Join and scan cardinalities of k·1024 ± 1 straddle the default batch
/// boundary; the tail batch and the exactly-full batch must both behave.
#[test]
fn batch_boundary_straddling_joins_agree() {
    for n in [1023i64, 1024, 1025, 2047, 2048, 2049] {
        let mut db = Database::new(DatabaseConfig::with_buffer_pages(512));
        let schema = || {
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ])
        };
        db.create_table("a", schema()).unwrap();
        db.create_table("b", schema()).unwrap();
        db.load("a", (0..n).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 7)])))
            .unwrap();
        db.load("b", (0..4096i64).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 5)])))
            .unwrap();
        assert_query_agrees(&db, "SELECT * FROM a");
        // Unique keys: the join emits exactly n rows, straddling the
        // 1024-tuple batch boundary.
        assert_query_agrees(&db, "SELECT * FROM a, b WHERE a.k = b.k");
        assert_query_agrees(&db, "SELECT a.v, count(*) FROM a, b WHERE a.k = b.k GROUP BY a.v");
        let q = parse_sql(&db, "SELECT * FROM a, b WHERE a.k = b.k").unwrap();
        assert_eq!(db.execute_discard(&q).unwrap().row_count, n as u64);
    }
}

/// Speculative materialization plus re-execution — the memory-resident
/// fast path — must leave results and accounting untouched.
#[test]
fn materialized_view_queries_agree_across_paths() {
    let mut base = Database::new(DatabaseConfig::with_buffer_pages(4096));
    generate_into(&mut base, &TpchConfig::new(2)).unwrap();
    let mut sub = QueryGraph::new();
    sub.add_join(Join::new("orders", "o_custkey", "customer", "c_custkey"));
    sub.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "GERMANY"),
    ));
    let mut bdb = base.clone();
    let mut rdb = base;
    rdb.set_batch_exec(false);
    let mb = bdb.materialize(&sub, specdb::exec::CancelToken::new()).unwrap();
    let mr = rdb.materialize(&sub, specdb::exec::CancelToken::new()).unwrap();
    assert_eq!(mb.rows, mr.rows);
    assert_eq!(mb.demand, mr.demand);
    let sql = "SELECT customer.c_name, orders.o_totalprice FROM customer, orders \
               WHERE orders.o_custkey = customer.c_custkey AND c_nation = 'GERMANY' \
               AND o_orderpriority <= 2";
    let q = parse_sql(&bdb, sql).unwrap();
    // Run twice: the second execution reads the view through the warm
    // decoded segment cache on the batch path.
    for _ in 0..2 {
        let b = bdb.execute(&q).unwrap();
        let r = rdb.execute(&q).unwrap();
        assert_eq!(b.used_views, vec![mb.table.clone()]);
        assert_eq!(b.rows, r.rows);
        assert_eq!(b.demand, r.demand);
    }
}
