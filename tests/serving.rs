//! Serving-layer integration: the shared artifact cache under real
//! concurrency, DDL-epoch races, and the TCP wire protocol end to end
//! with two sessions sharing one speculative artifact.

use serde_json::{parse, Value};
use specdb::serve::{
    serve, BeginBuild, CompleteBuild, ServeConfig, SessionId, SharedArtifactCache,
};
use specdb::sim::{build_base_db, DatasetSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The cache's bookkeeping must stay coherent when many sessions
/// register, look up, lease, and collect concurrently: no lost entries,
/// no double-installs, and a final sweep that leaves the cache empty.
#[test]
fn artifact_cache_consistent_under_concurrent_register_lookup_drop() {
    const SESSIONS: SessionId = 8;
    const ROUNDS: usize = 200;
    let cache = SharedArtifactCache::new();
    std::thread::scope(|scope| {
        for sid in 0..SESSIONS {
            let cache = &cache;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let key = format!("k{}", (round + sid as usize) % 4);
                    match cache.begin_build(&key, sid) {
                        BeginBuild::Started(ticket) => {
                            // Install immediately; the table name encodes
                            // the key so by_table stays consistent.
                            let verdict = cache.complete_build(ticket, format!("mv_{key}"));
                            assert!(matches!(
                                verdict,
                                CompleteBuild::Installed | CompleteBuild::Stale
                            ));
                        }
                        BeginBuild::InFlight => {}
                        BeginBuild::Ready(table) => {
                            cache.note_use(&table, sid);
                        }
                    }
                    cache.lookup(&key, sid);
                    cache.set_leases(sid, std::slice::from_ref(&key));
                    cache.set_leases(sid, &[]);
                    let _ = cache.collect_unleased();
                }
            });
        }
    });
    // Quiesced: every session abandons its leases and the sweep reaps
    // whatever survived the churn.
    for sid in 0..SESSIONS {
        cache.release_session(sid);
    }
    let _ = cache.collect_unleased();
    let stats = cache.stats();
    assert!(cache.is_empty(), "unleased artifacts must all be collected: {stats:?}");
    assert_eq!(stats.ready, 0);
    assert_eq!(stats.building, 0);
    assert!(stats.installed > 0, "the churn must install artifacts");
    // Installed artifacts leave the cache only through the GC sweep, so
    // on an empty cache the two tallies must balance exactly.
    assert_eq!(stats.installed, stats.collected, "{stats:?}");
}

/// A DDL-epoch bump racing an in-flight build must never install the
/// stale result, whatever the interleaving; a build completing *before*
/// the bump stays installed (ready artifacts are governed by leases,
/// not by the epoch — the wire protocol has no DDL verbs).
#[test]
fn epoch_invalidation_racing_in_flight_build_never_installs_stale() {
    // Deterministic orderings first.
    let cache = SharedArtifactCache::new();
    let ticket = match cache.begin_build("k", 1) {
        BeginBuild::Started(t) => t,
        other => panic!("expected Started, got {other:?}"),
    };
    cache.invalidate();
    assert_eq!(cache.complete_build(ticket, "mv_stale".into()), CompleteBuild::Stale);
    assert!(cache.is_empty(), "a stale build must leave no residue");

    // Now the actual race, across a range of interleavings.
    for delay_us in [0u64, 20, 100, 500] {
        let cache = SharedArtifactCache::new();
        let barrier = std::sync::Barrier::new(2);
        let verdict = std::thread::scope(|scope| {
            let builder = scope.spawn(|| {
                let ticket = match cache.begin_build("k", 1) {
                    BeginBuild::Started(t) => t,
                    other => panic!("expected Started, got {other:?}"),
                };
                barrier.wait();
                std::thread::sleep(Duration::from_micros(delay_us));
                cache.complete_build(ticket, "mv_k".into())
            });
            barrier.wait();
            cache.invalidate();
            builder.join().unwrap()
        });
        let stats = cache.stats();
        match verdict {
            CompleteBuild::Installed => {
                // The build won the race: it is visible and reusable.
                assert_eq!(stats.ready, 1, "{stats:?}");
                assert_eq!(cache.lookup("k", 2), Some("mv_k".into()));
            }
            CompleteBuild::Stale => {
                // The bump won: nothing installed, and a rebuild under
                // the new epoch succeeds.
                assert_eq!(stats.ready, 0, "{stats:?}");
                let t2 = match cache.begin_build("k", 1) {
                    BeginBuild::Started(t) => t,
                    other => panic!("expected Started, got {other:?}"),
                };
                assert_eq!(cache.complete_build(t2, "mv_k2".into()), CompleteBuild::Installed);
            }
        }
    }
}

/// A tiny line-protocol client for the end-to-end test.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve()");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { writer: stream, reader }
    }

    fn send(&mut self, line: &str) -> Value {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        let v = parse(reply.trim()).unwrap_or_else(|e| panic!("bad JSON for {line:?}: {e}"));
        assert_eq!(field(&v, "ok"), &Value::Bool(true), "{line} -> {reply}");
        v
    }
}

fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {name:?} in {v:?}")),
        other => panic!("expected object with {name:?}, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(u) => *u,
        Value::I64(i) => *i as u64,
        other => panic!("expected integer, got {other:?}"),
    }
}

/// Full wire-protocol round trip with two concurrent sessions: the
/// first session's speculative build serves the second session's GO as
/// a cross-session shared hit (the transcript in `docs/serving.md`).
#[test]
fn wire_protocol_serves_concurrent_sessions_with_shared_artifacts() {
    let db = build_base_db(&DatasetSpec::tiny()).unwrap();
    let handle = serve(db, ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    let mut alice = Client::connect(addr);
    let connected = alice.send("CONNECT alice");
    assert_eq!(field(&connected, "name"), &Value::Str("alice".into()));
    alice.send("EDIT ADD_RELATION lineitem");
    let edited = alice.send("EDIT ADD_SELECTION lineitem l_quantity <= 2");
    assert_eq!(as_u64(field(&edited, "relations")), 1);
    assert_eq!(as_u64(field(&edited, "selections")), 1);

    // Think time: the speculative materialization runs on a background
    // thread. Pump benign no-op edits (re-adding the same relation) to
    // give the speculator decision points until the artifact is ready.
    let mut ready = 0;
    for _ in 0..500 {
        let stats = alice.send("STATS");
        ready = as_u64(field(field(&stats, "cache"), "ready"));
        if ready >= 1 {
            break;
        }
        alice.send("EDIT ADD_RELATION lineitem");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(ready >= 1, "alice's speculative build never installed");

    let go1 = alice.send("GO");
    let rows = as_u64(field(&go1, "rows"));
    assert!(rows > 0, "the crafted predicate must match rows");
    assert_eq!(field(&go1, "shared_hit"), &Value::Bool(false), "own build is not a shared hit");

    // Bob converges on the same question; his GO reads alice's artifact.
    let mut bob = Client::connect(addr);
    bob.send("CONNECT bob");
    bob.send("EDIT ADD_RELATION lineitem");
    bob.send("EDIT ADD_SELECTION lineitem l_quantity <= 2");
    let go2 = bob.send("GO");
    assert_eq!(as_u64(field(&go2, "rows")), rows, "same query, same answer");
    assert_eq!(
        field(&go2, "shared_hit"),
        &Value::Bool(true),
        "bob's plan must read alice's artifact: {go2:?}"
    );

    let stats = bob.send("STATS");
    assert_eq!(as_u64(field(&stats, "sessions")), 2);
    let cache = field(&stats, "cache");
    assert!(as_u64(field(cache, "shared_hits")) >= 1, "{stats:?}");
    assert!(as_u64(field(field(&stats, "session"), "queries")) >= 1);

    bob.send("QUIT");
    alice.send("QUIT");
    handle.shutdown();
}
