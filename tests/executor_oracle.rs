//! Executor correctness against a brute-force reference evaluator.
//!
//! The engine's optimizer may pick sequential scans, index scans, hash
//! joins, or index nested-loop joins; materialized-view rewriting adds
//! another layer. All of them must compute exactly the semantics of the
//! conjunctive query: filter the cartesian product of the relations by
//! every join and selection predicate. This suite evaluates that
//! definition directly (no indexes, no optimizer — just loops) and
//! checks every engine configuration against it on randomized databases
//! and queries. A leaf-boundary bug in the ordered index was caught by
//! exactly this kind of cross-check; this test pins the whole class down.

use proptest::prelude::*;
use specdb::catalog::{ColumnDef, DataType, Schema};
use specdb::exec::{CancelToken, Database, DatabaseConfig, ExecMode, MatchMode, ViewMode};
use specdb::prelude::*;
use specdb::query::{Join, Query};
use specdb::storage::Value;

/// A tiny three-table schema with plenty of duplicate join keys —
/// duplicates are where join bugs live.
///
/// r(k, a) — s(k, j, b) — t(j, c)
#[derive(Debug, Clone)]
struct TestDb {
    r: Vec<(i64, i64)>,
    s: Vec<(i64, i64, i64)>,
    t: Vec<(i64, i64)>,
}

fn arb_db() -> impl Strategy<Value = TestDb> {
    // Key domains are deliberately tiny (0..6) to force heavy duplication.
    let r = prop::collection::vec((0i64..6, 0i64..20), 0..40);
    let s = prop::collection::vec((0i64..6, 0i64..5, 0i64..20), 0..60);
    let t = prop::collection::vec((0i64..5, 0i64..20), 0..30);
    (r, s, t).prop_map(|(r, s, t)| TestDb { r, s, t })
}

#[derive(Debug, Clone)]
struct TestQuery {
    /// Optional selection `r.a < ca`.
    ca: Option<i64>,
    /// Optional selection `s.b >= cb`.
    cb: Option<i64>,
    /// Optional selection `t.c = cc`.
    cc: Option<i64>,
    /// Include the s ⋈ t join (r ⋈ s is always present).
    join_t: bool,
}

fn arb_query() -> impl Strategy<Value = TestQuery> {
    (
        prop::option::of(0i64..20),
        prop::option::of(0i64..20),
        prop::option::of(0i64..20),
        any::<bool>(),
    )
        .prop_map(|(ca, cb, cc, join_t)| TestQuery { ca, cb, cc, join_t })
}

/// The reference answer: loop over the cartesian product.
fn reference_count(db: &TestDb, q: &TestQuery) -> u64 {
    let mut count = 0u64;
    for &(rk, ra) in &db.r {
        if let Some(ca) = q.ca {
            if ra >= ca {
                continue;
            }
        }
        for &(sk, sj, sb) in &db.s {
            if sk != rk {
                continue;
            }
            if let Some(cb) = q.cb {
                if sb < cb {
                    continue;
                }
            }
            if q.join_t {
                for &(tj, tc) in &db.t {
                    if tj != sj {
                        continue;
                    }
                    if let Some(cc) = q.cc {
                        if tc != cc {
                            continue;
                        }
                    }
                    count += 1;
                }
            } else {
                count += 1;
            }
        }
    }
    count
}

fn build_engine(db: &TestDb, indexes: bool) -> Database {
    let mut engine = Database::new(DatabaseConfig::with_buffer_pages(128));
    engine
        .create_table(
            "r",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("a", DataType::Int),
            ]),
        )
        .unwrap();
    engine
        .create_table(
            "s",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("j", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ]),
        )
        .unwrap();
    engine
        .create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("j", DataType::Int),
                ColumnDef::new("c", DataType::Int),
            ]),
        )
        .unwrap();
    engine
        .load("r", db.r.iter().map(|&(k, a)| Tuple::new(vec![Value::Int(k), Value::Int(a)])))
        .unwrap();
    engine
        .load(
            "s",
            db.s.iter()
                .map(|&(k, j, b)| Tuple::new(vec![Value::Int(k), Value::Int(j), Value::Int(b)])),
        )
        .unwrap();
    engine
        .load("t", db.t.iter().map(|&(j, c)| Tuple::new(vec![Value::Int(j), Value::Int(c)])))
        .unwrap();
    if indexes {
        for (t, c) in
            [("r", "k"), ("r", "a"), ("s", "k"), ("s", "j"), ("s", "b"), ("t", "j"), ("t", "c")]
        {
            engine.create_index(t, c).unwrap();
            engine.create_histogram(t, c).unwrap();
        }
    }
    engine
}

fn to_query(q: &TestQuery) -> Query {
    let mut g = QueryGraph::new();
    g.add_join(Join::new("r", "k", "s", "k"));
    if q.join_t {
        g.add_join(Join::new("s", "j", "t", "j"));
    }
    if let Some(ca) = q.ca {
        g.add_selection(Selection::new("r", Predicate::new("a", CompareOp::Lt, ca)));
    }
    if let Some(cb) = q.cb {
        g.add_selection(Selection::new("s", Predicate::new("b", CompareOp::Ge, cb)));
    }
    if let Some(cc) = q.cc {
        if q.join_t {
            g.add_selection(Selection::new("t", Predicate::new("c", CompareOp::Eq, cc)));
        }
    }
    Query::star(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plans_agree_with_reference(db in arb_db(), q in arb_query()) {
        let expected = reference_count(&db, &q);
        let query = to_query(&q);
        // No indexes: hash-join / seq-scan plans.
        let mut plain = build_engine(&db, false);
        prop_assert_eq!(plain.execute_discard(&query).unwrap().row_count, expected);
        // Fully indexed: index scans and index nested-loop joins allowed.
        let mut indexed = build_engine(&db, true);
        prop_assert_eq!(indexed.execute_discard(&query).unwrap().row_count, expected,
            "indexed plan diverged; plan:\n{}", indexed.execute_discard(&query).unwrap().plan);
    }

    #[test]
    fn aggregates_agree_with_reference(db in arb_db(), q in arb_query()) {
        // COUNT(*) grouped by r.k must equal per-group reference counts.
        let query = {
            let mut base = to_query(&q);
            base.agg = Some(specdb::query::AggSpec {
                group_by: vec![("r".into(), "k".into())],
                aggs: vec![specdb::query::Aggregate::count_star()],
            });
            base
        };
        // Reference: per-k counts from the plain reference evaluator.
        let mut per_k: std::collections::BTreeMap<i64, u64> = Default::default();
        for k in 0..6 {
            let sub = TestDb {
                r: db.r.iter().copied().filter(|&(rk, _)| rk == k).collect(),
                s: db.s.clone(),
                t: db.t.clone(),
            };
            let c = reference_count(&sub, &q);
            if c > 0 {
                per_k.insert(k, c);
            }
        }
        let mut engine = build_engine(&db, true);
        let out = engine.execute(&query).unwrap();
        prop_assert_eq!(out.row_count as usize, per_k.len());
        for row in &out.rows {
            let k = match row.get(0) {
                Value::Int(k) => *k,
                other => panic!("group key must be int, got {other:?}"),
            };
            let c = match row.get(1) {
                Value::Int(c) => *c as u64,
                other => panic!("count must be int, got {other:?}"),
            };
            prop_assert_eq!(Some(&c), per_k.get(&k), "group {}", k);
        }
    }

    #[test]
    fn view_rewrites_agree_with_reference(db in arb_db(), q in arb_query()) {
        let expected = reference_count(&db, &q);
        let query = to_query(&q);
        let base = build_engine(&db, true);
        // Materialize every selection and join subgraph of the query and
        // re-check under both view modes and both match modes.
        let mut subs: Vec<QueryGraph> = Vec::new();
        for s in query.graph.selections() {
            subs.push(query.graph.selection_subgraph(s));
        }
        for j in query.graph.joins() {
            subs.push(query.graph.join_subgraph(j));
        }
        for sub in subs {
            for view_mode in [ViewMode::Forced, ViewMode::CostBased] {
                for match_mode in [MatchMode::Exact, MatchMode::Subsume] {
                    let mut engine = base.clone();
                    engine.set_view_mode(view_mode);
                    engine.set_match_mode(match_mode);
                    engine.materialize(&sub, CancelToken::new()).unwrap();
                    let got = engine.execute_discard(&query).unwrap();
                    prop_assert_eq!(
                        got.row_count, expected,
                        "view {} under {:?}/{:?} diverged; plan:\n{}",
                        sub, view_mode, match_mode, got.plan
                    );
                }
            }
        }
    }
}

// ---------- executor-pipeline differential (columnar vs row) ----------
//
// The columnar pipeline promises bit-identical results AND identical
// virtual-time accounting against the row oracle for *any* SPJ query.
// The cases that break batch pipelines in practice are NULL-heavy join
// keys (NULL never matches, selection vectors must drop it the same way
// `CompareOp::eval` does) and table sizes straddling the k·1024 batch
// boundary (off-by-one in chunking shows up as a dropped or duplicated
// tail row). This property generates exactly those.

/// Two-table database with NULL-heavy columns; `u` is sized at a batch
/// boundary (k·1024 ± 1).
#[derive(Debug, Clone)]
struct NullDb {
    /// u(k: Int?, a: Int?, f: Float?) — size ∈ {1023, 1024, 1025, 2047, 2048, 2049}.
    u: Vec<(Option<i64>, Option<i64>, Option<i64>)>,
    /// v(k: Int?, c: Int)
    v: Vec<(Option<i64>, i64)>,
}

fn arb_null_db() -> impl Strategy<Value = NullDb> {
    let row_v = (prop::option::of(0i64..6), 0i64..40);
    (
        prop_oneof![Just(1023usize), Just(1024), Just(1025), Just(2047), Just(2048), Just(2049)],
        prop::collection::vec(row_v, 0..24),
        any::<u64>(),
    )
        .prop_map(|(n, v, seed)| {
            // Deterministic fill from a seed instead of a size-n vec
            // strategy: keeps shrinking tractable at 2049 rows.
            let mut x = seed | 1;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let u = (0..n)
                .map(|_| {
                    let k = if next() % 10 < 3 { None } else { Some((next() % 6) as i64) };
                    let a = if next() % 10 < 4 { None } else { Some((next() % 40) as i64) };
                    let f = if next() % 10 < 4 { None } else { Some((next() % 1000) as i64) };
                    (k, a, f)
                })
                .collect();
            NullDb { u, v }
        })
}

#[derive(Debug, Clone)]
struct NullQuery {
    /// Optional selection `u.a < ca`.
    ca: Option<i64>,
    /// Optional selection `u.f >= cf` (Float column, Int constant).
    cf: Option<i64>,
    /// Optional selection `v.c = cc`.
    cc: Option<i64>,
    /// Include the u ⋈ v join (else single-table scan of u).
    join_v: bool,
    /// Index v.k so the optimizer may pick an index-nested-loop join.
    index_v: bool,
}

fn arb_null_query() -> impl Strategy<Value = NullQuery> {
    (
        prop::option::of(0i64..40),
        prop::option::of(0i64..1000),
        prop::option::of(0i64..40),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(ca, cf, cc, join_v, index_v)| NullQuery { ca, cf, cc, join_v, index_v })
}

fn opt_val(v: Option<i64>) -> Value {
    v.map_or(Value::Null, Value::Int)
}

fn build_null_engine(db: &NullDb, q: &NullQuery) -> Database {
    let mut engine = Database::new(DatabaseConfig::with_buffer_pages(256));
    engine
        .create_table(
            "u",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("f", DataType::Float),
            ]),
        )
        .unwrap();
    engine
        .create_table(
            "v",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("c", DataType::Int),
            ]),
        )
        .unwrap();
    engine
        .load(
            "u",
            db.u.iter().map(|&(k, a, f)| {
                // The Float column stores a mix of Int and Float values
                // (DataType::Float admits Int) — the kernel-dispatch case
                // a fixed-stride layout would get wrong.
                let fv = match f {
                    None => Value::Null,
                    Some(x) if x % 2 == 0 => Value::Float(x as f64 / 2.0),
                    Some(x) => Value::Int(x),
                };
                Tuple::new(vec![opt_val(k), opt_val(a), fv])
            }),
        )
        .unwrap();
    engine
        .load("v", db.v.iter().map(|&(k, c)| Tuple::new(vec![opt_val(k), Value::Int(c)])))
        .unwrap();
    if q.index_v {
        engine.create_index("v", "k").unwrap();
        engine.create_histogram("v", "k").unwrap();
    }
    engine
}

fn to_null_query(q: &NullQuery) -> Query {
    let mut g = QueryGraph::new();
    g.add_relation("u");
    if q.join_v {
        g.add_join(Join::new("u", "k", "v", "k"));
    }
    if let Some(ca) = q.ca {
        g.add_selection(Selection::new("u", Predicate::new("a", CompareOp::Lt, ca)));
    }
    if let Some(cf) = q.cf {
        g.add_selection(Selection::new("u", Predicate::new("f", CompareOp::Ge, cf)));
    }
    if let Some(cc) = q.cc {
        if q.join_v {
            g.add_selection(Selection::new("v", Predicate::new("c", CompareOp::Eq, cc)));
        }
    }
    Query::star(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exec_modes_are_bit_identical(db in arb_null_db(), q in arb_null_query()) {
        let query = to_null_query(&q);
        let base = build_null_engine(&db, &q);
        let mut row_db = base.clone();
        row_db.set_exec_mode(ExecMode::Row);
        let expected = row_db.execute(&query).unwrap();
        for mode in [ExecMode::BatchRow, ExecMode::Columnar] {
            let mut engine = base.clone();
            engine.set_exec_mode(mode);
            let got = engine.execute(&query).unwrap();
            prop_assert_eq!(&got.rows, &expected.rows,
                "{:?} rows diverged from row oracle; plan:\n{}", mode, got.plan);
            prop_assert_eq!(got.row_count, expected.row_count, "{:?} row_count", mode);
            prop_assert_eq!(got.demand, expected.demand,
                "{:?} resource accounting diverged; plan:\n{}", mode, got.plan);
        }
    }
}
