//! Behavioural tests for the Learner against synthetic users with known
//! ground-truth parameters: the learned profile must converge toward the
//! generator's probabilities, and the logistic estimator must generalize
//! where the counting estimator cannot.

use specdb::core::learner::SurvivalMode;
use specdb::core::{Learner, LearnerConfig, Profile};
use specdb::prelude::*;
use specdb::query::EditOp;
use specdb::storage::VirtualTime;
use specdb::trace::{UserModel, UserModelConfig};

/// Feed a generated trace through a learner, returning it trained.
fn train_on(trace: &specdb::trace::Trace, config: LearnerConfig) -> Learner {
    let mut learner = Learner::new(config);
    let mut pq = PartialQuery::new();
    for te in &trace.edits {
        if te.op.is_go() {
            learner.observe_go(te.at, pq.graph());
        } else {
            learner.observe_edit(te.at, &te.op);
            pq.apply(&te.op);
        }
    }
    learner
}

#[test]
fn survival_estimates_converge_to_user_model() {
    // The generator recants ~p_recant tentative selections; surviving
    // parts dominate. A trained learner's average selection-survival
    // estimate should sit well above 0.5 and below 1.0.
    let cfg = UserModelConfig { queries: 42, ..Default::default() };
    let model = UserModel::new(cfg.clone(), specdb::tpch::ExploreDomain::tpch());
    let trace = model.generate("u", 77);
    let learner = train_on(&trace, LearnerConfig::default());
    assert!(learner.observed_gos() == 42);
    // Probe a few domain selections.
    let probes = [
        Selection::new("customer", Predicate::new("c_nation", CompareOp::Eq, "FRANCE")),
        Selection::new("orders", Predicate::new("o_orderdate", CompareOp::Gt, 9000i64)),
        Selection::new("lineitem", Predicate::new("l_quantity", CompareOp::Lt, 20i64)),
    ];
    let mean: f64 =
        probes.iter().map(|s| learner.p_selection_survives(s)).sum::<f64>() / probes.len() as f64;
    assert!((0.55..1.0).contains(&mean), "mean survival {mean}");
}

#[test]
fn persistence_estimates_reflect_configured_keeps() {
    let cfg = UserModelConfig { queries: 42, ..Default::default() };
    let model = UserModel::new(cfg.clone(), specdb::tpch::ExploreDomain::tpch());
    // Train across several users for more GO transitions.
    let mut learner = Learner::new(LearnerConfig::default());
    for seed in 0..5 {
        let trace = model.generate("u", 1000 + seed);
        let mut pq = PartialQuery::new();
        for te in &trace.edits {
            if te.op.is_go() {
                learner.observe_go(te.at, pq.graph());
            } else {
                learner.observe_edit(te.at, &te.op);
                pq.apply(&te.op);
            }
        }
    }
    let sel_p = learner.p_selection_persists();
    let join_p = learner.p_join_persists();
    // Generator: sel_keep = 0.75, join_keep = 0.90 (question boundaries
    // pull both estimates down a little).
    assert!((0.5..0.85).contains(&sel_p), "selection persistence {sel_p}");
    assert!((0.7..0.97).contains(&join_p), "join persistence {join_p}");
    assert!(join_p > sel_p, "joins persist longer than selections");
}

#[test]
fn think_time_model_learns_the_distribution() {
    let model = UserModel::default();
    let trace = model.generate("u", 31);
    let learner = train_on(&trace, LearnerConfig::default());
    let m = learner.think_model();
    assert_eq!(m.samples(), 42);
    // Median formulation ≈ 11 s: outliving 2 s should be likely, 600 s not.
    let p_short = learner.p_think_exceeds(VirtualTime::ZERO, VirtualTime::from_secs(2));
    let p_long = learner.p_think_exceeds(VirtualTime::ZERO, VirtualTime::from_secs(600));
    assert!(p_short > 0.6, "{p_short}");
    assert!(p_long < 0.2, "{p_long}");
    assert!(p_short > p_long);
}

#[test]
fn logistic_mode_generalizes_across_constants() {
    // A synthetic user who always keeps predicates on `solid` and always
    // recants predicates on `flaky`, with fresh constants every time.
    // The counting learner keys on (table, column) here too, so both
    // should learn this; the logistic learner must also score *novel*
    // constants confidently.
    let mk_sel =
        |col: &str, v: i64| Selection::new("orders", Predicate::new(col, CompareOp::Lt, v));
    let mut counting = Learner::new(LearnerConfig::default());
    let mut logistic =
        Learner::new(LearnerConfig { mode: SurvivalMode::Logistic, ..Default::default() });
    for q in 0..60i64 {
        let t0 = VirtualTime::from_secs((q * 60) as u64);
        let solid = mk_sel("solid", q);
        let flaky = mk_sel("flaky", q);
        for l in [&mut counting, &mut logistic] {
            l.observe_edit(t0, &EditOp::AddSelection(solid.clone()));
            l.observe_edit(t0, &EditOp::AddSelection(flaky.clone()));
            l.observe_edit(t0, &EditOp::RemoveSelection(flaky.clone()));
            let mut fg = QueryGraph::new();
            fg.add_selection(solid.clone());
            l.observe_go(t0 + VirtualTime::from_secs(30), &fg);
        }
    }
    for l in [&counting, &logistic] {
        assert!(l.p_selection_survives(&mk_sel("solid", 9999)) > 0.8);
        assert!(l.p_selection_survives(&mk_sel("flaky", 9999)) < 0.35);
    }
}

/// Train a predictor offline from the training half of a split.
fn predictor_from_split(split: &specdb::trace::CorpusSplit) -> Learner {
    let mut learner = Learner::new(LearnerConfig::default());
    for t in &split.train {
        for f in t.formulations() {
            let ops: Vec<EditOp> = f.edits.iter().map(|te| te.op.clone()).collect();
            learner.train_predictor(&ops);
        }
    }
    learner
}

/// Held-out hit rate: at the instant just before each GO, does the
/// final query's canonical key appear in the predictor's top-k?
fn held_out_hit_rate(learner: &Learner, traces: &[specdb::trace::Trace], k: usize) -> f64 {
    use specdb::query::canonical_key;
    let (mut hits, mut total) = (0usize, 0usize);
    for t in traces {
        let mut pq = PartialQuery::new();
        let mut hist: Vec<EditOp> = Vec::new();
        for te in &t.edits {
            if te.op.is_go() {
                let final_key = canonical_key(pq.graph());
                let preds = learner.predictor().predict(&hist, pq.graph(), k);
                total += 1;
                if preds.iter().any(|(g, _)| canonical_key(g) == final_key) {
                    hits += 1;
                }
                hist.clear();
            } else {
                hist.push(te.op.clone());
            }
            pq.apply(&te.op);
        }
    }
    assert!(total > 0, "held-out corpus must contain formulations");
    hits as f64 / total as f64
}

#[test]
fn predictor_clears_accuracy_floors_on_held_out_split() {
    let model = UserModel::default();
    let split = model.generate_split(8, 2, 4242);
    let learner = predictor_from_split(&split);
    assert!(learner.predictor().formulations() > 300, "training corpus too small");
    let top1 = held_out_hit_rate(&learner, &split.held_out, 1);
    let top3 = held_out_hit_rate(&learner, &split.held_out, 3);
    assert!(top1 >= 0.6, "top-1 held-out hit rate {top1:.3} below floor");
    assert!(top3 >= 0.7, "top-3 held-out hit rate {top3:.3} below floor");
    assert!(top3 >= top1, "top-3 can never lose to top-1");
}

#[test]
fn predictor_is_deterministic_across_runs() {
    let model = UserModel::default();
    let split = model.generate_split(4, 1, 99);
    // Two independent training runs over the same corpus must agree on
    // every prediction, and a serialized round-trip must too.
    let a = predictor_from_split(&split);
    let b = predictor_from_split(&split);
    let json = serde_json::to_string(a.predictor()).unwrap();
    let c: specdb::core::EditPredictor = serde_json::from_str(&json).unwrap();
    let mut pq = PartialQuery::new();
    let mut hist: Vec<EditOp> = Vec::new();
    let mut compared = 0usize;
    for te in &split.held_out[0].edits {
        if te.op.is_go() {
            let pa = a.predictor().predict(&hist, pq.graph(), 3);
            let pb = b.predictor().predict(&hist, pq.graph(), 3);
            let pc = c.predict(&hist, pq.graph(), 3);
            assert_eq!(pa, pb, "identical training must give identical predictions");
            assert_eq!(pa, pc, "serde round-trip must preserve behaviour");
            assert_eq!(pa, a.predictor().predict(&hist, pq.graph(), 3), "repeat calls agree");
            compared += pa.len();
            hist.clear();
        } else {
            hist.push(te.op.clone());
        }
        pq.apply(&te.op);
    }
    assert!(compared > 0, "determinism check must compare real predictions");
}

#[test]
fn profile_products_bound_by_parts() {
    // f⊆ of a larger graph can never exceed f⊆ of its sub-graph.
    let model = UserModel::default();
    let trace = model.generate("u", 5);
    let learner = train_on(&trace, LearnerConfig::default());
    let mut small = QueryGraph::new();
    small.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "PERU"),
    ));
    let mut big = small.clone();
    big.add_join(specdb::query::Join::new("orders", "o_custkey", "customer", "c_custkey"));
    big.add_selection(Selection::new(
        "orders",
        Predicate::new("o_orderpriority", CompareOp::Le, 2i64),
    ));
    assert!(learner.p_contained(&big) <= learner.p_contained(&small) + 1e-12);
}
