//! Determinism and reproducibility: identical seeds must reproduce
//! identical traces, databases, and experiment outcomes — the property
//! that makes every figure in EXPERIMENTS.md regenerable bit-for-bit.

use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::{build_base_db, DatasetSpec};
use specdb::trace::{TraceStats, UserModel};

#[test]
fn trace_generation_is_deterministic() {
    let a = UserModel::default().generate_cohort(3, 99);
    let b = UserModel::default().generate_cohort(3, 99);
    assert_eq!(a, b);
}

#[test]
fn database_generation_is_deterministic() {
    let a = build_base_db(&DatasetSpec::tiny()).unwrap();
    let b = build_base_db(&DatasetSpec::tiny()).unwrap();
    for t in specdb::tpch::TPCH_TABLES {
        assert_eq!(a.catalog().table(t).unwrap().stats, b.catalog().table(t).unwrap().stats, "{t}");
    }
}

#[test]
fn replay_is_deterministic() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |cfg: &ReplayConfig| {
        let mut db = base.clone();
        replay_trace(&mut db, &trace, cfg).unwrap()
    };
    for cfg in [ReplayConfig::normal(), ReplayConfig::speculative()] {
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.elapsed, y.elapsed);
            assert_eq!(x.rows, y.rows);
        }
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.completed, b.completed);
    }
}

/// The plan cache and the incremental manipulation space are pure
/// memoization: with them on or off, a speculative replay must produce
/// the *bit-identical* outcome — same decisions, same timings, same
/// manipulation lifecycle counts.
#[test]
fn replay_identical_with_caching_on_and_off() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |cached: bool| {
        let mut db = base.clone();
        db.set_plan_cache(cached);
        let mut cfg = ReplayConfig::speculative();
        cfg.speculator.incremental = cached;
        replay_trace(&mut db, &trace, &cfg).unwrap()
    };
    let cached = run(true);
    let uncached = run(false);
    assert!(cached.issued > 0, "trace must exercise speculation");
    assert_eq!(cached, uncached, "caching changed observable replay behaviour");
}

/// The morsel-parallel executor's bit-identity contract, end to end: a
/// full speculative session — queries, speculative materializations,
/// cancellations, hit/miss accounting — replayed at 1, 2, and 4 worker
/// threads must produce the identical [`ReplayOutcome`]: same rows,
/// virtual timings, speculation decisions, and manipulation lifecycle
/// counts.
///
/// [`ReplayOutcome`]: specdb::sim::replay::ReplayOutcome
#[test]
fn replay_identical_at_any_thread_count() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |threads: usize| {
        let mut db = base.clone();
        db.set_threads(threads);
        replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap()
    };
    let serial = run(1);
    assert!(serial.issued > 0, "trace must exercise speculation");
    for threads in [2usize, 4] {
        let parallel = run(threads);
        assert_eq!(
            serial, parallel,
            "{threads} worker threads changed observable replay behaviour"
        );
    }
}

/// Tracing is strictly observational: a full speculative replay with
/// the tracer and an event sink attached must produce the bit-identical
/// [`ReplayOutcome`] as one with observability fully disabled, at every
/// worker-thread count. Wall-clock span timestamps must never leak into
/// virtual-time accounting or speculation decisions.
///
/// [`ReplayOutcome`]: specdb::sim::replay::ReplayOutcome
#[test]
fn replay_identical_with_tracing_on_and_off() {
    use specdb::obs::{MemorySink, Observer, Tracer};
    use std::sync::Arc;
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |threads: usize, traced: bool| {
        let mut db = base.clone();
        db.set_threads(threads);
        if traced {
            let sink = Arc::new(MemorySink::new());
            db.set_observer(Observer::enabled().with_sink(sink).with_tracer(Tracer::enabled()));
        }
        replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap()
    };
    for threads in [1usize, 4] {
        let plain = run(threads, false);
        let traced = run(threads, true);
        assert!(plain.issued > 0, "trace must exercise speculation");
        assert_eq!(
            plain, traced,
            "tracing changed observable replay behaviour at {threads} threads"
        );
    }
}

/// Segment encoding (dictionary/RLE columns, zone-map page skipping,
/// speculative prefetch) is strictly a wall-clock optimisation: a full
/// speculative replay with encodings on must produce the bit-identical
/// [`ReplayOutcome`] as one with encodings off — same rows, virtual
/// timings, speculation decisions, and manipulation lifecycle counts —
/// at every worker-thread count.
///
/// [`ReplayOutcome`]: specdb::sim::replay::ReplayOutcome
#[test]
fn replay_identical_with_encodings_on_and_off() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |threads: usize, encoding: bool| {
        let mut db = base.clone();
        db.set_threads(threads);
        db.set_encoding(encoding);
        replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap()
    };
    for threads in [1usize, 4] {
        let plain = run(threads, false);
        let encoded = run(threads, true);
        assert!(plain.issued > 0, "trace must exercise speculation");
        assert_eq!(
            plain, encoded,
            "segment encoding changed observable replay behaviour at {threads} threads"
        );
    }
}

/// Whole-query prediction keeps the determinism contract: for each
/// setting of the predictor knob a full speculative replay is
/// bit-identical across repeat runs and worker-thread counts, and
/// turning the predictor on or off never changes *answers* — only the
/// speculation lifecycle may differ between settings.
///
/// [`ReplayOutcome`]: specdb::sim::replay::ReplayOutcome
#[test]
fn replay_identical_with_prediction_on_and_off() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    let run = |threads: usize, predict: bool| {
        let mut db = base.clone();
        db.set_threads(threads);
        let mut cfg = ReplayConfig::speculative();
        cfg.speculator.predict = predict;
        cfg.speculator.predict_topk = 3;
        replay_trace(&mut db, &trace, &cfg).unwrap()
    };
    let mut per_setting = Vec::new();
    for predict in [true, false] {
        let serial = run(1, predict);
        assert!(serial.issued > 0, "trace must exercise speculation");
        assert_eq!(serial, run(1, predict), "predict={predict} replay must be reproducible");
        let parallel = run(4, predict);
        assert_eq!(serial, parallel, "4 worker threads changed the predict={predict} replay");
        per_setting.push(serial);
    }
    let (on, off) = (&per_setting[0], &per_setting[1]);
    assert!(on.predicted_issued > 0, "predictor must issue whole-query candidates");
    assert_eq!(off.predicted_issued, 0, "predict=off must never issue predictions");
    assert_eq!(on.queries.len(), off.queries.len());
    for (a, b) in on.queries.iter().zip(&off.queries) {
        assert_eq!(a.rows, b.rows, "prediction must never change answers");
    }
}

/// The fleet governor is behaviour-neutral for a lone session: the
/// multi-session replay of a single trace must produce the bit-identical
/// [`ReplayOutcome`] as the pre-governor single-session path — at one
/// *and* several worker threads (the acceptance bar for PR 8's serving
/// layer).
///
/// [`ReplayOutcome`]: specdb::sim::replay::ReplayOutcome
#[test]
fn single_session_under_governor_identical_to_plain_replay() {
    use specdb::sim::{replay_multi_session, MultiSessionConfig};
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let trace = UserModel::default().generate("u", 1234);
    for threads in [1usize, 4] {
        let single = {
            let mut db = base.clone();
            db.set_threads(threads);
            replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap()
        };
        assert!(single.issued > 0, "trace must exercise speculation");
        let multi = {
            let mut db = base.clone();
            db.set_threads(threads);
            replay_multi_session(
                &mut db,
                std::slice::from_ref(&trace),
                &MultiSessionConfig::speculative(),
            )
            .unwrap()
        };
        assert_eq!(
            multi.per_session[0], single,
            "the governor changed a lone session's replay at {threads} threads"
        );
        assert_eq!(multi.shared_hits, 0);
        assert_eq!(multi.preempted, 0);
    }
}

/// The concurrent multi-session replay itself is deterministic and
/// thread-count-invariant: same traces, same fleet outcome — counters,
/// timings, shared-hit accounting — at 1 and 4 worker threads.
#[test]
fn multi_session_replay_is_deterministic() {
    use specdb::sim::{replay_multi_session, MultiSessionConfig};
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let traces: Vec<_> = (0..3)
        .map(|i| {
            let cfg = specdb::trace::UserModelConfig { queries: 6, ..Default::default() };
            UserModel::new(cfg, specdb::tpch::ExploreDomain::tpch())
                .generate(&format!("u{i}"), 800 + i)
        })
        .collect();
    let run = |threads: usize| {
        let mut db = base.clone();
        db.set_threads(threads);
        replay_multi_session(&mut db, &traces, &MultiSessionConfig::speculative()).unwrap()
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "multi-session replay must be reproducible");
    let parallel = run(4);
    assert_eq!(a, parallel, "4 worker threads changed the fleet outcome");
}

#[test]
fn multi_user_replay_is_deterministic() {
    use specdb::sim::replay_multi;
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let model = UserModel::default();
    let traces: Vec<_> = (0..3)
        .map(|i| {
            let cfg = specdb::trace::UserModelConfig { queries: 6, ..Default::default() };
            UserModel::new(cfg, specdb::tpch::ExploreDomain::tpch())
                .generate(&format!("u{i}"), 500 + i)
        })
        .collect();
    let _ = model;
    let run = || {
        let mut db = base.clone();
        replay_multi(&mut db, &traces, &ReplayConfig::speculative()).unwrap()
    };
    let a = run();
    let b = run();
    for (ua, ub) in a.per_user.iter().zip(&b.per_user) {
        assert_eq!(ua.queries.len(), ub.queries.len());
        for (x, y) in ua.queries.iter().zip(&ub.queries) {
            assert_eq!(x.elapsed, y.elapsed);
            assert_eq!(x.rows, y.rows);
        }
        assert_eq!(ua.issued, ub.issued);
    }
}

#[test]
fn stats_are_stable_across_recomputation() {
    let traces = UserModel::default().generate_cohort(5, 7);
    let a = TraceStats::compute(&traces);
    let b = TraceStats::compute(&traces);
    assert_eq!(a.think_time, b.think_time);
    assert_eq!(a.selection_persistence, b.selection_persistence);
}
