//! Cross-crate integration tests: the whole pipeline from SQL text to
//! speculative execution and the experiment harness.

use specdb::core::{SpaceConfig, SpeculatorConfig};
use specdb::exec::{CancelToken, Database, DatabaseConfig, ViewMode};
use specdb::prelude::*;
use specdb::query::{Join, Query};
use specdb::sim::replay::{replay_trace, ReplayConfig};
use specdb::sim::report::pair_runs;
use specdb::sim::{build_base_db, replay_multi, DatasetSpec};
use specdb::tpch::{generate_into, TpchConfig};
use specdb::trace::{UserModel, UserModelConfig};

fn tpch_db(mb: u64) -> Database {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(4096));
    generate_into(&mut db, &TpchConfig::new(mb)).expect("generate");
    db.clear_buffer();
    db
}

#[test]
fn sql_to_execution_over_tpch() {
    let mut db = tpch_db(2);
    let q = parse_sql(
        &db,
        "SELECT customer.c_name, orders.o_totalprice \
         FROM customer, orders \
         WHERE orders.o_custkey = customer.c_custkey AND c_nation = 'FRANCE' \
         AND o_orderpriority <= 2",
    )
    .expect("parse");
    let out = db.execute(&q).expect("execute");
    assert!(out.row_count > 0);
    assert!(out.rows.iter().all(|r| r.arity() == 2));
    // Cross-check against the unfiltered join count.
    let q_all = parse_sql(
        &db,
        "SELECT * FROM customer, orders WHERE orders.o_custkey = customer.c_custkey",
    )
    .unwrap();
    let all = db.execute_discard(&q_all).unwrap();
    assert!(out.row_count < all.row_count);
    assert_eq!(all.row_count, 2 * 2400, "every order joins exactly one customer");
}

#[test]
fn materialization_correctness_under_rewriting() {
    // For a grid of final queries, answers with and without a
    // speculatively materialized sub-query must agree exactly.
    let base = tpch_db(2);
    let mut sub = QueryGraph::new();
    sub.add_join(Join::new("orders", "o_custkey", "customer", "c_custkey"));
    sub.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "GERMANY"),
    ));
    for priority in 1..=5i64 {
        let mut g = sub.clone();
        g.add_selection(Selection::new(
            "orders",
            Predicate::new("o_orderpriority", CompareOp::Le, priority),
        ));
        let q = Query::star(g);
        let mut plain = base.clone();
        let expected = plain.execute_discard(&q).unwrap();
        let mut spec = base.clone();
        spec.materialize(&sub, CancelToken::new()).unwrap();
        let got = spec.execute_discard(&q).unwrap();
        assert!(!got.used_views.is_empty(), "forced mode must rewrite");
        assert_eq!(expected.row_count, got.row_count, "priority {priority}");
    }
}

#[test]
fn subsumption_salvage_matches_cold_execution() {
    use specdb::exec::MatchMode;
    // A near-miss prediction: the speculated query over-shoots the
    // user's final GO (missing one selection), so serving it requires
    // subsumption salvage — rewrite onto the superset view plus a
    // residual filter. The salvaged answer must be bit-identical to a
    // cold execution: same rows, same order, same count.
    let base = tpch_db(2);
    let mut predicted = QueryGraph::new();
    predicted.add_join(Join::new("orders", "o_custkey", "customer", "c_custkey"));
    predicted.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "GERMANY"),
    ));
    let mut go = predicted.clone();
    go.add_selection(Selection::new(
        "orders",
        Predicate::new("o_orderpriority", CompareOp::Le, 2i64),
    ));
    let q = Query::star(go);

    let mut cold = base.clone();
    let expected = cold.execute(&q).unwrap();
    assert!(expected.row_count > 0, "differential needs a non-empty answer");
    assert!(expected.used_views.is_empty(), "cold run must touch base tables only");

    let mut warm = base.clone();
    warm.set_observer(specdb::obs::Observer::enabled());
    warm.set_match_mode(MatchMode::Subsume);
    warm.materialize(&predicted, CancelToken::new()).unwrap();
    let got = warm.execute(&q).unwrap();
    assert!(!got.used_views.is_empty(), "subsumption must salvage the predicted view");
    assert_eq!(expected.row_count, got.row_count);
    assert_eq!(expected.rows, got.rows, "salvaged rows must match cold execution exactly");

    // The salvage path accounts its rewrite time.
    let rendered = warm.observer().metrics().snapshot().render();
    assert!(
        rendered.contains("lat.salvage_rewrite_us"),
        "salvage rewrite timing must be recorded:\n{rendered}"
    );
}

#[test]
fn cost_based_mode_never_worse_than_forced_estimates() {
    let mut db = tpch_db(2);
    db.set_view_mode(ViewMode::CostBased);
    let mut sub = QueryGraph::new();
    sub.add_selection(Selection::new(
        "lineitem",
        Predicate::new("l_quantity", CompareOp::Le, 45i64),
    ));
    db.materialize(&sub, CancelToken::new()).unwrap();
    // Highly selective final query: the base index should win over the
    // big unindexed view; cost-based mode is free to skip the view.
    let mut g = sub.clone();
    g.add_selection(Selection::new("lineitem", Predicate::new("l_orderkey", CompareOp::Eq, 3i64)));
    let q = Query::star(g);
    let cost_based = db.execute_discard(&q).unwrap();
    db.set_view_mode(ViewMode::Forced);
    let forced = db.execute_discard(&q).unwrap();
    assert_eq!(cost_based.row_count, forced.row_count);
    assert!(!forced.used_views.is_empty());
}

#[test]
fn query_from_figure2_runs() {
    // The paper's Figure 2 query shape over real TPC-H relations.
    let mut db = tpch_db(1);
    let q = parse_sql(
        &db,
        "SELECT * FROM lineitem, orders, customer \
         WHERE lineitem.l_orderkey = orders.o_orderkey \
         AND orders.o_custkey = customer.c_custkey \
         AND l_quantity > 10 AND c_acctbal < 2000.0",
    )
    .unwrap();
    let out = db.execute_discard(&q).unwrap();
    assert!(out.row_count > 0);
}

#[test]
fn replay_preserves_answers_and_wins_on_average() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let model = UserModel::new(
        UserModelConfig { queries: 15, questions: 3, ..Default::default() },
        specdb::tpch::ExploreDomain::tpch(),
    );
    let mut total_normal = 0.0;
    let mut total_spec = 0.0;
    for seed in [11u64, 22, 33] {
        let trace = model.generate("u", seed);
        let mut db_n = base.clone();
        let n = replay_trace(&mut db_n, &trace, &ReplayConfig::normal()).unwrap();
        let mut db_s = base.clone();
        let s = replay_trace(&mut db_s, &trace, &ReplayConfig::speculative()).unwrap();
        for (a, b) in n.queries.iter().zip(&s.queries) {
            assert_eq!(a.rows, b.rows, "answers must not change under speculation");
        }
        total_normal += n.total().as_secs_f64();
        total_spec += s.total().as_secs_f64();
        let pairs = pair_runs(&n.queries, &s.queries).expect("aligned replays");
        assert_eq!(pairs.len(), 15);
    }
    assert!(
        total_spec < total_normal,
        "speculation should help on average: {total_spec} vs {total_normal}"
    );
}

#[test]
fn multi_user_replay_preserves_answers() {
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let model = UserModel::new(
        UserModelConfig { queries: 8, questions: 2, ..Default::default() },
        specdb::tpch::ExploreDomain::tpch(),
    );
    let traces: Vec<_> = (0..3).map(|i| model.generate(&format!("u{i}"), 40 + i)).collect();
    let cfg = ReplayConfig {
        speculative: true,
        speculator: SpeculatorConfig { space: SpaceConfig::multi_user(), ..Default::default() },
        ..Default::default()
    };
    let mut db_n = base.clone();
    let normal = replay_multi(&mut db_n, &traces, &ReplayConfig::normal()).unwrap();
    let mut db_s = base.clone();
    let spec = replay_multi(&mut db_s, &traces, &cfg).unwrap();
    for (n_user, s_user) in normal.per_user.iter().zip(&spec.per_user) {
        assert_eq!(n_user.queries.len(), s_user.queries.len());
        for (a, b) in n_user.queries.iter().zip(&s_user.queries) {
            assert_eq!(a.rows, b.rows);
        }
    }
}

#[test]
fn learner_improves_over_a_session() {
    // Replay two traces from the same (synthetic) user; the learner
    // carries no state across replays here, but within one long trace the
    // speculator's completion rate should be healthy.
    let base = build_base_db(&DatasetSpec::tiny()).unwrap();
    let model = UserModel::default();
    let trace = model.generate("u", 5);
    let mut db = base.clone();
    let out = replay_trace(&mut db, &trace, &ReplayConfig::speculative()).unwrap();
    assert!(out.issued >= 10, "42-query trace should speculate often: {}", out.issued);
    assert!(
        out.completed as f64 >= out.issued as f64 * 0.3,
        "most manipulations should complete at tiny scale: {}/{}",
        out.completed,
        out.issued
    );
}
