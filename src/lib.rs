#![warn(missing_docs)]
//! # specdb — Speculative Query Processing
//!
//! A from-scratch Rust reproduction of *"Speculative Query Processing"*
//! (Polyzotis & Ioannidis, CIDR 2003): a database system that exploits
//! the user's *think time* during incremental query formulation to
//! asynchronously prepare the database — materializing likely
//! sub-queries, building indexes and histograms — so the final query runs
//! faster when the user finally presses "GO".
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — pages, heap files, buffer pool, virtual-time disk model
//! * [`catalog`] — schemas, tables, indexes, histograms, view registry
//! * [`query`] — query graphs, partial queries, edits, SQL front end
//! * [`exec`] — operators, optimizer, materialized-view rewriting, engine
//! * [`tpch`] — the paper's skewed TPC-H-subset dataset generator
//! * [`core`] — the speculation subsystem (the paper's contribution)
//! * [`trace`] — user-behaviour model, trace generation and replay format
//! * [`sim`] — discrete-event experiment harness reproducing the paper
//! * [`obs`] — metrics, structured events and prediction calibration
//! * [`serve`] — multi-session serving: fleet governor, shared artifact
//!   cache, TCP wire protocol (see `docs/serving.md`)
//!
//! ## Quickstart
//!
//! ```
//! use specdb::prelude::*;
//!
//! // A small database with one table.
//! let mut db = Database::new(DatabaseConfig::with_buffer_pages(256));
//! db.create_table(
//!     "employee",
//!     Schema::new(vec![
//!         ColumnDef::new("name", DataType::Str),
//!         ColumnDef::new("age", DataType::Int),
//!         ColumnDef::new("salary", DataType::Int),
//!     ]),
//! )
//! .unwrap();
//! let rows: Vec<_> = (0..1000i64)
//!     .map(|i| Tuple::new(vec![
//!         Value::Str(format!("emp{i}")),
//!         Value::Int(20 + i % 40),
//!         Value::Int(30_000 + i * 13 % 50_000),
//!     ]))
//!     .collect();
//! db.load("employee", rows.into_iter()).unwrap();
//!
//! // The user's final query, and its speculative preview.
//! let query = parse_sql(&db, "SELECT name FROM employee WHERE age < 30").unwrap();
//! let out = db.execute(&query).unwrap();
//! assert!(out.rows.iter().all(|r| r.arity() == 1));
//! ```

pub use specdb_catalog as catalog;
pub use specdb_core as core;
pub use specdb_exec as exec;
pub use specdb_obs as obs;
pub use specdb_query as query;
pub use specdb_serve as serve;
pub use specdb_sim as sim;
pub use specdb_storage as storage;
pub use specdb_tpch as tpch;
pub use specdb_trace as trace;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use specdb_catalog::{ColumnDef, DataType, Schema};
    pub use specdb_core::{
        CostModel, Learner, Manipulation, ManipulationSpace, SpaceConfig, Speculator,
        SpeculatorConfig, UserProfile,
    };
    pub use specdb_exec::{Database, DatabaseConfig, QueryOutput};
    pub use specdb_query::{
        parse_sql, CompareOp, EditOp, PartialQuery, Predicate, QueryGraph, Selection,
    };
    pub use specdb_storage::{Tuple, Value, VirtualTime};
}
