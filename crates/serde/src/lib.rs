#![warn(missing_docs)]
//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate provides the small slice of serde's surface the
//! workspace actually uses, backed by a simplified data model: types
//! serialize to a JSON-like [`Value`] tree and deserialize from one.
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` stub (enabled via the `derive` feature, exactly like
//! the real crate).
//!
//! Representation choices (self-consistent, not wire-compatible with
//! real serde_json):
//! * structs → objects, newtype structs → their inner value,
//! * enums → externally tagged (`"Variant"` or `{"Variant": ...}`),
//! * maps → arrays of `[key, value]` pairs so non-string keys survive
//!   JSON (the workspace's learner profiles key maps by tuples).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A JSON-like value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an externally tagged enum value: `{"tag": payload}`.
    pub fn tagged(tag: &str, payload: Value) -> Value {
        Value::Object(vec![(tag.to_string(), payload)])
    }

    /// View this value as an object (pair list), if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// View this value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// View this value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Look up a field in an object's pair list.
pub fn get_field<'a>(pairs: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An arbitrary-message error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError { msg: format!("expected {what} while deserializing {context}") }
    }

    /// Missing-field error.
    pub fn missing(field: &str) -> Self {
        DeError { msg: format!("missing field `{field}`") }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can serialize itself into a [`Value`].
pub trait Serialize {
    /// Convert to the serialization data model.
    fn serialize(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the serialization data model.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Deserialize a field that was absent from its object. `Option` fields
/// succeed with `None` (mirroring serde's missing-field behaviour);
/// everything else reports a missing-field error.
pub fn missing_field<T: Deserialize>(field: &str) -> Result<T, DeError> {
    T::deserialize(&Value::Null).map_err(|_| DeError::missing(field))
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization (identical to [`crate::Deserialize`] here).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{i} out of range"))),
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range"))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{i} out of range"))),
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range"))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(i) => Ok(*i as f64),
            Value::U64(u) => Ok(*u as f64),
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = String::deserialize(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other.kind())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v.kind()))?;
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected {expect}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array of pairs", v.kind()))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair.as_array().ok_or_else(|| DeError::expected("pair", pair.kind()))?;
                if kv.len() != 2 {
                    return Err(DeError::custom("map entry must be a [key, value] pair"));
                }
                Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
            })
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array of pairs", v.kind()))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair.as_array().ok_or_else(|| DeError::expected("pair", pair.kind()))?;
                if kv.len() != 2 {
                    return Err(DeError::custom("map entry must be a [key, value] pair"));
                }
                Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
