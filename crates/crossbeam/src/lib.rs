#![warn(missing_docs)]
//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` over
//! `std::sync::mpsc` — sufficient for the workspace's single-consumer
//! worker-event channels.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvError> {
            self.0.recv_timeout(timeout).map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
