#![warn(missing_docs)]
//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` over
//! `std::sync::mpsc`, `crossbeam::thread::scope` over
//! `std::thread::scope`, and `crossbeam::utils::CachePadded` — the
//! primitives the morsel worker pool and sharded metric counters need.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        ///
        /// Unlike `std`, crossbeam's `join` returns `Err` with the panic
        /// payload instead of propagating the panic.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// A scope in which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from outside the scope.
        ///
        /// Crossbeam passes the scope itself to the closure; the
        /// stand-in keeps that shape so call sites stay portable.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// `scope` returns. Returns `Err` if any unjoined thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let total = AtomicU64::new(0);
            let parts = [1u64, 2, 3, 4];
            super::scope(|s| {
                for p in &parts {
                    s.spawn(|_| total.fetch_add(*p, Ordering::Relaxed));
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn join_returns_thread_result() {
            let answer = super::scope(|s| {
                let h = s.spawn(|_| 21 * 2);
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(answer, 42);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn::<_, ()>(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}

/// Small utilities, mirroring `crossbeam::utils`.
pub mod utils {
    /// Pads and aligns a value to 64 bytes so neighbouring shards do
    /// not share a cache line (the whole point of per-worker counter
    /// shards is to avoid ping-ponging one line between cores).
    #[derive(Debug, Default)]
    #[repr(align(64))]
    pub struct CachePadded<T>(T);

    impl<T> CachePadded<T> {
        /// Wrap `t` in cache-line padding.
        pub const fn new(t: T) -> Self {
            CachePadded(t)
        }

        /// Unwrap, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn aligned_to_cache_line() {
            assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 64);
            let cells: [CachePadded<u64>; 2] = [CachePadded::new(0), CachePadded::new(0)];
            let a = &cells[0] as *const _ as usize;
            let b = &cells[1] as *const _ as usize;
            assert!(b - a >= 64, "shards must land on distinct lines");
        }

        #[test]
        fn deref_reaches_inner_value() {
            let mut c = CachePadded::new(5u32);
            *c += 1;
            assert_eq!(*c, 6);
            assert_eq!(c.into_inner(), 6);
        }
    }
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvError> {
            self.0.recv_timeout(timeout).map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
