#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate (0.8 surface subset).
//!
//! Implements exactly what this workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`],
//! [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::choose`]/[`seq::SliceRandom::shuffle`]. The
//! generator is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, which is all the experiment harness requires.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range a generator can sample uniformly.
pub trait SampleRange<T> {
    /// Sample one value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer sampling (Lemire-style
/// widening multiply; the tiny modulo bias is irrelevant here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&f));
            let s: f64 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        assert!(items.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "a 50-element shuffle should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
