#![warn(missing_docs)]
//! Offline stand-in for `serde_json`.
//!
//! JSON text encoding/decoding for the stub `serde` crate's [`Value`]
//! model. Provides the entry points the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_writer_pretty`], [`from_str`], and
//! [`from_reader`]. Numbers round-trip exactly: integers print as
//! integers, and floats rely on Rust's shortest-round-trip `Display`.

use serde::Serialize;
pub use serde::Value;
use std::io::{Read, Write};

/// A JSON encoding or decoding error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    w.write_all(text.as_bytes()).map_err(|e| Error::new(format!("write: {e}")))
}

/// Serialize a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    w.write_all(text.as_bytes()).map_err(|e| Error::new(format!("write: {e}")))
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Deserialize a value from a reader producing JSON text.
pub fn from_reader<R: Read, T: serde::de::DeserializeOwned>(mut r: R) -> Result<T, Error> {
    let mut buf = String::new();
    r.read_to_string(&mut buf).map_err(|e| Error::new(format!("read: {e}")))?;
    from_str(&buf)
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                // Keep floats distinguishable from integers on re-parse.
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !self.literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("-42", Value::I64(-42)),
            ("18446744073709551615", Value::U64(u64::MAX)),
            ("1.5", Value::F64(1.5)),
            ("\"a\\nb\"", Value::Str("a\nb".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn float_round_trips_exactly() {
        for f in [0.1, 1234.56, -1e-9, std::f64::consts::PI, 1e300] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::F64(2.0));
    }

    #[test]
    fn nested_pretty_parses_back() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![Value::I64(1), Value::I64(2)])),
            ("s".into(), Value::Str("hi \"there\"".into())),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &v).unwrap();
        let back = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["{nope", "[1,", "\"unterminated", "1.2.3", "", "[1] extra"] {
            assert!(parse(text).is_err(), "{text}");
        }
    }
}
