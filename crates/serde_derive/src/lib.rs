#![warn(missing_docs)]
//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the stub `serde` crate without `syn`/`quote`: the input token stream
//! is parsed by hand into a simplified shape (named/tuple/unit structs,
//! enums with unit/tuple/struct variants, simple type generics) and the
//! impl is emitted as formatted source text.
//!
//! Supported field attributes: `#[serde(skip)]` (not serialized,
//! defaulted on deserialize) and `#[serde(default)]` (defaulted when the
//! field is missing). Other `#[serde(...)]` arguments are rejected at
//! compile time rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input).map(|item| generate(&item, mode)) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct GenParam {
    name: String,
    bounds: String,
}

struct Item {
    name: String,
    generics: Vec<GenParam>,
    kind: Kind,
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`),
    /// returning the serde flags found in skipped attributes.
    fn skip_attrs_and_vis(&mut self) -> Result<(bool, bool), String> {
        let mut skip = false;
        let mut default = false;
        loop {
            if self.peek_punct('#') {
                self.pos += 1;
                match self.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let (s, d) = parse_attr(g.stream())?;
                        skip |= s;
                        default |= d;
                    }
                    _ => return Err("malformed attribute".into()),
                }
            } else if self.eat_ident("pub") {
                // Swallow `pub(crate)` / `pub(super)` scope groups.
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            } else {
                return Ok((skip, default));
            }
        }
    }

    /// Consume a type (or bound list) up to a top-level `,`, tracking
    /// angle-bracket depth. Stops before the comma.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Extract (skip, default) from one attribute's token stream.
fn parse_attr(ts: TokenStream) -> Result<(bool, bool), String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return Ok((false, false)),
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        return Ok((false, false));
    };
    let mut skip = false;
    let mut default = false;
    for t in args.stream() {
        match &t {
            TokenTree::Ident(i) if i.to_string() == "skip" => skip = true,
            TokenTree::Ident(i) if i.to_string() == "default" => default = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "unsupported serde attribute argument `{other}` (stub serde_derive supports only `skip` and `default`)"
                ))
            }
        }
    }
    Ok((skip, default))
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis()?;
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        return Err("expected `struct` or `enum`".into());
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected type name".into()),
    };
    let generics = if c.peek_punct('<') { parse_generics(&mut c)? } else { Vec::new() };
    if matches!(c.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        return Err("stub serde_derive does not support `where` clauses".into());
    }
    let kind = if is_enum {
        let Some(TokenTree::Group(g)) = c.next() else {
            return Err("expected enum body".into());
        };
        Kind::Enum(parse_variants(g.stream())?)
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream())?))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            _ => return Err("expected struct body".into()),
        }
    };
    Ok(Item { name, generics, kind })
}

fn parse_generics(c: &mut Cursor) -> Result<Vec<GenParam>, String> {
    assert!(c.eat_punct('<'));
    let mut params = Vec::new();
    let mut depth = 1i32;
    let mut current: Vec<TokenTree> = Vec::new();
    loop {
        let Some(t) = c.next() else { return Err("unterminated generics".into()) };
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        params.push(gen_param(&current)?);
                    }
                    return Ok(params);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !current.is_empty() {
                    params.push(gen_param(&current)?);
                }
                current.clear();
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
}

fn gen_param(toks: &[TokenTree]) -> Result<GenParam, String> {
    if matches!(toks.first(), Some(TokenTree::Punct(p)) if p.as_char() == '\'') {
        return Err("stub serde_derive does not support lifetime parameters".into());
    }
    if matches!(toks.first(), Some(TokenTree::Ident(i)) if i.to_string() == "const") {
        return Err("stub serde_derive does not support const parameters".into());
    }
    let name = match toks.first() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("malformed generic parameter".into()),
    };
    let bounds = if matches!(toks.get(1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
        toks[2..].iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
    } else {
        String::new()
    };
    Ok(GenParam { name, bounds })
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (skip, default) = c.skip_attrs_and_vis()?;
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        if !c.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, skip, default });
    }
    Ok(fields)
}

fn count_tuple_fields(ts: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(ts);
    let mut count = 0usize;
    while c.peek().is_some() {
        let (skip, default) = c.skip_attrs_and_vis()?;
        if skip || default {
            return Err("serde attributes on tuple-struct fields are not supported".into());
        }
        if c.peek().is_none() {
            break;
        }
        c.skip_type();
        c.eat_punct(',');
        count += 1;
    }
    Ok(count)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs_and_vis()?;
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream())?;
                c.pos += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                c.pos += 1;
                Shape::Named(f)
            }
            _ => Shape::Unit,
        };
        if c.peek_punct('=') {
            return Err("stub serde_derive does not support enum discriminants".into());
        }
        c.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// `impl<...> Trait for Name<...>` header pieces for the given mode.
fn impl_header(item: &Item, mode: Mode) -> (String, String) {
    let bound = match mode {
        Mode::Ser => "::serde::Serialize",
        Mode::De => "::serde::Deserialize",
    };
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let decls: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if p.bounds.is_empty() {
                format!("{}: {bound}", p.name)
            } else {
                format!("{}: {} + {bound}", p.name, p.bounds)
            }
        })
        .collect();
    let names: Vec<&str> = item.generics.iter().map(|p| p.name.as_str()).collect();
    (format!("<{}>", decls.join(", ")), format!("<{}>", names.join(", ")))
}

fn generate(item: &Item, mode: Mode) -> String {
    let (decl, args) = impl_header(item, mode);
    let name = &item.name;
    match mode {
        Mode::Ser => {
            let body = match &item.kind {
                Kind::Struct(shape) => ser_shape_expr(shape, &SelfAccess::Struct),
                Kind::Enum(variants) => {
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|v| {
                            let (pattern, access) = variant_pattern(name, v);
                            let expr = match &v.shape {
                                Shape::Unit => {
                                    format!("::serde::Value::Str({:?}.to_string())", v.name)
                                }
                                shape => format!(
                                    "::serde::Value::tagged({:?}, {})",
                                    v.name,
                                    ser_shape_expr(shape, &access)
                                ),
                            };
                            format!("{pattern} => {expr},")
                        })
                        .collect();
                    format!("match self {{ {} }}", arms.join("\n"))
                }
            };
            format!(
                "impl{decl} ::serde::Serialize for {name}{args} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Mode::De => {
            let body = match &item.kind {
                Kind::Struct(shape) => de_shape_expr(name, shape, name, "v"),
                Kind::Enum(variants) => de_enum_expr(name, variants),
            };
            format!(
                "impl{decl} ::serde::Deserialize for {name}{args} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
            )
        }
    }
}

/// How generated serialization code reaches the fields.
enum SelfAccess {
    /// `self.field` / `self.0` (structs).
    Struct,
    /// Bound names from a match pattern (enum variants).
    Bound(Vec<String>),
}

fn variant_pattern(enum_name: &str, v: &Variant) -> (String, SelfAccess) {
    match &v.shape {
        Shape::Unit => (format!("{enum_name}::{}", v.name), SelfAccess::Bound(Vec::new())),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            (format!("{enum_name}::{}({})", v.name, binds.join(", ")), SelfAccess::Bound(binds))
        }
        Shape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            (
                format!("{enum_name}::{} {{ {} }}", v.name, binds.join(", ")),
                SelfAccess::Bound(binds),
            )
        }
    }
}

fn ser_shape_expr(shape: &Shape, access: &SelfAccess) -> String {
    let field_ref = |i: usize, name: &str| -> String {
        match access {
            SelfAccess::Struct => {
                if name.is_empty() {
                    format!("&self.{i}")
                } else {
                    format!("&self.{name}")
                }
            }
            SelfAccess::Bound(binds) => binds[i].clone(),
        }
    };
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => {
            format!("::serde::Serialize::serialize({})", field_ref(0, ""))
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize({})", field_ref(i, "")))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.skip)
                .map(|(i, f)| {
                    format!(
                        "__pairs.push(({:?}.to_string(), ::serde::Serialize::serialize({})));",
                        f.name,
                        field_ref(i, &f.name)
                    )
                })
                .collect();
            format!(
                "{{ let mut __pairs: Vec<(String, ::serde::Value)> = Vec::new(); {} ::serde::Value::Object(__pairs) }}",
                pushes.join(" ")
            )
        }
    }
}

/// Expression (evaluating to `Result<Self, DeError>`) deserializing
/// `shape` for constructor path `ctor` from value expression `src`.
fn de_shape_expr(type_name: &str, shape: &Shape, ctor: &str, src: &str) -> String {
    match shape {
        Shape::Unit => format!(
            "if matches!({src}, ::serde::Value::Null) {{ Ok({ctor}) }} else {{ Err(::serde::DeError::expected(\"null\", {type_name:?})) }}"
        ),
        Shape::Tuple(1) => {
            format!("Ok({ctor}(::serde::Deserialize::deserialize({src})?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = {src}.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", {type_name:?}))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::DeError::custom(format!(\"expected {n} elements for {type_name}, got {{}}\", __items.len()))); }}\n\
                 Ok({ctor}({items})) }}",
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default(),", f.name)
                    } else if f.default {
                        format!(
                            "{name}: match ::serde::get_field(__pairs, {name:?}) {{ Some(__x) => ::serde::Deserialize::deserialize(__x)?, None => ::core::default::Default::default() }},",
                            name = f.name
                        )
                    } else {
                        format!(
                            "{name}: match ::serde::get_field(__pairs, {name:?}) {{ Some(__x) => ::serde::Deserialize::deserialize(__x)?, None => ::serde::missing_field(concat!({type_name:?}, \".\", {name:?}))? }},",
                            name = f.name
                        )
                    }
                })
                .collect();
            format!(
                "{{ let __pairs = {src}.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", {type_name:?}))?;\n\
                 Ok({ctor} {{ {} }}) }}",
                inits.join(" ")
            )
        }
    }
}

fn de_enum_expr(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| {
            let expr = de_shape_expr(name, &v.shape, &format!("{name}::{}", v.name), "__payload");
            format!("{:?} => {expr},", v.name)
        })
        .collect();
    format!(
        "match v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
           {unit}\n\
           __other => Err(::serde::DeError::custom(format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
         }},\n\
         ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
           let (__tag, __payload) = (&__pairs[0].0, &__pairs[0].1);\n\
           match __tag.as_str() {{\n\
             {payload}\n\
             __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
           }}\n\
         }},\n\
         __other => Err(::serde::DeError::expected(\"enum value\", __other.kind())),\n\
        }}",
        unit = unit_arms.join("\n"),
        payload = payload_arms.join("\n"),
    )
}
