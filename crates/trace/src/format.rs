//! Trace file (de)serialization.
//!
//! The paper's modified SQUID interface "recorded the timing and actions
//! of each user in a separate trace file, which was then used to replay
//! the user session on demand". Traces here serialize to JSON — one
//! object per trace — so generated cohorts can be saved, inspected, and
//! replayed byte-identically.

use crate::event::Trace;
use std::io::{Read, Write};
use std::path::Path;

/// Errors from trace file I/O.
#[derive(Debug)]
pub enum TraceFileError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O: {e}"),
            TraceFileError::Json(e) => write!(f, "trace file JSON: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<serde_json::Error> for TraceFileError {
    fn from(e: serde_json::Error) -> Self {
        TraceFileError::Json(e)
    }
}

/// Serialize traces to a writer as pretty JSON.
pub fn write_traces<W: Write>(w: W, traces: &[Trace]) -> Result<(), TraceFileError> {
    serde_json::to_writer_pretty(w, traces)?;
    Ok(())
}

/// Deserialize traces from a reader.
pub fn read_traces<R: Read>(r: R) -> Result<Vec<Trace>, TraceFileError> {
    Ok(serde_json::from_reader(r)?)
}

/// Save traces to a file path.
pub fn save(path: impl AsRef<Path>, traces: &[Trace]) -> Result<(), TraceFileError> {
    let f = std::fs::File::create(path)?;
    write_traces(std::io::BufWriter::new(f), traces)
}

/// Load traces from a file path.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<Trace>, TraceFileError> {
    let f = std::fs::File::open(path)?;
    read_traces(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UserModel;

    #[test]
    fn json_round_trip() {
        let traces = UserModel::default().generate_cohort(2, 77);
        let mut buf = Vec::new();
        write_traces(&mut buf, &traces).unwrap();
        let restored = read_traces(&buf[..]).unwrap();
        assert_eq!(traces, restored);
    }

    #[test]
    fn file_round_trip() {
        let traces = UserModel::default().generate_cohort(1, 3);
        let dir = std::env::temp_dir().join("specdb-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        save(&path, &traces).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(traces, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_errors() {
        assert!(matches!(read_traces(&b"{nope"[..]), Err(TraceFileError::Json(_))));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(load("/nonexistent/specdb/file.json"), Err(TraceFileError::Io(_))));
    }
}
