//! Timed edit streams and replay helpers.

use serde::{Deserialize, Serialize};
use specdb_query::{EditOp, PartialQuery, Query};
use specdb_storage::VirtualTime;

/// One user action with its virtual timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEdit {
    /// When the action happened (virtual time since trace start).
    pub at: VirtualTime,
    /// The action.
    pub op: EditOp,
}

/// A recorded (or generated) user trace: a timed stream of edits in
/// which every query formulation ends with a GO event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// User label.
    pub user: String,
    /// Generator seed (0 for recorded traces).
    pub seed: u64,
    /// The timed edit stream.
    pub edits: Vec<TimedEdit>,
}

/// A view of one query formulation within a trace: the edits leading up
/// to (and including) a GO event.
#[derive(Debug, Clone)]
pub struct FormulationView<'a> {
    /// Edits of this formulation; the last one is the GO.
    pub edits: &'a [TimedEdit],
    /// The final query submitted at GO.
    pub final_query: Query,
    /// When formulation started (first edit).
    pub start: VirtualTime,
    /// When GO was pressed.
    pub go_at: VirtualTime,
}

impl FormulationView<'_> {
    /// Total formulation duration (the user's think time for this query).
    pub fn duration(&self) -> VirtualTime {
        self.go_at.saturating_sub(self.start)
    }
}

impl Trace {
    /// Split the trace into per-query formulations, replaying the edit
    /// stream to recover each final query. Edits after the last GO (an
    /// abandoned formulation) are ignored.
    pub fn formulations(&self) -> Vec<FormulationView<'_>> {
        let mut out = Vec::new();
        let mut pq = PartialQuery::new();
        let mut start_idx = 0;
        for (i, te) in self.edits.iter().enumerate() {
            let is_go = pq.apply(&te.op);
            if is_go {
                let edits = &self.edits[start_idx..=i];
                out.push(FormulationView {
                    edits,
                    final_query: pq.query().clone(),
                    start: edits.first().expect("formulation has edits").at,
                    go_at: te.at,
                });
                start_idx = i + 1;
            }
        }
        out
    }

    /// Number of completed queries (GO events).
    pub fn query_count(&self) -> usize {
        self.edits.iter().filter(|e| e.op.is_go()).count()
    }

    /// Total trace duration.
    pub fn duration(&self) -> VirtualTime {
        self.edits.last().map(|e| e.at).unwrap_or(VirtualTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_query::{CompareOp, Predicate, Selection};

    fn sel(v: i64) -> Selection {
        Selection::new("t", Predicate::new("c", CompareOp::Lt, v))
    }

    fn trace() -> Trace {
        let s = |secs: u64, op: EditOp| TimedEdit { at: VirtualTime::from_secs(secs), op };
        Trace {
            user: "u0".into(),
            seed: 1,
            edits: vec![
                s(0, EditOp::AddRelation("t".into())),
                s(5, EditOp::AddSelection(sel(10))),
                s(12, EditOp::Go),
                s(20, EditOp::AddSelection(sel(20))),
                s(21, EditOp::RemoveSelection(sel(10))),
                s(33, EditOp::Go),
                // Abandoned tail (no GO).
                s(40, EditOp::AddSelection(sel(99))),
            ],
        }
    }

    #[test]
    fn formulations_split_on_go() {
        let t = trace();
        let fs = t.formulations();
        assert_eq!(fs.len(), 2);
        assert_eq!(t.query_count(), 2);
        assert_eq!(fs[0].final_query.graph.selection_count(), 1);
        assert_eq!(fs[0].duration(), VirtualTime::from_secs(12));
        // Second formulation carries state: 20-selection replaces 10.
        let sels: Vec<_> = fs[1].final_query.graph.selections().collect();
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].pred.value, specdb_storage::Value::Int(20));
        assert_eq!(fs[1].duration(), VirtualTime::from_secs(13));
    }

    #[test]
    fn abandoned_tail_ignored() {
        let t = trace();
        let fs = t.formulations();
        assert!(fs.iter().all(|f| f
            .final_query
            .graph
            .selections()
            .all(|s| s.pred.value != specdb_storage::Value::Int(99))));
    }

    #[test]
    fn empty_trace() {
        let t = Trace { user: "u".into(), seed: 0, edits: vec![] };
        assert!(t.formulations().is_empty());
        assert_eq!(t.duration(), VirtualTime::ZERO);
    }
}
