//! The calibrated stochastic user model.
//!
//! Reproduces the *statistical* shape of the paper's fifteen human
//! traces (Section 5):
//!
//! * ~42 SQL queries per trace, issued while answering 5 exploration
//!   questions (each question starts a fresh line of investigation),
//! * 1–2 selection predicates and ~4 relations per query,
//! * a placed selection persists ~3 consecutive queries, a join ~10,
//! * think-time per formulation: min/avg/max ≈ 1/28/680 s with quartiles
//!   4/11/29 s — matched with a clamped log-normal,
//! * occasional *recanted* edits (parts added then removed before GO) —
//!   the uncertainty that makes the Learner's survival estimates matter.
//!
//! Everything is deterministic given the seed.

use crate::event::{TimedEdit, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specdb_query::{EditOp, QueryGraph};
use specdb_storage::VirtualTime;
use specdb_tpch::ExploreDomain;

/// User-model parameters (defaults match the paper's Section 5 stats).
#[derive(Debug, Clone)]
pub struct UserModelConfig {
    /// Queries per trace.
    pub queries: usize,
    /// Exploration questions per trace (fresh start at each boundary).
    pub questions: usize,
    /// Mean target relations per query.
    pub target_relations: f64,
    /// Probability a query has two selections instead of one.
    pub p_second_selection: f64,
    /// Probability of a recanted (added-then-removed) selection per query.
    pub p_recant: f64,
    /// Per-query probability an existing selection stays unmodified
    /// (0.75, empirically calibrated so the measured mean persistence
    /// lands at the paper's ~3 consecutive queries once question
    /// boundaries and canvas pruning are accounted for).
    pub sel_keep: f64,
    /// Per-query survival probability of an existing join (0.9,
    /// calibrated to the paper's ~10-query join persistence).
    pub join_keep: f64,
    /// Median formulation duration, seconds (paper: 11).
    pub think_median_secs: f64,
    /// Log-normal sigma (1.44 reproduces the 4/11/29 quartiles).
    pub think_sigma: f64,
    /// Clamp bounds for formulation duration, seconds (paper: 1 and 680).
    pub think_min_secs: f64,
    /// Upper clamp.
    pub think_max_secs: f64,
}

impl Default for UserModelConfig {
    fn default() -> Self {
        UserModelConfig {
            queries: 42,
            questions: 5,
            target_relations: 4.0,
            p_second_selection: 0.5,
            p_recant: 0.18,
            sel_keep: 0.75,
            join_keep: 0.9,
            think_median_secs: 11.0,
            think_sigma: 1.44,
            think_min_secs: 1.0,
            think_max_secs: 680.0,
        }
    }
}

/// The user model: generates traces over an exploration domain.
#[derive(Debug, Clone)]
pub struct UserModel {
    config: UserModelConfig,
    domain: ExploreDomain,
}

impl Default for UserModel {
    fn default() -> Self {
        UserModel { config: UserModelConfig::default(), domain: ExploreDomain::tpch() }
    }
}

impl UserModel {
    /// Model with explicit parameters.
    pub fn new(config: UserModelConfig, domain: ExploreDomain) -> Self {
        UserModel { config, domain }
    }

    /// The configuration.
    pub fn config(&self) -> &UserModelConfig {
        &self.config
    }

    /// Generate one user trace.
    pub fn generate(&self, user: &str, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = &self.config;
        let mut edits: Vec<TimedEdit> = Vec::new();
        let mut graph = QueryGraph::new();
        let mut clock = VirtualTime::ZERO;
        let per_question = cfg.queries.div_ceil(cfg.questions).max(1);
        for q in 0..cfg.queries {
            let mut ops: Vec<EditOp> = Vec::new();
            // Question boundary: clear the canvas.
            if q % per_question == 0 && !graph.is_empty() {
                for rel in graph.relations().map(str::to_string).collect::<Vec<_>>() {
                    ops.push(EditOp::RemoveRelation(rel));
                }
                graph = QueryGraph::new();
            }
            // Churn phase: each existing selection stays unmodified with
            // probability `sel_keep`; otherwise the user either tweaks
            // its constant (an UpdateSelection — the common case in the
            // paper, whose persistence metric counts "unmodified"
            // stretches) or drops it entirely.
            for s in graph.selections().cloned().collect::<Vec<_>>() {
                if rng.gen_bool(cfg.sel_keep) {
                    continue;
                }
                let tweak = rng.gen_bool(0.6);
                if tweak {
                    if let Some(new) = self.domain.sample_selection_on(&mut rng, &s.rel) {
                        if !graph.selections().any(|e| e == &new) {
                            graph.remove_selection(&s);
                            graph.add_selection(new.clone());
                            ops.push(EditOp::UpdateSelection { old: s, new });
                            continue;
                        }
                    }
                }
                ops.push(EditOp::RemoveSelection(s.clone()));
                graph.remove_selection(&s);
            }
            // Joins age out at the *frontier*: the user detaches a leaf
            // relation (degree 1, preferably one they have no predicate
            // on) rather than cutting the graph in half — keeping the
            // canvas connected, as real exploration does.
            for j in graph.joins().cloned().collect::<Vec<_>>() {
                if !graph.joins().any(|g| g == &j) {
                    continue; // already gone via an earlier leaf removal
                }
                if rng.gen_bool(cfg.join_keep) {
                    continue;
                }
                let degree = |rel: &str| graph.joins_on(rel).count();
                let has_sel = |rel: &str| graph.selections_on(rel).next().is_some();
                // Only detach leaves the user has no predicate on — a
                // relation they are actively filtering stays on canvas.
                let leaf = [j.left.as_str(), j.right.as_str()]
                    .into_iter()
                    .find(|r| degree(r) == 1 && !has_sel(r));
                if let Some(leaf) = leaf.map(str::to_string) {
                    if graph.rel_count() > 1 {
                        ops.push(EditOp::RemoveRelation(leaf.clone()));
                        graph.remove_relation(&leaf);
                    }
                }
            }
            // Growth phase: reach the target relation count via FK joins.
            let desired_rels = {
                let jitter: f64 = rng.gen_range(-1.2..1.2);
                (cfg.target_relations + jitter).round().clamp(1.0, 6.0) as usize
            };
            if graph.is_empty() {
                let tables = self.domain.tables();
                let seed_table = tables[rng.gen_range(0..tables.len())];
                ops.push(EditOp::AddRelation(seed_table.to_string()));
                graph.add_relation(seed_table);
            }
            // Grow joins and selections *interleaved*, the way real users
            // work (paper Figure 1 places a predicate before the GO, and
            // exploration mixes drawing join edges with filtering). The
            // interleaving matters downstream: a join materialization
            // issued while the user's selective predicates are already on
            // the canvas includes them (small, useful view); one issued
            // before any predicate exists materializes a huge raw join.
            let desired_sels = 1 + usize::from(rng.gen_bool(cfg.p_second_selection));
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 40 {
                    break;
                }
                let want_join = graph.rel_count() < desired_rels;
                let want_sel = graph.selection_count() < desired_sels;
                if !want_join && !want_sel {
                    break;
                }
                let do_join = want_join && (!want_sel || rng.gen_bool(0.5));
                if do_join {
                    let present: Vec<&str> = graph.relations().collect();
                    let expanding = self.domain.expanding_joins(&present);
                    if expanding.is_empty() {
                        if !want_sel {
                            break;
                        }
                        continue;
                    }
                    let join = expanding[rng.gen_range(0..expanding.len())].clone();
                    let new_rel = if present.contains(&join.left.as_str()) {
                        &join.right
                    } else {
                        &join.left
                    };
                    ops.push(EditOp::AddRelation(new_rel.clone()));
                    ops.push(EditOp::AddJoin(join.clone()));
                    graph.add_join(join);
                } else {
                    let present: Vec<String> = graph.relations().map(str::to_string).collect();
                    let table = &present[rng.gen_range(0..present.len())];
                    if let Some(s) = self.domain.sample_selection_on(&mut rng, table) {
                        if graph.selections().any(|e| e == &s) {
                            continue;
                        }
                        ops.push(EditOp::AddSelection(s.clone()));
                        graph.add_selection(s);
                    }
                }
            }
            // Recant phase: a tentative predicate the user thinks better of.
            if rng.gen_bool(cfg.p_recant) {
                let present: Vec<String> = graph.relations().map(str::to_string).collect();
                let table = &present[rng.gen_range(0..present.len())];
                if let Some(s) = self.domain.sample_selection_on(&mut rng, table) {
                    if !graph.selections().any(|e| e == &s) {
                        ops.push(EditOp::AddSelection(s.clone()));
                        ops.push(EditOp::RemoveSelection(s));
                    }
                }
            }
            // A formulation always contains at least one visible action
            // (the paper measures formulations from "the first
            // modification of the visual query"). When the random walk
            // left the query untouched, the user re-examines the canvas —
            // modelled as re-placing an existing relation, which changes
            // nothing semantically (re-running the previous query is a
            // real and common exploration step).
            if ops.is_empty() {
                let rel = graph.relations().next().expect("graph nonempty").to_string();
                ops.push(EditOp::AddRelation(rel));
            }
            // Timing: formulation runs from the first edit to GO (the
            // paper's definition), lasting a log-normal total split into
            // think gaps between the edits.
            let total_secs = self.sample_think(&mut rng);
            let n = ops.len().max(1);
            let mut weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w = *w / wsum * total_secs;
            }
            let fstart = clock;
            let mut offset = 0.0;
            for (i, op) in ops.into_iter().enumerate() {
                edits.push(TimedEdit { at: fstart + VirtualTime::from_secs_f64(offset), op });
                offset += weights[i];
            }
            // GO lands exactly at first-edit + total.
            clock = fstart + VirtualTime::from_secs_f64(total_secs);
            edits.push(TimedEdit { at: clock, op: EditOp::Go });
            // Inter-query gap: the user looks at results before resuming.
            clock += VirtualTime::from_secs_f64(rng.gen_range(2.0..10.0));
        }
        Trace { user: user.to_string(), seed, edits }
    }

    /// Generate the paper's cohort: `n` users with derived seeds.
    pub fn generate_cohort(&self, n: usize, base_seed: u64) -> Vec<Trace> {
        (0..n)
            .map(|i| self.generate(&format!("user{i:02}"), base_seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }

    /// Generate a train / held-out split for offline predictor
    /// evaluation: `train + held_out` users with disjoint derived
    /// seeds, the first `train` forming the training corpus. The split
    /// is deterministic in `base_seed`, so accuracy floors measured on
    /// it are stable across runs and machines.
    pub fn generate_split(&self, train: usize, held_out: usize, base_seed: u64) -> CorpusSplit {
        let mut all = self.generate_cohort(train + held_out, base_seed);
        let held_out = all.split_off(train);
        CorpusSplit { train: all, held_out }
    }

    fn sample_think(&self, rng: &mut StdRng) -> f64 {
        let cfg = &self.config;
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = (cfg.think_median_secs.ln() + cfg.think_sigma * z).exp();
        sample.clamp(cfg.think_min_secs, cfg.think_max_secs)
    }
}

/// A train / held-out partition of a generated cohort, for training
/// and evaluating the edit predictor offline (see
/// [`UserModel::generate_split`]).
#[derive(Debug, Clone)]
pub struct CorpusSplit {
    /// Traces whose formulations feed predictor training.
    pub train: Vec<Trace>,
    /// Disjoint traces reserved for accuracy measurement.
    pub held_out: Vec<Trace>,
}

impl CorpusSplit {
    /// Total formulations (completed queries) in the training half.
    pub fn train_formulations(&self) -> usize {
        self.train.iter().map(|t| t.formulations().len()).sum()
    }

    /// Total formulations in the held-out half.
    pub fn held_out_formulations(&self) -> usize {
        self.held_out.iter().map(|t| t.formulations().len()).sum()
    }
}

/// Convenience: true parameters of the model as an oracle profile
/// (used by the learner ablation as its upper bound).
pub fn oracle_profile(cfg: &UserModelConfig) -> specdb_core::OracleProfile {
    // A selection survives formulation unless it was a recant; given ~1.5
    // real selections and p_recant tentative ones, the survival rate of
    // an observed selection ≈ real / (real + recanted).
    let real = 1.0 + cfg.p_second_selection;
    let sel_survival = real / (real + cfg.p_recant);
    specdb_core::OracleProfile {
        sel_survival,
        join_survival: 1.0,
        sel_persistence: cfg.sel_keep,
        join_persistence: cfg.join_keep,
        think_mean_secs: 28.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> UserModel {
        UserModel::default()
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let m = small_model();
        let a = m.generate_split(2, 1, 9);
        let b = m.generate_split(2, 1, 9);
        assert_eq!(a.train.len(), 2);
        assert_eq!(a.held_out.len(), 1);
        assert_eq!(a.train[0].edits, b.train[0].edits, "split must be seed-deterministic");
        assert_eq!(a.held_out[0].edits, b.held_out[0].edits);
        assert_ne!(a.train[0].seed, a.held_out[0].seed, "halves must use disjoint seeds");
        assert!(a.train_formulations() > 0);
        assert!(a.held_out_formulations() > 0);
    }

    #[test]
    fn generates_requested_query_count() {
        let t = small_model().generate("u", 42);
        assert_eq!(t.query_count(), 42);
        assert_eq!(t.formulations().len(), 42);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_model().generate("u", 7);
        let b = small_model().generate("u", 7);
        assert_eq!(a, b);
        let c = small_model().generate("u", 8);
        assert_ne!(a, c);
    }

    #[test]
    fn final_queries_are_nonempty_and_connected() {
        let t = small_model().generate("u", 3);
        for f in t.formulations() {
            assert!(!f.final_query.graph.is_empty());
            assert!(
                f.final_query.graph.is_connected(),
                "final query must be connected: {}",
                f.final_query.graph
            );
            assert!(f.final_query.graph.selection_count() >= 1);
        }
    }

    #[test]
    fn timestamps_monotonic() {
        let t = small_model().generate("u", 9);
        for w in t.edits.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn query_shape_matches_paper_targets() {
        let traces = small_model().generate_cohort(5, 11);
        let mut sels = 0.0;
        let mut rels = 0.0;
        let mut n = 0.0;
        for t in &traces {
            for f in t.formulations() {
                sels += f.final_query.graph.selection_count() as f64;
                rels += f.final_query.graph.rel_count() as f64;
                n += 1.0;
            }
        }
        let avg_sels = sels / n;
        let avg_rels = rels / n;
        assert!((1.0..=2.2).contains(&avg_sels), "selections/query {avg_sels}");
        assert!((2.5..=5.0).contains(&avg_rels), "relations/query {avg_rels}");
    }

    #[test]
    fn think_time_distribution_in_range() {
        let traces = small_model().generate_cohort(15, 5);
        let mut durations: Vec<f64> = traces
            .iter()
            .flat_map(|t| {
                t.formulations().iter().map(|f| f.duration().as_secs_f64()).collect::<Vec<_>>()
            })
            .collect();
        durations.sort_by(|a, b| a.total_cmp(b));
        let n = durations.len();
        let avg: f64 = durations.iter().sum::<f64>() / n as f64;
        let median = durations[n / 2];
        assert!(durations[0] >= 1.0, "min clamp");
        assert!(*durations.last().unwrap() <= 680.0, "max clamp");
        assert!((15.0..45.0).contains(&avg), "avg think {avg}");
        assert!((7.0..18.0).contains(&median), "median think {median}");
    }

    #[test]
    fn cohort_seeds_differ() {
        let traces = small_model().generate_cohort(3, 1);
        assert_ne!(traces[0].edits, traces[1].edits);
        assert_ne!(traces[1].edits, traces[2].edits);
    }

    #[test]
    fn recants_present_in_stream() {
        // Some selection must be added and later removed within one
        // formulation — the learner's negative examples.
        let traces = small_model().generate_cohort(5, 99);
        let mut found = false;
        'outer: for t in &traces {
            for f in t.formulations() {
                for (i, e) in f.edits.iter().enumerate() {
                    if let EditOp::AddSelection(s) = &e.op {
                        if f.edits[i + 1..]
                            .iter()
                            .any(|later| later.op == EditOp::RemoveSelection(s.clone()))
                        {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(found, "expected at least one recanted selection");
    }

    #[test]
    fn oracle_profile_reflects_config() {
        let cfg = UserModelConfig::default();
        let o = oracle_profile(&cfg);
        assert!(o.sel_survival > 0.8);
        assert!((o.sel_persistence - 0.75).abs() < 1e-9);
        assert!((o.join_persistence - 0.9).abs() < 1e-9);
    }
}
