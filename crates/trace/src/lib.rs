#![warn(missing_docs)]
//! User traces: recording, generating, replaying, summarizing.
//!
//! The paper's methodology (Section 4.1) is record/replay: fifteen human
//! subjects explored a skewed TPC-H subset through the SQUID visual
//! interface, their timed actions were recorded to trace files, and each
//! trace was replayed twice — once under normal and once under
//! speculative processing. The humans are not available here, so
//! [`gen::UserModel`] is a stochastic generator calibrated to the trace
//! statistics the paper reports in Section 5 (queries per trace,
//! selections and relations per query, part persistence, think-time
//! distribution); [`stats`] recomputes those statistics from any trace
//! so the calibration is checkable (see the `table_thinktime` bench).
//!
//! * [`event`] — timed edits, traces, and replay helpers,
//! * [`gen`] — the calibrated stochastic user model,
//! * [`stats`] — the Section 5 summary statistics,
//! * [`mod@format`] — JSON (de)serialization of trace files.

pub mod event;
pub mod format;
pub mod gen;
pub mod stats;

pub use event::{FormulationView, TimedEdit, Trace};
pub use gen::{CorpusSplit, UserModel, UserModelConfig};
pub use stats::{SplitSummary, TraceStats};
