//! Trace statistics — the paper's Section 5 tables.
//!
//! Computes, from any set of traces, the numbers the paper reports about
//! its human subjects: queries per trace, selections and relations per
//! query, part persistence in consecutive queries, and the think-time
//! distribution table (min/avg/max and 25/50/75 percentiles).

use crate::event::Trace;
use crate::gen::CorpusSplit;
use serde::{Deserialize, Serialize};
use specdb_query::QueryGraph;

/// Five-number-ish summary of a duration sample (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationSummary {
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub avg: f64,
    /// Maximum.
    pub max: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
}

impl DurationSummary {
    /// Summarize a sample (must be non-empty).
    pub fn of(mut xs: Vec<f64>) -> DurationSummary {
        assert!(!xs.is_empty(), "empty sample");
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        let pct = |p: f64| xs[((n as f64 - 1.0) * p).round() as usize];
        DurationSummary {
            min: xs[0],
            avg: xs.iter().sum::<f64>() / n as f64,
            max: xs[n - 1],
            p25: pct(0.25),
            p50: pct(0.50),
            p75: pct(0.75),
        }
    }
}

/// The Section 5 statistics over a set of traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of traces.
    pub traces: usize,
    /// Average queries per trace (paper: 42).
    pub queries_per_trace: f64,
    /// Average selection predicates per query (paper: 1–2).
    pub selections_per_query: f64,
    /// Average relations per query (paper: 4).
    pub relations_per_query: f64,
    /// Average consecutive queries a selection survives once placed
    /// (paper: 3).
    pub selection_persistence: f64,
    /// Average consecutive queries a join survives (paper: 10).
    pub join_persistence: f64,
    /// Formulation-duration distribution in seconds
    /// (paper: 1/28/680, quartiles 4/11/29).
    pub think_time: DurationSummary,
}

impl TraceStats {
    /// Compute statistics from traces (each must contain ≥ 1 query).
    pub fn compute(traces: &[Trace]) -> TraceStats {
        assert!(!traces.is_empty());
        let mut queries = 0usize;
        let mut sels = 0usize;
        let mut rels = 0usize;
        let mut durations = Vec::new();
        let mut sel_runs = RunTracker::default();
        let mut join_runs = RunTracker::default();
        for t in traces {
            let fs = t.formulations();
            queries += fs.len();
            let mut prev: Option<QueryGraph> = None;
            for f in &fs {
                let g = &f.final_query.graph;
                sels += g.selection_count();
                rels += g.rel_count();
                durations.push(f.duration().as_secs_f64());
                sel_runs.step(
                    prev.as_ref().map(|p| p.selections().cloned().collect()).unwrap_or_default(),
                    g.selections().cloned().collect(),
                );
                join_runs.step(
                    prev.as_ref().map(|p| p.joins().cloned().collect()).unwrap_or_default(),
                    g.joins().cloned().collect(),
                );
                prev = Some(g.clone());
            }
            sel_runs.flush();
            join_runs.flush();
        }
        let q = queries.max(1) as f64;
        TraceStats {
            traces: traces.len(),
            queries_per_trace: queries as f64 / traces.len() as f64,
            selections_per_query: sels as f64 / q,
            relations_per_query: rels as f64 / q,
            selection_persistence: sel_runs.mean_run(),
            join_persistence: join_runs.mean_run(),
            think_time: DurationSummary::of(durations),
        }
    }

    /// Render the paper's think-time table row.
    pub fn think_time_table(&self) -> String {
        let t = &self.think_time;
        format!(
            "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}\n{:<10} {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0}",
            "", "min", "avg", "max", "25%", "50%", "75%", "Duration", t.min, t.avg, t.max, t.p25,
            t.p50, t.p75
        )
    }
}

/// Side-by-side statistics of a train / held-out corpus split —
/// emitted with predictor evaluations so accuracy numbers can be read
/// against the corpus they were measured on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitSummary {
    /// Section 5 statistics over the training traces.
    pub train: TraceStats,
    /// Section 5 statistics over the held-out traces.
    pub held_out: TraceStats,
    /// Formulations available for training.
    pub train_formulations: usize,
    /// Formulations reserved for evaluation.
    pub held_out_formulations: usize,
}

impl SplitSummary {
    /// Summarize both halves of a split (each must be non-empty).
    pub fn of(split: &CorpusSplit) -> SplitSummary {
        SplitSummary {
            train: TraceStats::compute(&split.train),
            held_out: TraceStats::compute(&split.held_out),
            train_formulations: split.train_formulations(),
            held_out_formulations: split.held_out_formulations(),
        }
    }

    /// One-line render for logs and bench JSON sidecars.
    pub fn render(&self) -> String {
        format!(
            "split: train {} traces / {} formulations, held-out {} traces / {} formulations",
            self.train.traces,
            self.train_formulations,
            self.held_out.traces,
            self.held_out_formulations
        )
    }
}

/// Tracks how many consecutive final queries each part survives.
struct RunTracker<T: Eq + std::hash::Hash + Clone> {
    active: std::collections::HashMap<T, usize>,
    finished_runs: Vec<usize>,
}

impl<T: Eq + std::hash::Hash + Clone> Default for RunTracker<T> {
    fn default() -> Self {
        RunTracker { active: Default::default(), finished_runs: Default::default() }
    }
}

impl<T: Eq + std::hash::Hash + Clone> RunTracker<T> {
    fn step(&mut self, _prev: Vec<T>, current: Vec<T>) {
        use std::collections::HashMap;
        let cur: std::collections::HashSet<T> = current.into_iter().collect();
        let mut next: HashMap<T, usize> = HashMap::new();
        for (part, run) in self.active.drain() {
            if cur.contains(&part) {
                next.insert(part, run + 1);
            } else {
                self.finished_runs.push(run);
            }
        }
        for part in cur {
            next.entry(part).or_insert(1);
        }
        self.active = next;
    }

    fn flush(&mut self) {
        for (_, run) in self.active.drain() {
            self.finished_runs.push(run);
        }
    }

    fn mean_run(&self) -> f64 {
        if self.finished_runs.is_empty() {
            return 0.0;
        }
        self.finished_runs.iter().sum::<usize>() as f64 / self.finished_runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::UserModel;

    #[test]
    fn duration_summary_percentiles() {
        let s = DurationSummary::of((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.avg - 50.5).abs() < 1e-9);
        assert!((s.p25 - 26.0).abs() < 1.5);
        assert!((s.p50 - 50.0).abs() < 1.5);
        assert!((s.p75 - 75.0).abs() < 1.5);
    }

    #[test]
    fn generated_cohort_matches_paper_shape() {
        let traces = UserModel::default().generate_cohort(15, 123);
        let stats = TraceStats::compute(&traces);
        assert!((stats.queries_per_trace - 42.0).abs() < 0.5);
        assert!((1.0..=2.2).contains(&stats.selections_per_query));
        assert!((2.5..=5.0).contains(&stats.relations_per_query));
        // Paper: selections persist ~3 consecutive queries, joins ~10
        // (question boundaries truncate runs, so joins land lower).
        assert!(
            (2.3..=4.0).contains(&stats.selection_persistence),
            "selection persistence {}",
            stats.selection_persistence
        );
        assert!(
            stats.join_persistence > stats.selection_persistence + 1.0,
            "joins must persist much longer: {} vs {}",
            stats.join_persistence,
            stats.selection_persistence
        );
        // Think time table shape.
        let t = stats.think_time;
        assert!(t.min >= 1.0 && t.max <= 680.0);
        assert!((15.0..45.0).contains(&t.avg), "avg {}", t.avg);
        assert!((2.0..8.0).contains(&t.p25), "p25 {}", t.p25);
        assert!((7.0..18.0).contains(&t.p50), "p50 {}", t.p50);
        assert!((18.0..45.0).contains(&t.p75), "p75 {}", t.p75);
    }

    #[test]
    fn table_renders() {
        let traces = UserModel::default().generate_cohort(2, 5);
        let stats = TraceStats::compute(&traces);
        let table = stats.think_time_table();
        assert!(table.contains("Duration"));
        assert!(table.contains("min"));
    }

    #[test]
    fn split_summary_covers_both_halves() {
        let split = UserModel::default().generate_split(3, 2, 77);
        let s = SplitSummary::of(&split);
        assert_eq!(s.train.traces, 3);
        assert_eq!(s.held_out.traces, 2);
        assert!(s.train_formulations > 0 && s.held_out_formulations > 0);
        assert!(s.render().contains("held-out"));
    }

    #[test]
    fn run_tracker_counts_consecutive() {
        let mut rt: RunTracker<&str> = RunTracker::default();
        rt.step(vec![], vec!["a", "b"]);
        rt.step(vec![], vec!["a"]);
        rt.step(vec![], vec!["a", "c"]);
        rt.step(vec![], vec!["c"]);
        rt.flush();
        // a: 3, b: 1, c: 2 → mean 2.
        let mut runs = rt.finished_runs.clone();
        runs.sort();
        assert_eq!(runs, vec![1, 2, 3]);
        assert!((rt.mean_run() - 2.0).abs() < 1e-9);
    }
}
