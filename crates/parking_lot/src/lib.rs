#![warn(missing_docs)]
//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly, recovering from poisoning (a
//! panicked holder) by taking the inner data as-is, which matches
//! parking_lot's behaviour of not poisoning at all.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock (non-poisoning API over `std::sync::Mutex`).
#[derive(Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning API over `std::sync::RwLock`).
#[derive(Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
