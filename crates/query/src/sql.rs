//! A small SQL front end for conjunctive queries.
//!
//! The paper's SQUID interface translated visual queries to SQL for the
//! DBMS; this module provides the inverse pair: [`parse_sql`] turns flat
//! `SELECT ... FROM ... WHERE c1 AND c2 ...` text into a [`Query`], and
//! [`to_sql`] renders a [`Query`] back to SQL. Only the conjunctive
//! fragment the paper studies is supported: comma-separated FROM lists,
//! `AND`-connected comparisons, equi-joins.

use crate::graph::{Join, Query, QueryGraph, Selection};
use crate::predicate::{CompareOp, Predicate};
use specdb_storage::Value;
use std::fmt;

/// Resolves unqualified column names against the tables in scope.
pub trait ColumnResolver {
    /// Given the FROM-clause tables and a bare column name, return the
    /// owning table, or `None` if the column is unknown or ambiguous.
    fn resolve_column(&self, tables: &[String], column: &str) -> Option<String>;
}

/// A resolver that accepts only qualified names (useful in tests).
pub struct NoResolver;

impl ColumnResolver for NoResolver {
    fn resolve_column(&self, _tables: &[String], _column: &str) -> Option<String> {
        None
    }
}

/// SQL parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Generic syntax problem with a human-readable description.
    Syntax(String),
    /// A bare column could not be resolved to a table.
    UnknownColumn(String),
    /// A qualified name referenced a table not in the FROM clause.
    UnknownTable(String),
    /// Join conditions must be equalities.
    NonEquiJoin(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseError::UnknownColumn(c) => write!(f, "cannot resolve column '{c}'"),
            ParseError::UnknownTable(t) => write!(f, "table '{t}' not in FROM clause"),
            ParseError::NonEquiJoin(c) => write!(f, "join condition must use '=': {c}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '.' => {
                chars.next();
                out.push(Token::Dot);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => {
                            return Err(ParseError::Syntax("unterminated string literal".into()))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '=' | '<' | '>' | '!' => {
                chars.next();
                let mut sym = c.to_string();
                if let Some(&next) = chars.peek() {
                    if matches!((c, next), ('<', '=') | ('>', '=') | ('<', '>') | ('!', '=')) {
                        sym.push(next);
                        chars.next();
                    }
                }
                out.push(Token::Symbol(sym));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut num = c.to_string();
                let mut is_float = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        num.push(d);
                        chars.next();
                    } else if d == '.' && !is_float {
                        // Lookahead: "1.5" is a float, "t.c" is not reachable
                        // here since idents don't start with digits.
                        is_float = true;
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if is_float {
                    out.push(Token::Float(
                        num.parse().map_err(|_| {
                            ParseError::Syntax(format!("bad float literal '{num}'"))
                        })?,
                    ));
                } else {
                    out.push(Token::Int(num.parse().map_err(|_| {
                        ParseError::Syntax(format!("bad integer literal '{num}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(ident));
            }
            other => return Err(ParseError::Syntax(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser<'a, R: ColumnResolver> {
    tokens: Vec<Token>,
    pos: usize,
    resolver: &'a R,
    tables: Vec<String>,
}

#[derive(Debug)]
enum Operand {
    Column(Option<String>, String),
    Literal(Value),
}

impl<'a, R: ColumnResolver> Parser<'a, R> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::Syntax(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(w)) => Ok(w),
            other => Err(ParseError::Syntax(format!("expected identifier, found {other:?}"))),
        }
    }

    fn resolve(&self, table: Option<String>, column: &str) -> Result<String, ParseError> {
        match table {
            Some(t) => {
                if self.tables.contains(&t) {
                    Ok(t)
                } else {
                    Err(ParseError::UnknownTable(t))
                }
            }
            None => self
                .resolver
                .resolve_column(&self.tables, column)
                .ok_or_else(|| ParseError::UnknownColumn(column.to_string())),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Operand::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Operand::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Operand::Literal(Value::Str(s))),
            Some(Token::Ident(first)) => {
                if matches!(self.peek(), Some(Token::Dot)) {
                    self.next();
                    let col = self.ident()?;
                    Ok(Operand::Column(Some(first), col))
                } else {
                    Ok(Operand::Column(None, first))
                }
            }
            other => Err(ParseError::Syntax(format!("expected operand, found {other:?}"))),
        }
    }

    fn compare_op(&mut self) -> Result<CompareOp, ParseError> {
        match self.next() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => Ok(CompareOp::Eq),
                "<>" | "!=" => Ok(CompareOp::Ne),
                "<" => Ok(CompareOp::Lt),
                "<=" => Ok(CompareOp::Le),
                ">" => Ok(CompareOp::Gt),
                ">=" => Ok(CompareOp::Ge),
                other => Err(ParseError::Syntax(format!("unknown operator '{other}'"))),
            },
            other => Err(ParseError::Syntax(format!("expected operator, found {other:?}"))),
        }
    }

    fn parse(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        // Select list: '*', column refs, or aggregate calls. Resolution
        // is deferred until the FROM clause is known.
        enum RawItem {
            Col(Option<String>, String),
            Agg(crate::aggregate::AggFunc, Option<(Option<String>, String)>),
        }
        let mut raw_items: Vec<RawItem> = Vec::new();
        let star = if matches!(self.peek(), Some(Token::Star)) {
            self.next();
            true
        } else {
            loop {
                match self.next() {
                    Some(Token::Ident(first)) => {
                        if matches!(self.peek(), Some(Token::LParen)) {
                            // Aggregate call: func(*) or func(col).
                            let func =
                                crate::aggregate::AggFunc::parse(&first).ok_or_else(|| {
                                    ParseError::Syntax(format!("unknown function '{first}'"))
                                })?;
                            self.next(); // consume '('
                            let arg = if matches!(self.peek(), Some(Token::Star)) {
                                self.next();
                                if func != crate::aggregate::AggFunc::Count {
                                    return Err(ParseError::Syntax(format!(
                                        "{}(*) is only valid for count",
                                        func.sql()
                                    )));
                                }
                                None
                            } else {
                                match self.operand()? {
                                    Operand::Column(t, c) => Some((t, c)),
                                    Operand::Literal(_) => {
                                        return Err(ParseError::Syntax(
                                            "literal aggregate argument".into(),
                                        ))
                                    }
                                }
                            };
                            match self.next() {
                                Some(Token::RParen) => {}
                                other => {
                                    return Err(ParseError::Syntax(format!(
                                        "expected ')', found {other:?}"
                                    )))
                                }
                            }
                            raw_items.push(RawItem::Agg(func, arg));
                        } else if matches!(self.peek(), Some(Token::Dot)) {
                            self.next();
                            let col = self.ident()?;
                            raw_items.push(RawItem::Col(Some(first), col));
                        } else {
                            raw_items.push(RawItem::Col(None, first));
                        }
                    }
                    other => {
                        return Err(ParseError::Syntax(format!(
                            "expected select item, found {other:?}"
                        )))
                    }
                }
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
            false
        };
        self.expect_keyword("FROM")?;
        loop {
            let table = self.ident()?;
            self.tables.push(table);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        let mut graph = QueryGraph::new();
        for t in &self.tables {
            graph.add_relation(t.clone());
        }
        if self.at_keyword("WHERE") {
            self.next();
            loop {
                let lhs = self.operand()?;
                let op = self.compare_op()?;
                let rhs = self.operand()?;
                match (lhs, rhs) {
                    (Operand::Column(t, c), Operand::Literal(v)) => {
                        let rel = self.resolve(t, &c)?;
                        graph.add_selection(Selection::new(
                            rel,
                            Predicate { column: c, op, value: v },
                        ));
                    }
                    (Operand::Literal(v), Operand::Column(t, c)) => {
                        let rel = self.resolve(t, &c)?;
                        graph.add_selection(Selection::new(
                            rel,
                            Predicate { column: c, op: op.flipped(), value: v },
                        ));
                    }
                    (Operand::Column(t1, c1), Operand::Column(t2, c2)) => {
                        if op != CompareOp::Eq {
                            return Err(ParseError::NonEquiJoin(format!("{c1} {op} {c2}")));
                        }
                        let r1 = self.resolve(t1, &c1)?;
                        let r2 = self.resolve(t2, &c2)?;
                        graph.add_join(Join::new(r1, c1, r2, c2));
                    }
                    (Operand::Literal(_), Operand::Literal(_)) => {
                        return Err(ParseError::Syntax("comparison between two literals".into()))
                    }
                }
                if self.at_keyword("AND") {
                    self.next();
                } else {
                    break;
                }
            }
        }
        // Optional GROUP BY clause.
        let mut group_by: Vec<(String, String)> = Vec::new();
        if self.at_keyword("GROUP") {
            self.next();
            self.expect_keyword("BY")?;
            loop {
                match self.operand()? {
                    Operand::Column(t, c) => {
                        let rel = self.resolve(t, &c)?;
                        group_by.push((rel, c));
                    }
                    Operand::Literal(_) => {
                        return Err(ParseError::Syntax("literal in GROUP BY".into()))
                    }
                }
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        if self.pos != self.tokens.len() {
            return Err(ParseError::Syntax(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )));
        }
        let has_agg = raw_items.iter().any(|i| matches!(i, RawItem::Agg(..)));
        if has_agg || !group_by.is_empty() {
            if star {
                return Err(ParseError::Syntax("SELECT * cannot be aggregated".into()));
            }
            let mut aggs = Vec::new();
            for item in raw_items {
                match item {
                    RawItem::Agg(func, arg) => {
                        let arg = match arg {
                            None => None,
                            Some((t, c)) => {
                                let rel = self.resolve(t, &c)?;
                                Some((rel, c))
                            }
                        };
                        aggs.push(crate::aggregate::Aggregate { func, arg });
                    }
                    RawItem::Col(t, c) => {
                        // Plain columns in an aggregated SELECT must be
                        // grouping keys.
                        let rel = self.resolve(t, &c)?;
                        if !group_by.contains(&(rel.clone(), c.clone())) {
                            return Err(ParseError::Syntax(format!(
                                "column {rel}.{c} must appear in GROUP BY"
                            )));
                        }
                    }
                }
            }
            let agg = crate::aggregate::AggSpec { group_by, aggs };
            return Ok(Query { graph, projections: Vec::new(), agg: Some(agg) });
        }
        let projections = if star {
            Vec::new()
        } else {
            raw_items
                .into_iter()
                .map(|item| match item {
                    RawItem::Col(t, c) => Ok((self.resolve(t, &c)?, c)),
                    RawItem::Agg(..) => unreachable!("handled above"),
                })
                .collect::<Result<Vec<_>, ParseError>>()?
        };
        Ok(Query { graph, projections, agg: None })
    }
}

/// Parse a conjunctive SQL query, resolving bare columns via `resolver`.
pub fn parse_sql<R: ColumnResolver>(resolver: &R, sql: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(sql)?;
    Parser { tokens, pos: 0, resolver, tables: Vec::new() }.parse()
}

/// Render a query back to SQL text.
pub fn to_sql(q: &Query) -> String {
    let mut s = String::from("SELECT ");
    if let Some(agg) = &q.agg {
        let mut items: Vec<String> = agg.group_by.iter().map(|(r, c)| format!("{r}.{c}")).collect();
        items.extend(agg.aggs.iter().map(|a| format!("{a}")));
        s.push_str(&items.join(", "));
    } else if q.projections.is_empty() {
        s.push('*');
    } else {
        for (i, (rel, col)) in q.projections.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{rel}.{col}"));
        }
    }
    s.push_str(" FROM ");
    for (i, r) in q.graph.relations().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(r);
    }
    let mut conds: Vec<String> = Vec::new();
    for j in q.graph.joins() {
        conds.push(format!("{}.{} = {}.{}", j.left, j.lcol, j.right, j.rcol));
    }
    for sel in q.graph.selections() {
        conds.push(format!("{}.{} {} {}", sel.rel, sel.pred.column, sel.pred.op, sel.pred.value));
    }
    if !conds.is_empty() {
        s.push_str(" WHERE ");
        s.push_str(&conds.join(" AND "));
    }
    if let Some(agg) = &q.agg {
        if !agg.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            let keys: Vec<String> = agg.group_by.iter().map(|(r, c)| format!("{r}.{c}")).collect();
            s.push_str(&keys.join(", "));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Resolver backed by a static table→columns map.
    struct MapResolver(HashMap<&'static str, Vec<&'static str>>);

    impl MapResolver {
        fn tpchish() -> Self {
            let mut m = HashMap::new();
            m.insert("employee", vec!["name", "age", "salary"]);
            m.insert("dept", vec!["dno", "dname"]);
            m.insert("works", vec!["ename", "dno"]);
            MapResolver(m)
        }
    }

    impl ColumnResolver for MapResolver {
        fn resolve_column(&self, tables: &[String], column: &str) -> Option<String> {
            let mut found = None;
            for t in tables {
                if self.0.get(t.as_str())?.contains(&column) {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(t.clone());
                }
            }
            found
        }
    }

    #[test]
    fn parses_paper_intro_query() {
        let q =
            parse_sql(&MapResolver::tpchish(), "SELECT name FROM employee WHERE age<30").unwrap();
        assert_eq!(q.projections, vec![("employee".into(), "name".into())]);
        assert_eq!(q.graph.selection_count(), 1);
        let s = q.graph.selections().next().unwrap();
        assert_eq!(s.pred, Predicate::new("age", CompareOp::Lt, 30i64));
    }

    #[test]
    fn parses_join_query() {
        let q = parse_sql(
            &MapResolver::tpchish(),
            "SELECT * FROM employee, works, dept \
             WHERE employee.name = works.ename AND works.dno = dept.dno AND salary >= 5000",
        )
        .unwrap();
        assert_eq!(q.graph.rel_count(), 3);
        assert_eq!(q.graph.join_count(), 2);
        assert_eq!(q.graph.selection_count(), 1);
        assert!(q.projections.is_empty());
    }

    #[test]
    fn flipped_literal_first() {
        let q =
            parse_sql(&MapResolver::tpchish(), "SELECT * FROM employee WHERE 30 > age").unwrap();
        let s = q.graph.selections().next().unwrap();
        assert_eq!(s.pred.op, CompareOp::Lt);
        assert_eq!(s.pred.value, Value::Int(30));
    }

    #[test]
    fn string_and_float_literals() {
        let q = parse_sql(
            &MapResolver::tpchish(),
            "SELECT * FROM employee WHERE name = 'bob' AND salary > 1234.5",
        )
        .unwrap();
        let sels: Vec<_> = q.graph.selections().collect();
        assert_eq!(sels.len(), 2);
        assert!(sels.iter().any(|s| s.pred.value == Value::Str("bob".into())));
        assert!(sels.iter().any(|s| s.pred.value == Value::Float(1234.5)));
    }

    #[test]
    fn round_trip_through_to_sql() {
        let r = MapResolver::tpchish();
        let sql = "SELECT employee.name FROM dept, employee, works \
                   WHERE employee.name = works.ename AND employee.age < 30";
        let q1 = parse_sql(&r, sql).unwrap();
        let q2 = parse_sql(&r, &to_sql(&q1)).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn error_cases() {
        let r = MapResolver::tpchish();
        assert!(matches!(
            parse_sql(&r, "SELECT * FROM employee WHERE nosuch = 1"),
            Err(ParseError::UnknownColumn(_))
        ));
        assert!(matches!(
            parse_sql(&r, "SELECT * FROM employee WHERE phantom.age = 1"),
            Err(ParseError::UnknownTable(_))
        ));
        assert!(matches!(
            parse_sql(&r, "SELECT * FROM employee, works WHERE employee.age < works.dno"),
            Err(ParseError::NonEquiJoin(_))
        ));
        assert!(matches!(
            parse_sql(&r, "SELECT * FROM employee WHERE name = 'unterminated"),
            Err(ParseError::Syntax(_))
        ));
        assert!(parse_sql(&r, "SELEKT * FROM employee").is_err());
        assert!(parse_sql(&r, "SELECT * FROM employee garbage").is_err());
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let r = MapResolver::tpchish();
        // `dno` exists in both dept and works.
        assert!(matches!(
            parse_sql(&r, "SELECT * FROM dept, works WHERE dno = 3"),
            Err(ParseError::UnknownColumn(_))
        ));
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_sql(
            &MapResolver::tpchish(),
            "select name from employee where age < 30 and salary > 10",
        )
        .unwrap();
        assert_eq!(q.graph.selection_count(), 2);
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let q = parse_sql(
            &MapResolver::tpchish(),
            "SELECT dname, count(*), avg(salary) FROM employee, works, dept \
             WHERE employee.name = works.ename AND works.dno = dept.dno \
             GROUP BY dname",
        )
        .unwrap();
        let agg = q.agg.as_ref().expect("aggregate layer");
        assert_eq!(agg.group_by, vec![("dept".to_string(), "dname".to_string())]);
        assert_eq!(agg.aggs.len(), 2);
        assert_eq!(agg.aggs[0], crate::aggregate::Aggregate::count_star());
        assert_eq!(
            agg.aggs[1],
            crate::aggregate::Aggregate::over(crate::aggregate::AggFunc::Avg, "employee", "salary")
        );
        assert!(q.projections.is_empty());
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let q = parse_sql(
            &MapResolver::tpchish(),
            "SELECT count(*), min(age), max(age) FROM employee WHERE salary > 100",
        )
        .unwrap();
        let agg = q.agg.unwrap();
        assert!(agg.group_by.is_empty());
        assert_eq!(agg.aggs.len(), 3);
    }

    #[test]
    fn aggregate_error_cases() {
        let r = MapResolver::tpchish();
        assert!(matches!(parse_sql(&r, "SELECT sum(*) FROM employee"), Err(ParseError::Syntax(_))));
        assert!(matches!(
            parse_sql(&r, "SELECT name, count(*) FROM employee"),
            Err(ParseError::Syntax(_)) // name not in GROUP BY
        ));
        assert!(matches!(
            parse_sql(&r, "SELECT median(age) FROM employee"),
            Err(ParseError::Syntax(_))
        ));
        assert!(matches!(
            parse_sql(&r, "SELECT * FROM employee GROUP BY age"),
            Err(ParseError::Syntax(_))
        ));
    }

    #[test]
    fn aggregate_round_trip_through_to_sql() {
        let r = MapResolver::tpchish();
        let sql = "SELECT dept.dname, count(*) FROM dept, works \
                   WHERE works.dno = dept.dno GROUP BY dept.dname";
        let q1 = parse_sql(&r, sql).unwrap();
        let q2 = parse_sql(&r, &to_sql(&q1)).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn negative_numbers() {
        let q =
            parse_sql(&MapResolver::tpchish(), "SELECT * FROM employee WHERE age > -5").unwrap();
        assert_eq!(q.graph.selections().next().unwrap().pred.value, Value::Int(-5));
    }
}
