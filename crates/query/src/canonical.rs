//! Canonical keys for query graphs.
//!
//! Materialized-view registries and the speculator's bookkeeping need to
//! ask "have I already materialized this sub-query?" — which requires a
//! canonical, hashable rendering of a graph. `QueryGraph` stores its
//! parts in ordered sets, so a deterministic rendering doubles as a
//! canonical key.

use crate::graph::QueryGraph;
use std::fmt::Write;

/// Deterministic canonical key: equal graphs produce equal keys, and
/// (modulo hash collisions in names) distinct graphs produce distinct keys.
pub fn canonical_key(g: &QueryGraph) -> String {
    let mut s = String::new();
    for r in g.relations() {
        write!(s, "R({r});").unwrap();
    }
    for sel in g.selections() {
        write!(s, "S({},{},{},{});", sel.rel, sel.pred.column, sel.pred.op.sql(), sel.pred.value)
            .unwrap();
    }
    for j in g.joins() {
        write!(s, "J({},{},{},{});", j.left, j.lcol, j.right, j.rcol).unwrap();
    }
    s
}

/// A short, filesystem/table-name-safe digest of the canonical key
/// (FNV-1a 64-bit). Used to name materialized relations (`mv_<digest>`).
pub fn short_digest(g: &QueryGraph) -> String {
    short_digest_of_key(&canonical_key(g))
}

/// [`short_digest`] over an already-rendered canonical key. Callers that
/// cache keys (the plan cache, the incremental manipulation space) derive
/// digests without re-walking the graph.
pub fn short_digest_of_key(key: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Join, Selection};
    use crate::predicate::{CompareOp, Predicate};

    fn sample() -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_join(Join::new("R", "a", "S", "a"));
        g.add_selection(Selection::new("R", Predicate::new("c", CompareOp::Gt, 10i64)));
        g
    }

    #[test]
    fn equal_graphs_equal_keys() {
        // Build the same graph in a different order.
        let mut g2 = QueryGraph::new();
        g2.add_selection(Selection::new("R", Predicate::new("c", CompareOp::Gt, 10i64)));
        g2.add_join(Join::new("S", "a", "R", "a"));
        assert_eq!(canonical_key(&sample()), canonical_key(&g2));
        assert_eq!(short_digest(&sample()), short_digest(&g2));
    }

    #[test]
    fn different_graphs_different_keys() {
        let mut g2 = sample();
        g2.add_selection(Selection::new("S", Predicate::new("d", CompareOp::Lt, 5i64)));
        assert_ne!(canonical_key(&sample()), canonical_key(&g2));
        assert_ne!(short_digest(&sample()), short_digest(&g2));
    }

    #[test]
    fn digest_is_hex_16() {
        let d = short_digest(&sample());
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn digest_of_key_matches_digest_of_graph() {
        let g = sample();
        assert_eq!(short_digest(&g), short_digest_of_key(&canonical_key(&g)));
    }

    #[test]
    fn predicate_constant_is_part_of_key() {
        let mut a = QueryGraph::new();
        a.add_selection(Selection::new("R", Predicate::new("c", CompareOp::Gt, 10i64)));
        let mut b = QueryGraph::new();
        b.add_selection(Selection::new("R", Predicate::new("c", CompareOp::Gt, 11i64)));
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }
}
