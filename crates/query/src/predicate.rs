//! Comparison predicates on columns.

use serde::{Deserialize, Serialize};
use specdb_storage::Value;
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Evaluate `left op right`. Comparisons with NULL are false
    /// (three-valued logic collapsed to false, as in a WHERE clause).
    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        let ord = left.cmp(right);
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Ne => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql())
    }
}

/// A predicate `column op constant` on some relation's column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    /// Column name (unqualified; the owning relation is tracked by the
    /// enclosing [`crate::graph::Selection`]).
    pub column: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant operand.
    pub value: Value,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(column: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        Predicate { column: column.into(), op, value: value.into() }
    }

    /// Evaluate against a column value.
    pub fn matches(&self, v: &Value) -> bool {
        self.op.eval(v, &self.value)
    }

    /// Logical implication on the same column: does `self` holding imply
    /// `other` holds, for every possible value? Sound but not complete:
    /// `false` means "cannot prove", not "does not imply". This powers
    /// *subsumption* view matching — a materialization of `age < 30` can
    /// answer a query for `age < 20` with a residual filter.
    pub fn implies(&self, other: &Predicate) -> bool {
        if self.column != other.column {
            return false;
        }
        use CompareOp::*;
        let (a, x) = (self.op, &self.value);
        let (b, y) = (other.op, &other.value);
        match (a, b) {
            // v = x ⟹ (v op y) iff x itself satisfies it.
            (Eq, _) => b.eval(x, y),
            // v < x ⟹ v < y iff x ≤ y;  v < x ⟹ v ≤ y iff x ≤ y
            // (for v < x and x ≤ y: v < x ≤ y so v < y ≤ ... holds).
            (Lt, Lt) | (Lt, Le) => x <= y,
            // v ≤ x ⟹ v < y iff x < y;  v ≤ x ⟹ v ≤ y iff x ≤ y.
            (Le, Lt) => x < y,
            (Le, Le) => x <= y,
            // Symmetric for the lower-bound family.
            (Gt, Gt) | (Gt, Ge) => x >= y,
            (Ge, Gt) => x > y,
            (Ge, Ge) => x >= y,
            // v < x ⟹ v ≠ y iff y ≥ x (y is outside the admitted range).
            (Lt, Ne) => y >= x,
            (Le, Ne) => y > x,
            (Gt, Ne) => y <= x,
            (Ge, Ne) => y < x,
            (Ne, Ne) => x == y,
            // Nothing else is provable with single-predicate reasoning.
            _ => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_all_ops() {
        let three = Value::Int(3);
        let five = Value::Int(5);
        assert!(CompareOp::Lt.eval(&three, &five));
        assert!(CompareOp::Le.eval(&three, &three));
        assert!(CompareOp::Gt.eval(&five, &three));
        assert!(CompareOp::Ge.eval(&five, &five));
        assert!(CompareOp::Eq.eval(&three, &three));
        assert!(CompareOp::Ne.eval(&three, &five));
        assert!(!CompareOp::Eq.eval(&three, &five));
    }

    #[test]
    fn null_comparisons_are_false() {
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert!(!op.eval(&Value::Null, &Value::Int(1)));
            assert!(!op.eval(&Value::Int(1), &Value::Null));
        }
    }

    #[test]
    fn flipped_is_involutive_and_correct() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
            assert_eq!(op.eval(&a, &b), op.flipped().eval(&b, &a));
        }
    }

    #[test]
    fn implication_table() {
        use CompareOp::*;
        let p = |op, v: i64| Predicate::new("age", op, v);
        // Exact/weaker ranges.
        assert!(p(Lt, 20).implies(&p(Lt, 30)));
        assert!(p(Lt, 30).implies(&p(Lt, 30)));
        assert!(!p(Lt, 31).implies(&p(Lt, 30)));
        assert!(p(Lt, 30).implies(&p(Le, 30)));
        assert!(p(Le, 29).implies(&p(Lt, 30)));
        assert!(!p(Le, 30).implies(&p(Lt, 30)));
        assert!(p(Gt, 40).implies(&p(Gt, 30)));
        assert!(p(Ge, 31).implies(&p(Gt, 30)));
        assert!(!p(Ge, 30).implies(&p(Gt, 30)));
        // Equality implies anything it satisfies.
        assert!(p(Eq, 25).implies(&p(Lt, 30)));
        assert!(p(Eq, 25).implies(&p(Ge, 25)));
        assert!(!p(Eq, 35).implies(&p(Lt, 30)));
        assert!(p(Eq, 25).implies(&p(Ne, 30)));
        assert!(!p(Eq, 30).implies(&p(Ne, 30)));
        // Ranges imply disequality outside the range.
        assert!(p(Lt, 30).implies(&p(Ne, 30)));
        assert!(p(Lt, 30).implies(&p(Ne, 45)));
        assert!(!p(Lt, 30).implies(&p(Ne, 10)));
        assert!(p(Gt, 30).implies(&p(Ne, 30)));
        // Different columns never imply.
        assert!(!p(Lt, 20).implies(&Predicate::new("salary", Lt, 30i64)));
        // Incomparable directions.
        assert!(!p(Lt, 30).implies(&p(Gt, 10)));
        assert!(!p(Ne, 30).implies(&p(Lt, 40)));
    }

    #[test]
    fn implication_is_sound_by_brute_force() {
        use CompareOp::*;
        let ops = [Eq, Ne, Lt, Le, Gt, Ge];
        for &a in &ops {
            for &b in &ops {
                for x in -3i64..=3 {
                    for y in -3i64..=3 {
                        let pa = Predicate::new("c", a, x);
                        let pb = Predicate::new("c", b, y);
                        if pa.implies(&pb) {
                            for v in -6i64..=6 {
                                let val = Value::Int(v);
                                if pa.matches(&val) {
                                    assert!(
                                        pb.matches(&val),
                                        "claimed {pa} => {pb} but v={v} breaks it"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn predicate_matches() {
        let p = Predicate::new("age", CompareOp::Lt, 30i64);
        assert!(p.matches(&Value::Int(25)));
        assert!(!p.matches(&Value::Int(30)));
        assert!(!p.matches(&Value::Null));
        assert_eq!(format!("{p}"), "age < 30");
    }
}
