//! Partial queries and the edit operations that build them.
//!
//! During query formulation the user inserts, removes, and updates the
//! atomic parts of the query (paper Section 2): the interface emits a
//! stream of [`EditOp`]s, and the [`PartialQuery`] tracks the current
//! state. Each intermediate state is itself a valid query ("with some
//! straightforward conventions, any partial query may be considered as a
//! complete query as well").

use crate::graph::{Join, Query, QueryGraph, Selection};
use serde::{Deserialize, Serialize};

/// One user action on the visual query interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EditOp {
    /// Place a relation on the canvas.
    AddRelation(String),
    /// Remove a relation (cascades to its selections and joins).
    RemoveRelation(String),
    /// Place a selection predicate.
    AddSelection(Selection),
    /// Remove a selection predicate.
    RemoveSelection(Selection),
    /// Change a selection predicate in place (e.g. edit the constant).
    UpdateSelection {
        /// The predicate being replaced.
        old: Selection,
        /// Its replacement.
        new: Selection,
    },
    /// Draw a join edge.
    AddJoin(Join),
    /// Remove a join edge.
    RemoveJoin(Join),
    /// Tick a projection box.
    AddProjection(String, String),
    /// Untick a projection box.
    RemoveProjection(String, String),
    /// Press the "GO" button: submit the query.
    Go,
}

impl EditOp {
    /// True for the GO event.
    pub fn is_go(&self) -> bool {
        matches!(self, EditOp::Go)
    }
}

/// The query under construction.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialQuery {
    query: Query,
}

impl PartialQuery {
    /// Start from an empty canvas.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from an existing query (the paper's users typically refine
    /// the previous query rather than starting over).
    pub fn from_query(query: Query) -> Self {
        PartialQuery { query }
    }

    /// The current graph.
    pub fn graph(&self) -> &QueryGraph {
        &self.query.graph
    }

    /// The current query (graph + projections).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Apply one edit. Returns `true` if it was the GO event.
    pub fn apply(&mut self, op: &EditOp) -> bool {
        match op {
            EditOp::AddRelation(r) => {
                self.query.graph.add_relation(r.clone());
            }
            EditOp::RemoveRelation(r) => {
                self.query.graph.remove_relation(r);
                self.query.projections.retain(|(rel, _)| rel != r);
            }
            EditOp::AddSelection(s) => {
                self.query.graph.add_selection(s.clone());
            }
            EditOp::RemoveSelection(s) => {
                self.query.graph.remove_selection(s);
            }
            EditOp::UpdateSelection { old, new } => {
                self.query.graph.remove_selection(old);
                self.query.graph.add_selection(new.clone());
            }
            EditOp::AddJoin(j) => {
                self.query.graph.add_join(j.clone());
            }
            EditOp::RemoveJoin(j) => {
                self.query.graph.remove_join(j);
            }
            EditOp::AddProjection(r, c) => {
                let key = (r.clone(), c.clone());
                if !self.query.projections.contains(&key) {
                    self.query.projections.push(key);
                }
            }
            EditOp::RemoveProjection(r, c) => {
                self.query.projections.retain(|(rel, col)| rel != r || col != c);
            }
            EditOp::Go => return true,
        }
        false
    }

    /// Apply a sequence of edits, stopping after a GO. Returns the final
    /// query if GO was reached.
    pub fn apply_all<'a>(&mut self, ops: impl IntoIterator<Item = &'a EditOp>) -> Option<Query> {
        for op in ops {
            if self.apply(op) {
                return Some(self.query.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};

    fn age_sel(v: i64) -> Selection {
        Selection::new("employee", Predicate::new("age", CompareOp::Lt, v))
    }

    #[test]
    fn figure1_formulation_sequence() {
        // The paper's Figure 1: add age<30 at t1, project name at t2, GO at t3.
        let mut pq = PartialQuery::new();
        let ops = vec![
            EditOp::AddRelation("employee".into()),
            EditOp::AddSelection(age_sel(30)),
            EditOp::AddProjection("employee".into(), "name".into()),
            EditOp::Go,
        ];
        let finished = pq.apply_all(&ops).expect("GO reached");
        assert_eq!(finished.graph.selection_count(), 1);
        assert_eq!(finished.projections, vec![("employee".into(), "name".into())]);
    }

    #[test]
    fn update_selection_replaces() {
        let mut pq = PartialQuery::new();
        pq.apply(&EditOp::AddSelection(age_sel(30)));
        pq.apply(&EditOp::UpdateSelection { old: age_sel(30), new: age_sel(40) });
        let sels: Vec<_> = pq.graph().selections().collect();
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].pred.value, specdb_storage::Value::Int(40));
    }

    #[test]
    fn remove_relation_drops_projections() {
        let mut pq = PartialQuery::new();
        pq.apply(&EditOp::AddRelation("employee".into()));
        pq.apply(&EditOp::AddProjection("employee".into(), "name".into()));
        pq.apply(&EditOp::RemoveRelation("employee".into()));
        assert!(pq.query().projections.is_empty());
        assert!(pq.graph().is_empty());
    }

    #[test]
    fn duplicate_projection_ignored() {
        let mut pq = PartialQuery::new();
        pq.apply(&EditOp::AddProjection("t".into(), "a".into()));
        pq.apply(&EditOp::AddProjection("t".into(), "a".into()));
        assert_eq!(pq.query().projections.len(), 1);
    }

    #[test]
    fn apply_all_without_go_returns_none() {
        let mut pq = PartialQuery::new();
        let ops = vec![EditOp::AddRelation("t".into())];
        assert!(pq.apply_all(&ops).is_none());
        assert!(pq.graph().has_relation("t"));
    }

    #[test]
    fn edits_after_go_are_not_applied_by_apply_all() {
        let mut pq = PartialQuery::new();
        let ops =
            vec![EditOp::AddRelation("a".into()), EditOp::Go, EditOp::AddRelation("b".into())];
        pq.apply_all(&ops).unwrap();
        assert!(!pq.graph().has_relation("b"));
    }
}
