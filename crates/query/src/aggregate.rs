//! Aggregates over conjunctive cores.
//!
//! The paper scopes its formalism to select-project-join queries and
//! notes the "overall formulation would remain valid for general
//! queries as well, e.g., queries with aggregates, but some of the
//! details would require further elaboration". This module supplies that
//! elaboration for the engine: an aggregate specification sits *on top
//! of* the conjunctive core, so speculation (which materializes and
//! rewrites sub-graphs of the core) is untouched — a final query
//! `SELECT c_nation, count(*) ... GROUP BY c_nation` still benefits from
//! a materialized `σ(...)(customer ⋈ orders)` exactly like its SPJ
//! counterpart.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)` (non-null count when a column is given).
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Parse a function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

/// One aggregate output: a function over a column (or `*`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// `(relation, column)` argument; `None` for `COUNT(*)`.
    pub arg: Option<(String, String)>,
}

impl Aggregate {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Aggregate { func: AggFunc::Count, arg: None }
    }

    /// A function over a column.
    pub fn over(func: AggFunc, rel: impl Into<String>, col: impl Into<String>) -> Self {
        Aggregate { func, arg: Some((rel.into(), col.into())) }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func.sql()),
            Some((rel, col)) => write!(f, "{}({rel}.{col})", self.func.sql()),
        }
    }
}

/// The aggregate layer of a query: GROUP BY keys plus aggregate outputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AggSpec {
    /// Grouping `(relation, column)` keys (empty = one global group).
    pub group_by: Vec<(String, String)>,
    /// Aggregate outputs, in SELECT-list order.
    pub aggs: Vec<Aggregate>,
}

impl AggSpec {
    /// True if there is nothing to aggregate.
    pub fn is_empty(&self) -> bool {
        self.aggs.is_empty() && self.group_by.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_spell() {
        for (name, f) in [("count", AggFunc::Count), ("SUM", AggFunc::Sum), ("Avg", AggFunc::Avg)] {
            assert_eq!(AggFunc::parse(name), Some(f));
            assert_eq!(AggFunc::parse(f.sql()), Some(f));
        }
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Aggregate::count_star()), "count(*)");
        assert_eq!(
            format!("{}", Aggregate::over(AggFunc::Sum, "orders", "o_totalprice")),
            "sum(orders.o_totalprice)"
        );
    }

    #[test]
    fn empty_spec() {
        assert!(AggSpec::default().is_empty());
        let s = AggSpec { group_by: vec![], aggs: vec![Aggregate::count_star()] };
        assert!(!s.is_empty());
    }
}
