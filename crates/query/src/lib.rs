#![warn(missing_docs)]
//! Conjunctive query model.
//!
//! The paper (Section 2) works with select-project-join queries
//! represented as *query graphs*: each relation is a vertex, each join
//! an edge between relation vertices, and each selection an edge to a
//! predicate vertex. The atomic parts of a query are exactly these
//! vertices and edges, which makes `⊆`, `∪`, and `∩` meaningful on
//! queries — the algebra Theorem 3.1's cost model is built on.
//!
//! * [`predicate`] — comparison predicates on columns,
//! * [`graph`] — [`QueryGraph`]: sets of relations, selections, joins,
//!   with the containment/union/intersection algebra,
//! * [`partial`] — [`PartialQuery`] and [`EditOp`]: the incremental
//!   edits a visual interface produces during query formulation,
//! * [`sql`] — a small SQL front end (parser + printer) for examples and
//!   round-tripping,
//! * [`canonical`] — canonical string keys for graphs (materialized-view
//!   registry keys).

pub mod aggregate;
pub mod canonical;
pub mod graph;
pub mod partial;
pub mod predicate;
pub mod sql;

pub use aggregate::{AggFunc, AggSpec, Aggregate};
pub use canonical::{canonical_key, short_digest, short_digest_of_key};
pub use graph::{Join, Query, QueryGraph, Selection};
pub use partial::{EditOp, PartialQuery};
pub use predicate::{CompareOp, Predicate};
pub use sql::{parse_sql, ColumnResolver, ParseError};
