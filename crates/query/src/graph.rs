//! Query graphs: the paper's representation of conjunctive queries.
//!
//! A [`QueryGraph`] is a set of atomic parts — relation vertices,
//! selection edges, join edges — with set-algebra operations
//! (containment, union, intersection, difference) matching the paper's
//! Section 2 conventions. A [`Query`] adds the projection list, which
//! participates in SQL rendering and execution but *not* in the graph
//! algebra (materializations keep all attributes, `SELECT *`).

use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A selection edge: a predicate attached to a relation vertex.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Selection {
    /// Relation the predicate applies to.
    pub rel: String,
    /// The predicate.
    pub pred: Predicate,
}

impl Selection {
    /// Construct a selection edge.
    pub fn new(rel: impl Into<String>, pred: Predicate) -> Self {
        Selection { rel: rel.into(), pred }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} {} {}", self.rel, self.pred.column, self.pred.op, self.pred.value)
    }
}

/// A join edge between two relation vertices: `left.lcol = right.rcol`.
///
/// Construction canonicalizes the operand order so that equal joins
/// compare equal regardless of how the user wrote them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Join {
    /// Lexicographically smaller endpoint relation.
    pub left: String,
    /// Join column on `left`.
    pub lcol: String,
    /// Lexicographically larger endpoint relation.
    pub right: String,
    /// Join column on `right`.
    pub rcol: String,
}

impl Join {
    /// Construct a join edge, canonicalizing endpoint order.
    pub fn new(
        rel_a: impl Into<String>,
        col_a: impl Into<String>,
        rel_b: impl Into<String>,
        col_b: impl Into<String>,
    ) -> Self {
        let (ra, ca, rb, cb) = (rel_a.into(), col_a.into(), rel_b.into(), col_b.into());
        if (ra.as_str(), ca.as_str()) <= (rb.as_str(), cb.as_str()) {
            Join { left: ra, lcol: ca, right: rb, rcol: cb }
        } else {
            Join { left: rb, lcol: cb, right: ra, rcol: ca }
        }
    }

    /// True if `rel` is an endpoint.
    pub fn touches(&self, rel: &str) -> bool {
        self.left == rel || self.right == rel
    }

    /// Given one endpoint relation, return `(this_col, other_rel, other_col)`.
    pub fn other(&self, rel: &str) -> Option<(&str, &str, &str)> {
        if self.left == rel {
            Some((&self.lcol, &self.right, &self.rcol))
        } else if self.right == rel {
            Some((&self.rcol, &self.left, &self.lcol))
        } else {
            None
        }
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} = {}.{}", self.left, self.lcol, self.right, self.rcol)
    }
}

/// A conjunctive query graph: sets of relations, selections, and joins.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryGraph {
    rels: BTreeSet<String>,
    selections: BTreeSet<Selection>,
    joins: BTreeSet<Join>,
}

impl QueryGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Graph over a single relation with no predicates.
    pub fn relation(name: impl Into<String>) -> Self {
        let mut g = Self::new();
        g.add_relation(name);
        g
    }

    /// Add a relation vertex.
    pub fn add_relation(&mut self, name: impl Into<String>) -> &mut Self {
        self.rels.insert(name.into());
        self
    }

    /// Remove a relation vertex together with all attached selection and
    /// join edges (what a visual interface does when a table is removed).
    pub fn remove_relation(&mut self, name: &str) -> &mut Self {
        self.rels.remove(name);
        self.selections.retain(|s| s.rel != name);
        self.joins.retain(|j| !j.touches(name));
        self
    }

    /// Add a selection edge (implicitly adds its relation vertex).
    pub fn add_selection(&mut self, s: Selection) -> &mut Self {
        self.rels.insert(s.rel.clone());
        self.selections.insert(s);
        self
    }

    /// Remove a selection edge (the relation vertex stays).
    pub fn remove_selection(&mut self, s: &Selection) -> &mut Self {
        self.selections.remove(s);
        self
    }

    /// Add a join edge (implicitly adds both relation vertices).
    pub fn add_join(&mut self, j: Join) -> &mut Self {
        self.rels.insert(j.left.clone());
        self.rels.insert(j.right.clone());
        self.joins.insert(j);
        self
    }

    /// Remove a join edge (the relation vertices stay).
    pub fn remove_join(&mut self, j: &Join) -> &mut Self {
        self.joins.remove(j);
        self
    }

    /// Relation vertices, sorted.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.rels.iter().map(String::as_str)
    }

    /// Selection edges, sorted.
    pub fn selections(&self) -> impl Iterator<Item = &Selection> {
        self.selections.iter()
    }

    /// Join edges, sorted.
    pub fn joins(&self) -> impl Iterator<Item = &Join> {
        self.joins.iter()
    }

    /// Selections attached to one relation.
    pub fn selections_on<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a Selection> {
        self.selections.iter().filter(move |s| s.rel == rel)
    }

    /// Joins touching one relation.
    pub fn joins_on<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a Join> {
        self.joins.iter().filter(move |j| j.touches(rel))
    }

    /// Number of relation vertices.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Number of selection edges.
    pub fn selection_count(&self) -> usize {
        self.selections.len()
    }

    /// Number of join edges.
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// True if the graph has no atomic parts at all.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// True if a relation vertex is present.
    pub fn has_relation(&self, rel: &str) -> bool {
        self.rels.contains(rel)
    }

    /// Sub-graph containment: does `self` contain every atomic part of
    /// `other`? This is the `qm ⊆ q` of the paper's property P1.
    pub fn contains(&self, other: &QueryGraph) -> bool {
        other.rels.is_subset(&self.rels)
            && other.selections.is_subset(&self.selections)
            && other.joins.is_subset(&self.joins)
    }

    /// Set union of atomic parts.
    pub fn union(&self, other: &QueryGraph) -> QueryGraph {
        QueryGraph {
            rels: self.rels.union(&other.rels).cloned().collect(),
            selections: self.selections.union(&other.selections).cloned().collect(),
            joins: self.joins.union(&other.joins).cloned().collect(),
        }
    }

    /// Set intersection of atomic parts.
    pub fn intersection(&self, other: &QueryGraph) -> QueryGraph {
        QueryGraph {
            rels: self.rels.intersection(&other.rels).cloned().collect(),
            selections: self.selections.intersection(&other.selections).cloned().collect(),
            joins: self.joins.intersection(&other.joins).cloned().collect(),
        }
    }

    /// Atomic parts of `self` not in `other`.
    pub fn difference(&self, other: &QueryGraph) -> QueryGraph {
        QueryGraph {
            rels: self.rels.difference(&other.rels).cloned().collect(),
            selections: self.selections.difference(&other.selections).cloned().collect(),
            joins: self.joins.difference(&other.joins).cloned().collect(),
        }
    }

    /// True if the two graphs share no atomic parts (`q1 ∩ q2 = ∅`,
    /// property P2's disjointness condition).
    pub fn is_disjoint(&self, other: &QueryGraph) -> bool {
        self.intersection(other).is_empty()
    }

    /// True if the relation vertices form a single connected component
    /// under the join edges (single-relation graphs are connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Connected components as sub-graphs: each component keeps its
    /// relations, their selections, and the joins among them.
    pub fn connected_components(&self) -> Vec<QueryGraph> {
        let mut remaining: BTreeSet<&str> = self.rels.iter().map(String::as_str).collect();
        let mut components = Vec::new();
        while let Some(&seed) = remaining.iter().next() {
            let mut comp: BTreeSet<&str> = BTreeSet::new();
            let mut frontier = vec![seed];
            while let Some(rel) = frontier.pop() {
                if !comp.insert(rel) {
                    continue;
                }
                remaining.remove(rel);
                for j in self.joins_on(rel) {
                    if let Some((_, other, _)) = j.other(rel) {
                        if !comp.contains(other) {
                            frontier.push(other);
                        }
                    }
                }
            }
            let mut g = QueryGraph::new();
            for &r in &comp {
                g.add_relation(r);
            }
            for s in &self.selections {
                if comp.contains(s.rel.as_str()) {
                    g.selections.insert(s.clone());
                }
            }
            for j in &self.joins {
                if comp.contains(j.left.as_str()) && comp.contains(j.right.as_str()) {
                    g.joins.insert(j.clone());
                }
            }
            components.push(g);
        }
        components
    }

    /// The sub-graph for one selection edge (its relation + the edge).
    /// This is one of the paper's enumerated materialization units.
    pub fn selection_subgraph(&self, s: &Selection) -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_selection(s.clone());
        g
    }

    /// The sub-graph for one join edge enhanced with all selection edges
    /// attached to its endpoints — the paper's second enumeration unit
    /// ("materializations of individual join edges enhanced with all
    /// selection edges attached to the join edge").
    pub fn join_subgraph(&self, j: &Join) -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_join(j.clone());
        for s in &self.selections {
            if s.rel == j.left || s.rel == j.right {
                g.selections.insert(s.clone());
            }
        }
        g
    }
}

impl fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{rels: [")?;
        for (i, r) in self.rels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "], sel: [")?;
        for (i, s) in self.selections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "], join: [")?;
        for (i, j) in self.joins.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{j}")?;
        }
        write!(f, "]}}")
    }
}

/// A full query: a graph plus an (optional) projection list and an
/// (optional) aggregate layer on top of the conjunctive core.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// The query graph.
    pub graph: QueryGraph,
    /// Projected `(relation, column)` pairs; empty means `SELECT *`.
    pub projections: Vec<(String, String)>,
    /// Aggregates over the core (GROUP BY keys + functions); `None` for
    /// plain SPJ queries. Speculation operates on `graph` either way.
    #[serde(default)]
    pub agg: Option<crate::aggregate::AggSpec>,
}

impl Query {
    /// A `SELECT *` query over a graph.
    pub fn star(graph: QueryGraph) -> Self {
        Query { graph, projections: Vec::new(), agg: None }
    }

    /// Add a projection.
    pub fn project(mut self, rel: impl Into<String>, col: impl Into<String>) -> Self {
        self.projections.push((rel.into(), col.into()));
        self
    }

    /// Attach an aggregate layer.
    pub fn aggregate(mut self, agg: crate::aggregate::AggSpec) -> Self {
        self.agg = Some(agg);
        self
    }
}

impl From<QueryGraph> for Query {
    fn from(graph: QueryGraph) -> Self {
        Query::star(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};

    fn sel(rel: &str, col: &str, v: i64) -> Selection {
        Selection::new(rel, Predicate::new(col, CompareOp::Lt, v))
    }

    /// The R-S-W example from the paper's Figure 2.
    fn figure2() -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_join(Join::new("R", "a", "S", "a"));
        g.add_join(Join::new("S", "b", "W", "b"));
        g.add_selection(Selection::new("R", Predicate::new("c", CompareOp::Gt, 10i64)));
        g.add_selection(Selection::new("W", Predicate::new("d", CompareOp::Lt, 2000i64)));
        g
    }

    #[test]
    fn join_canonicalization() {
        assert_eq!(Join::new("S", "a", "R", "a"), Join::new("R", "a", "S", "a"));
        let j = Join::new("S", "b", "R", "a");
        assert_eq!(j.left, "R");
        assert_eq!(j.other("R"), Some(("a", "S", "b")));
        assert_eq!(j.other("S"), Some(("b", "R", "a")));
        assert_eq!(j.other("X"), None);
    }

    #[test]
    fn figure2_shape() {
        let g = figure2();
        assert_eq!(g.rel_count(), 3);
        assert_eq!(g.join_count(), 2);
        assert_eq!(g.selection_count(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn containment_matches_paper_example() {
        // q1 = σθ(R), q2 = R ⋈ S, q3 = σθ(R) ⋈ S (Theorem 3.1 example).
        let mut q1 = QueryGraph::new();
        q1.add_selection(sel("R", "c", 10));
        let mut q2 = QueryGraph::new();
        q2.add_join(Join::new("R", "a", "S", "a"));
        let q3 = q1.union(&q2);
        assert!(q3.contains(&q1));
        assert!(q3.contains(&q2));
        assert!(!q2.contains(&q1), "R ⋈ S does not contain σθ(R)");
        assert!(!q1.contains(&q2));
        assert!(q1.contains(&q1), "containment is reflexive");
    }

    #[test]
    fn union_intersection_difference() {
        let mut a = QueryGraph::new();
        a.add_selection(sel("R", "c", 10));
        let mut b = QueryGraph::new();
        b.add_join(Join::new("R", "a", "S", "a"));
        let u = a.union(&b);
        assert_eq!(u.rel_count(), 2);
        let i = a.intersection(&b);
        // R vertex is shared between the two graphs.
        assert_eq!(i.rel_count(), 1);
        assert_eq!(i.selection_count(), 0);
        let d = u.difference(&a);
        assert!(d.joins().count() == 1 && d.selection_count() == 0);
    }

    #[test]
    fn disjointness_for_p2() {
        let mut a = QueryGraph::new();
        a.add_selection(sel("R", "c", 10));
        let mut b = QueryGraph::new();
        b.add_selection(sel("S", "d", 5));
        assert!(a.is_disjoint(&b));
        let mut c = QueryGraph::new();
        c.add_selection(sel("R", "x", 1));
        assert!(!a.is_disjoint(&c), "shared relation vertex R");
    }

    #[test]
    fn remove_relation_cascades() {
        let mut g = figure2();
        g.remove_relation("S");
        assert_eq!(g.rel_count(), 2);
        assert_eq!(g.join_count(), 0, "both joins touched S");
        assert_eq!(g.selection_count(), 2, "selections on R and W remain");
    }

    #[test]
    fn connected_components_split() {
        let mut g = figure2();
        g.add_relation("Z");
        g.add_selection(sel("Z", "q", 7));
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert!(!g.is_connected());
        let z = comps.iter().find(|c| c.has_relation("Z")).unwrap();
        assert_eq!(z.selection_count(), 1);
        assert_eq!(z.join_count(), 0);
        let rsw = comps.iter().find(|c| c.has_relation("R")).unwrap();
        assert_eq!(rsw.join_count(), 2);
        // Components partition the graph: their union is the original.
        let reunited = comps.iter().fold(QueryGraph::new(), |acc, c| acc.union(c));
        assert_eq!(reunited, g);
    }

    #[test]
    fn join_subgraph_attaches_endpoint_selections() {
        let g = figure2();
        let j = Join::new("R", "a", "S", "a");
        let sub = g.join_subgraph(&j);
        assert_eq!(sub.rel_count(), 2);
        assert_eq!(sub.join_count(), 1);
        // Only R's selection attaches; W's does not touch this join.
        assert_eq!(sub.selection_count(), 1);
        assert_eq!(sub.selections().next().unwrap().rel, "R");
        assert!(g.contains(&sub));
    }

    #[test]
    fn selection_subgraph_is_minimal() {
        let g = figure2();
        let s = g.selections().next().unwrap().clone();
        let sub = g.selection_subgraph(&s);
        assert_eq!(sub.rel_count(), 1);
        assert_eq!(sub.selection_count(), 1);
        assert_eq!(sub.join_count(), 0);
        assert!(g.contains(&sub));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let e = QueryGraph::new();
        assert!(e.is_empty());
        assert!(e.is_connected(), "empty graph is vacuously connected");
        assert!(figure2().contains(&e), "everything contains the empty graph");
        assert!(e.is_disjoint(&figure2()));
    }
}
