//! The session manager: N sessions, one shared database, one governor,
//! one artifact cache.

use crate::artifacts::{CacheStats, SessionId, SharedArtifactCache};
use crate::governor::{Governor, GovernorConfig, GovernorStats};
use crate::session::ServeSession;
use parking_lot::Mutex;
use specdb_core::SpeculatorConfig;
use specdb_exec::Database;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fleet-level counters (see [`SessionManager::fleet_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStats {
    /// Sessions currently connected.
    pub sessions: u64,
    /// Governor admission history.
    pub governor: GovernorStats,
    /// Shared artifact-cache counters.
    pub cache: CacheStats,
}

/// Owns the shared [`Database`] and hands out [`ServeSession`]s that
/// speculate under one fleet-wide [`Governor`] and share one
/// [`SharedArtifactCache`].
pub struct SessionManager {
    db: Arc<Mutex<Database>>,
    governor: Arc<Governor>,
    artifacts: Arc<SharedArtifactCache>,
    spec_config: SpeculatorConfig,
    sessions: Mutex<BTreeMap<SessionId, Arc<Mutex<ServeSession>>>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// Wrap a database for multi-session serving.
    pub fn new(db: Database, spec: SpeculatorConfig, governor: GovernorConfig) -> Self {
        let observer = db.observer().clone();
        SessionManager {
            db: Arc::new(Mutex::new(db)),
            governor: Arc::new(Governor::with_observer(governor, observer.clone())),
            artifacts: Arc::new(SharedArtifactCache::with_observer(observer)),
            spec_config: spec,
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Open a new session. Session ids are unique for the manager's
    /// lifetime (never reused).
    pub fn connect(&self, name: &str) -> (SessionId, Arc<Mutex<ServeSession>>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(ServeSession::new(
            id,
            name.to_string(),
            Arc::clone(&self.db),
            self.spec_config.clone(),
            Arc::clone(&self.governor),
            Arc::clone(&self.artifacts),
        )));
        self.sessions.lock().insert(id, Arc::clone(&session));
        (id, session)
    }

    /// Look up a connected session.
    pub fn session(&self, id: SessionId) -> Option<Arc<Mutex<ServeSession>>> {
        self.sessions.lock().get(&id).cloned()
    }

    /// Close a session: cancel its in-flight build and release its
    /// artifact leases. Returns whether the session existed.
    pub fn disconnect(&self, id: SessionId) -> bool {
        let Some(session) = self.sessions.lock().remove(&id) else { return false };
        session.lock().close();
        true
    }

    /// Sessions currently connected.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// The fleet governor.
    pub fn governor(&self) -> &Arc<Governor> {
        &self.governor
    }

    /// The shared artifact cache.
    pub fn artifacts(&self) -> &Arc<SharedArtifactCache> {
        &self.artifacts
    }

    /// Run a closure against the shared database (e.g. to inspect the
    /// view registry in tests).
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock())
    }

    /// Fleet-level counters.
    pub fn fleet_stats(&self) -> FleetStats {
        FleetStats {
            sessions: self.session_count() as u64,
            governor: self.governor.stats(),
            cache: self.artifacts.stats(),
        }
    }
}
