//! TCP front end: one connection = one session, line in, JSON line out.

use crate::manager::SessionManager;
use crate::proto::{
    parse_request, render, CancelResponse, ConnectResponse, EditResponse, ErrorResponse,
    GoResponse, Request, StatsResponse,
};
use crate::{GovernorConfig, SessionId};
use specdb_core::SpeculatorConfig;
use specdb_exec::Database;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the default —
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Speculator configuration handed to every session.
    pub speculator: SpeculatorConfig,
    /// Fleet-governor policy.
    pub governor: GovernorConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            speculator: SpeculatorConfig::default(),
            governor: GovernorConfig::default(),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager behind the wire protocol.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Stop accepting connections and join the accept thread. Open
    /// connections finish when their client disconnects (each handler
    /// thread owns only its stream).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Serve `db` over TCP. Binds immediately and returns a handle with the
/// chosen port; sessions run until their client quits.
pub fn serve(db: Database, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let manager = Arc::new(SessionManager::new(db, config.speculator, config.governor));
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let manager = Arc::clone(&manager);
                        std::thread::spawn(move || handle_connection(stream, &manager));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
    };
    Ok(ServerHandle { addr, manager, stop, accept: Some(accept) })
}

fn handle_connection(stream: TcpStream, manager: &SessionManager) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    let mut session_id: Option<SessionId> = None;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatch(&line, manager, &mut session_id);
        let quit = matches!(parse_request(&line), Ok(Request::Quit));
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break;
        }
        let _ = writer.flush();
        if quit {
            break;
        }
    }
    if let Some(id) = session_id {
        manager.disconnect(id);
    }
}

fn dispatch(line: &str, manager: &SessionManager, session_id: &mut Option<SessionId>) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return ErrorResponse::line(e),
    };
    match request {
        Request::Connect { name } => {
            if session_id.is_some() {
                return ErrorResponse::line("already connected");
            }
            let name = name.unwrap_or_else(|| "anon".into());
            let (id, _) = manager.connect(&name);
            *session_id = Some(id);
            render(&ConnectResponse { ok: true, session: id, name })
        }
        Request::Quit => render(&CancelResponse { ok: true, cancelled: false }),
        other => {
            let Some(id) = *session_id else {
                return ErrorResponse::line("not connected (send CONNECT first)");
            };
            let Some(session) = manager.session(id) else {
                return ErrorResponse::line("session closed");
            };
            let mut session = session.lock();
            match other {
                Request::Edit(op) => {
                    session.edit(op);
                    let g = session.partial();
                    render(&EditResponse {
                        ok: true,
                        relations: g.relations().count() as u64,
                        selections: g.selections().count() as u64,
                        joins: g.join_count() as u64,
                        outstanding: manager.governor().outstanding() > 0,
                    })
                }
                Request::Go => match session.go() {
                    Ok(out) => render(&GoResponse {
                        ok: true,
                        rows: out.output.row_count,
                        elapsed_secs: out.output.elapsed.as_secs_f64(),
                        used_views: out.output.used_views.clone(),
                        shared_hit: out.shared_hit,
                    }),
                    Err(e) => ErrorResponse::line(format!("execution failed: {e}")),
                },
                Request::Cancel => {
                    let cancelled = session.cancel();
                    render(&CancelResponse { ok: true, cancelled })
                }
                Request::Stats => {
                    let fleet = manager.fleet_stats();
                    render(&StatsResponse {
                        ok: true,
                        session: session.stats(),
                        sessions: fleet.sessions,
                        governor: fleet.governor.into(),
                        cache: fleet.cache.into(),
                    })
                }
                Request::Connect { .. } | Request::Quit => unreachable!("handled above"),
            }
        }
    }
}
