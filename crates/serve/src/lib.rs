//! # specdb-serve — concurrent multi-session serving
//!
//! The paper's runtime serves *one* interactive user; this crate is the
//! production story on top of the `Send + Sync` engine core (PR 5): a
//! [`SessionManager`] runs N simultaneous interactive sessions against
//! one shared [`Database`], each session with its own partial-query
//! state and Learner profile, fronted by a small line/JSON wire
//! protocol over TCP ([`serve`]).
//!
//! Two fleet-level mechanisms replace the paper's single-user
//! conventions:
//!
//! - the **speculation [`Governor`]** generalizes the one-outstanding-
//!   manipulation rule into admission control: candidate builds from
//!   every session are ranked by expected benefit per build-second
//!   ([`Decision::benefit_rate`], straight from the Theorem 3.1 cost
//!   model), a global outstanding-build budget is enforced, and weaker
//!   in-flight builds can be preempted at morsel boundaries;
//! - the **[`SharedArtifactCache`]** extends the engine's canonical-
//!   query-keyed view registry into a refcounted (per-session leases),
//!   GC'd, build-deduplicating cache, so one session's speculative
//!   materialization serves hits for every session
//!   (`spec.shared_hits` / `spec.cross_session_reuse` metrics).
//!
//! See `docs/serving.md` for the operator's guide and the full wire-
//! protocol reference.
//!
//! ## Embedding
//!
//! ```
//! use specdb_core::SpeculatorConfig;
//! use specdb_exec::{Database, DatabaseConfig};
//! use specdb_query::EditOp;
//! use specdb_serve::{GovernorConfig, SessionManager};
//!
//! let mut db = Database::new(DatabaseConfig::with_buffer_pages(256));
//! # use specdb_catalog::{ColumnDef, DataType, Schema};
//! # use specdb_storage::{Tuple, Value};
//! db.create_table(
//!     "employee",
//!     Schema::new(vec![
//!         ColumnDef::new("name", DataType::Str),
//!         ColumnDef::new("age", DataType::Int),
//!     ]),
//! )
//! .unwrap();
//! db.load("employee", (0..2000i64).map(|i| {
//!     Tuple::new(vec![Value::Str(format!("e{i}")), Value::Int(20 + i % 45)])
//! }))
//! .unwrap();
//!
//! let manager = SessionManager::new(db, SpeculatorConfig::default(), GovernorConfig::default());
//! let (_, alice) = manager.connect("alice");
//! alice.lock().edit(EditOp::AddRelation("employee".into()));
//! let out = alice.lock().go().unwrap();
//! assert_eq!(out.output.row_count, 2000);
//! assert_eq!(manager.fleet_stats().sessions, 1);
//! ```
//!
//! ## Serving over TCP
//!
//! ```no_run
//! use specdb_exec::{Database, DatabaseConfig};
//! use specdb_serve::{serve, ServeConfig};
//!
//! let db = Database::new(DatabaseConfig::default());
//! let handle = serve(db, ServeConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! // ... clients connect with `nc`, send `CONNECT alice`, `EDIT ...`, `GO` ...
//! handle.shutdown();
//! ```
//!
//! [`Database`]: specdb_exec::Database
//! [`Decision::benefit_rate`]: specdb_core::Decision::benefit_rate

#![warn(missing_docs)]

pub mod artifacts;
pub mod governor;
pub mod manager;
pub mod proto;
pub mod server;
pub mod session;

pub use artifacts::{
    BeginBuild, BuildTicket, CacheStats, CompleteBuild, SessionId, SharedArtifactCache,
};
pub use governor::{Admission, Governor, GovernorConfig, GovernorStats};
pub use manager::{FleetStats, SessionManager};
pub use proto::{parse_request, Request};
pub use server::{serve, ServeConfig, ServerHandle};
pub use session::{GoOutcome, ServeSession, ServeSessionStats};
