//! The shared speculative-artifact cache.
//!
//! PR 8 generalizes the engine's per-database [`ViewRegistry`] into a
//! fleet-level cache: speculative materializations are keyed by the
//! *canonical query* they answer ([`Database::graph_key`]), refcounted
//! by per-session **leases**, deduplicated while building, and
//! garbage-collected only when *no* session's partial query supports
//! them any more — the multi-session form of the paper's Section 3.1
//! GC convention ("the result of a manipulation persists as long as the
//! current partial query indicates it will be useful").
//!
//! The cache tracks bookkeeping and policy only; the bytes live in the
//! shared [`Database`]'s view registry as ordinary materialized tables.
//! Sessions funnel every speculative build through
//! [`SharedArtifactCache::begin_build`] so that concurrent sessions
//! converging on the same canonical query produce one build, not N, and
//! every completed build lands through
//! [`SharedArtifactCache::complete_build`] so that a DDL-epoch bump
//! racing the build discards the stale result instead of installing it.
//!
//! [`ViewRegistry`]: specdb_exec::ViewRegistry
//! [`Database`]: specdb_exec::Database
//! [`Database::graph_key`]: specdb_exec::Database::graph_key

use parking_lot::Mutex;
use specdb_obs::Observer;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one serving session within a [`SessionManager`].
///
/// [`SessionManager`]: crate::SessionManager
pub type SessionId = u64;

/// Outcome of [`SharedArtifactCache::begin_build`].
#[derive(Debug)]
pub enum BeginBuild {
    /// No artifact exists for the key: the caller owns the build and
    /// must finish it with [`SharedArtifactCache::complete_build`] or
    /// [`SharedArtifactCache::abort_build`].
    Started(BuildTicket),
    /// Another session is already building this artifact; piggyback on
    /// its result instead of duplicating the work.
    InFlight,
    /// The artifact is already installed under the given table name.
    Ready(String),
}

/// Outcome of [`SharedArtifactCache::complete_build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteBuild {
    /// The artifact was installed and is now visible to every session.
    Installed,
    /// A DDL-epoch bump (or a cancellation) raced the build: the result
    /// is stale and was *not* installed. The caller must drop the
    /// materialized table it just built.
    Stale,
}

/// Claim on an in-flight build, returned by
/// [`SharedArtifactCache::begin_build`].
#[derive(Debug)]
pub struct BuildTicket {
    key: String,
    session: SessionId,
    epoch: u64,
}

impl BuildTicket {
    /// The canonical query key being built.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The session that owns the build.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

#[derive(Debug)]
enum ArtifactState {
    /// A session is building it; the table does not exist yet.
    Building,
    /// Installed: the materialized table is live in the shared database.
    Ready(String),
}

#[derive(Debug)]
struct Artifact {
    state: ArtifactState,
    builder: SessionId,
    /// Sessions whose partial query currently supports this artifact.
    /// Empty + Ready ⇒ garbage-collection candidate.
    leases: BTreeSet<SessionId>,
}

#[derive(Default)]
struct Totals {
    hits: u64,
    shared_hits: u64,
    uses: u64,
    cross_uses: u64,
    installed: u64,
    deduped: u64,
    stale: u64,
    collected: u64,
}

/// Point-in-time counters for the cache (see [`SharedArtifactCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Installed artifacts currently resident.
    pub ready: u64,
    /// Builds currently in flight.
    pub building: u64,
    /// Lookups that found a ready artifact.
    pub hits: u64,
    /// Lookups/uses served by an artifact built by a *different*
    /// session — the cross-session wins.
    pub shared_hits: u64,
    /// Final-query plans that read an artifact (any builder).
    pub uses: u64,
    /// Builds installed.
    pub installed: u64,
    /// Builds avoided because an identical one was in flight or ready.
    pub deduped: u64,
    /// Builds discarded because a DDL epoch bump raced them.
    pub stale: u64,
    /// Artifacts garbage-collected after their last lease lapsed.
    pub collected: u64,
    /// Plan uses of artifacts built by a different session. Kept
    /// separate from `shared_hits` (which also counts lookups) so the
    /// reuse rate is defined over plan uses only.
    cross_uses: u64,
}

impl CacheStats {
    /// Fraction of artifact uses served by another session's build —
    /// the value of the `spec.cross_session_reuse` gauge.
    pub fn cross_session_reuse(&self) -> f64 {
        if self.uses == 0 {
            0.0
        } else {
            self.cross_uses as f64 / self.uses as f64
        }
    }

    /// Plan uses of artifacts built by a different session.
    pub fn cross_uses(&self) -> u64 {
        self.cross_uses
    }
}

struct Inner {
    entries: BTreeMap<String, Artifact>,
    /// Table name → canonical key, for plan-side accounting
    /// ([`SharedArtifactCache::note_use`] receives table names from
    /// `QueryOutput::used_views`).
    by_table: BTreeMap<String, String>,
    /// Cache-level DDL epoch: bumped by [`SharedArtifactCache::invalidate`]
    /// when base data changes; in-flight builds that began under an
    /// older epoch complete as [`CompleteBuild::Stale`].
    epoch: u64,
    totals: Totals,
}

/// Refcounted, GC'd cache of speculative artifacts shared by every
/// session of a [`SessionManager`](crate::SessionManager) (and by the `multi_session` replay
/// mode in `specdb-sim`).
///
/// ```
/// use specdb_serve::{BeginBuild, CompleteBuild, SharedArtifactCache};
///
/// let cache = SharedArtifactCache::new();
/// // Session 1 starts building σ(c_nation='FRANCE')(customer).
/// let ticket = match cache.begin_build("sel(customer.c_nation=FRANCE)", 1) {
///     BeginBuild::Started(t) => t,
///     _ => unreachable!("first build must start"),
/// };
/// // Session 2 converges on the same query: the build is deduplicated.
/// assert!(matches!(cache.begin_build("sel(customer.c_nation=FRANCE)", 2), BeginBuild::InFlight));
/// // Session 1 installs; session 2's lookup is a cross-session hit.
/// assert_eq!(cache.complete_build(ticket, "mv_01".into()), CompleteBuild::Installed);
/// assert_eq!(cache.lookup("sel(customer.c_nation=FRANCE)", 2), Some("mv_01".into()));
/// assert_eq!(cache.stats().shared_hits, 1);
/// // Leases lapse (no session supports it) → the artifact is collected.
/// cache.set_leases(1, &[]);
/// cache.set_leases(2, &[]);
/// assert_eq!(cache.collect_unleased(), vec![("sel(customer.c_nation=FRANCE)".into(), "mv_01".into())]);
/// assert_eq!(cache.stats().ready, 0);
/// ```
pub struct SharedArtifactCache {
    inner: Mutex<Inner>,
    observer: Observer,
}

impl Default for SharedArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedArtifactCache {
    /// An empty cache with observability disabled.
    pub fn new() -> Self {
        Self::with_observer(Observer::disabled())
    }

    /// An empty cache emitting `spec.shared_hits` /
    /// `spec.cross_session_reuse` through the given observer.
    pub fn with_observer(observer: Observer) -> Self {
        SharedArtifactCache {
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                by_table: BTreeMap::new(),
                epoch: 0,
                totals: Totals::default(),
            }),
            observer,
        }
    }

    /// The cache's current DDL epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Base data changed: bump the epoch so every in-flight build
    /// completes as [`CompleteBuild::Stale`] instead of installing a
    /// result computed over the old data.
    pub fn invalidate(&self) {
        self.inner.lock().epoch += 1;
    }

    /// Claim the build of artifact `key` for `session`. Exactly one
    /// concurrent caller receives [`BeginBuild::Started`]; the rest see
    /// [`BeginBuild::InFlight`] (deduplication) or
    /// [`BeginBuild::Ready`].
    pub fn begin_build(&self, key: &str, session: SessionId) -> BeginBuild {
        let mut inner = self.inner.lock();
        if let Some(a) = inner.entries.get(key) {
            let out = match &a.state {
                ArtifactState::Building => BeginBuild::InFlight,
                ArtifactState::Ready(table) => BeginBuild::Ready(table.clone()),
            };
            inner.totals.deduped += 1;
            return out;
        }
        let epoch = inner.epoch;
        inner.entries.insert(
            key.to_string(),
            Artifact {
                state: ArtifactState::Building,
                builder: session,
                leases: BTreeSet::from([session]),
            },
        );
        BeginBuild::Started(BuildTicket { key: key.to_string(), session, epoch })
    }

    /// Install a finished build. Returns [`CompleteBuild::Stale`] — and
    /// installs nothing — when the cache epoch advanced after
    /// [`SharedArtifactCache::begin_build`] (DDL raced the build) or the
    /// entry was invalidated; the caller must then drop the table.
    pub fn complete_build(&self, ticket: BuildTicket, table: String) -> CompleteBuild {
        let mut inner = self.inner.lock();
        let fresh = inner.epoch == ticket.epoch
            && matches!(
                inner.entries.get(&ticket.key),
                Some(a) if a.builder == ticket.session && matches!(a.state, ArtifactState::Building)
            );
        if !fresh {
            inner.entries.remove(&ticket.key);
            inner.totals.stale += 1;
            return CompleteBuild::Stale;
        }
        let a = inner.entries.get_mut(&ticket.key).expect("checked above");
        a.state = ArtifactState::Ready(table.clone());
        inner.by_table.insert(table, ticket.key);
        inner.totals.installed += 1;
        CompleteBuild::Installed
    }

    /// Abandon an in-flight build (cancelled or failed).
    pub fn abort_build(&self, ticket: BuildTicket) {
        let mut inner = self.inner.lock();
        if matches!(
            inner.entries.get(&ticket.key),
            Some(a) if a.builder == ticket.session && matches!(a.state, ArtifactState::Building)
        ) {
            inner.entries.remove(&ticket.key);
        }
    }

    /// Look up a ready artifact by canonical key, taking a lease for
    /// `session`. Counts a hit — a *shared* hit when the artifact was
    /// built by a different session.
    pub fn lookup(&self, key: &str, session: SessionId) -> Option<String> {
        let mut inner = self.inner.lock();
        let a = inner.entries.get_mut(key)?;
        let ArtifactState::Ready(table) = &a.state else { return None };
        let table = table.clone();
        let cross = a.builder != session;
        a.leases.insert(session);
        inner.totals.hits += 1;
        if cross {
            inner.totals.shared_hits += 1;
            self.observer.metrics().counter("spec.shared_hits").incr();
        }
        Some(table)
    }

    /// A final-query plan read the given materialized `table`. Returns
    /// whether the use was cross-session (the artifact was built by a
    /// session other than the reader) and updates the
    /// `spec.cross_session_reuse` gauge. Unknown tables (ordinary views
    /// not managed by the cache) return `false`.
    pub fn note_use(&self, table: &str, session: SessionId) -> bool {
        let mut inner = self.inner.lock();
        let Some(key) = inner.by_table.get(table).cloned() else { return false };
        let Some(a) = inner.entries.get_mut(&key) else { return false };
        let cross = a.builder != session;
        a.leases.insert(session);
        inner.totals.uses += 1;
        if cross {
            inner.totals.cross_uses += 1;
            inner.totals.shared_hits += 1;
            self.observer.metrics().counter("spec.shared_hits").incr();
        }
        let reuse = inner.totals.cross_uses as f64 / inner.totals.uses as f64;
        self.observer.metrics().gauge("spec.cross_session_reuse").set(reuse);
        cross
    }

    /// Replace `session`'s lease set with exactly the artifacts in
    /// `keys` (the canonical keys its partial query still supports —
    /// see [`Database::supported_view_keys`]). An in-flight build keeps
    /// its builder's lease regardless, so a build can never be collected
    /// out from under its owner.
    ///
    /// [`Database::supported_view_keys`]: specdb_exec::Database::supported_view_keys
    pub fn set_leases(&self, session: SessionId, keys: &[String]) {
        let mut inner = self.inner.lock();
        for (key, a) in inner.entries.iter_mut() {
            let keep = keys.iter().any(|k| k == key)
                || (a.builder == session && matches!(a.state, ArtifactState::Building));
            if keep {
                a.leases.insert(session);
            } else {
                a.leases.remove(&session);
            }
        }
    }

    /// Drop every lease held by `session` (disconnect).
    pub fn release_session(&self, session: SessionId) {
        let mut inner = self.inner.lock();
        inner.entries.retain(|_, a| {
            a.leases.remove(&session);
            // An in-flight build whose owner vanishes is abandoned; its
            // worker's `complete_build` will return `Stale`.
            !(a.leases.is_empty()
                && a.builder == session
                && matches!(a.state, ArtifactState::Building))
        });
    }

    /// Remove and return every ready artifact with zero leases — the
    /// GC sweep. The caller must `drop_materialized` each returned
    /// table from the shared database. Deterministic order (sorted by
    /// canonical key).
    pub fn collect_unleased(&self) -> Vec<(String, String)> {
        let mut inner = self.inner.lock();
        let doomed: Vec<(String, String)> = inner
            .entries
            .iter()
            .filter_map(|(k, a)| match &a.state {
                ArtifactState::Ready(t) if a.leases.is_empty() => Some((k.clone(), t.clone())),
                _ => None,
            })
            .collect();
        for (k, t) in &doomed {
            inner.entries.remove(k);
            inner.by_table.remove(t);
            inner.totals.collected += 1;
        }
        doomed
    }

    /// Number of sessions currently leasing artifact `key` (0 if absent).
    pub fn lease_count(&self, key: &str) -> usize {
        self.inner.lock().entries.get(key).map_or(0, |a| a.leases.len())
    }

    /// Artifacts resident (ready + building).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no artifacts are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        let (mut ready, mut building) = (0u64, 0u64);
        for a in inner.entries.values() {
            match a.state {
                ArtifactState::Ready(_) => ready += 1,
                ArtifactState::Building => building += 1,
            }
        }
        CacheStats {
            ready,
            building,
            hits: inner.totals.hits,
            shared_hits: inner.totals.shared_hits,
            uses: inner.totals.uses,
            installed: inner.totals.installed,
            deduped: inner.totals.deduped,
            stale: inner.totals.stale,
            collected: inner.totals.collected,
            cross_uses: inner.totals.cross_uses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(cache: &SharedArtifactCache, key: &str, session: SessionId) -> BuildTicket {
        match cache.begin_build(key, session) {
            BeginBuild::Started(t) => t,
            other => panic!("expected Started, got {other:?}"),
        }
    }

    #[test]
    fn build_dedupe_and_ready_paths() {
        let cache = SharedArtifactCache::new();
        let t = start(&cache, "k1", 1);
        assert!(matches!(cache.begin_build("k1", 2), BeginBuild::InFlight));
        assert_eq!(cache.complete_build(t, "mv_a".into()), CompleteBuild::Installed);
        assert!(matches!(cache.begin_build("k1", 3), BeginBuild::Ready(t) if t == "mv_a"));
        assert_eq!(cache.stats().deduped, 2);
    }

    #[test]
    fn epoch_bump_invalidates_in_flight_build() {
        let cache = SharedArtifactCache::new();
        let t = start(&cache, "k1", 1);
        cache.invalidate();
        assert_eq!(cache.complete_build(t, "mv_a".into()), CompleteBuild::Stale);
        assert!(cache.is_empty(), "stale build must not install");
        // A fresh build under the new epoch installs fine.
        let t2 = start(&cache, "k1", 1);
        assert_eq!(cache.complete_build(t2, "mv_b".into()), CompleteBuild::Installed);
    }

    #[test]
    fn shared_hit_accounting() {
        let cache = SharedArtifactCache::new();
        let t = start(&cache, "k1", 1);
        cache.complete_build(t, "mv_a".into());
        assert_eq!(cache.lookup("k1", 1), Some("mv_a".into()));
        assert_eq!(cache.stats().shared_hits, 0, "own lookup is not shared");
        assert_eq!(cache.lookup("k1", 2), Some("mv_a".into()));
        assert_eq!(cache.stats().shared_hits, 1);
        assert!(cache.note_use("mv_a", 3), "foreign plan use is cross-session");
        assert!(!cache.note_use("mv_a", 1), "builder's own use is not");
        let s = cache.stats();
        assert_eq!(s.uses, 2);
        assert_eq!(s.cross_uses(), 1);
        assert!((s.cross_session_reuse() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn leases_guard_collection() {
        let cache = SharedArtifactCache::new();
        let t = start(&cache, "k1", 1);
        cache.complete_build(t, "mv_a".into());
        cache.set_leases(2, &["k1".into()]);
        // Builder pivots away; session 2 still leases it.
        cache.set_leases(1, &[]);
        assert!(cache.collect_unleased().is_empty());
        assert_eq!(cache.lease_count("k1"), 1);
        // Session 2 disconnects: now collectable.
        cache.release_session(2);
        assert_eq!(cache.collect_unleased(), vec![("k1".into(), "mv_a".into())]);
    }

    #[test]
    fn building_entries_are_never_collected() {
        let cache = SharedArtifactCache::new();
        let t = start(&cache, "k1", 1);
        // Even a lease wipe keeps the in-flight build alive for its owner.
        cache.set_leases(1, &[]);
        assert!(cache.collect_unleased().is_empty());
        assert_eq!(cache.complete_build(t, "mv_a".into()), CompleteBuild::Installed);
    }

    #[test]
    fn release_abandons_owned_in_flight_build() {
        let cache = SharedArtifactCache::new();
        let t = start(&cache, "k1", 1);
        cache.release_session(1);
        assert_eq!(cache.complete_build(t, "mv_a".into()), CompleteBuild::Stale);
    }
}
