//! The fleet-wide speculation governor.
//!
//! The paper's prototype enforces *one outstanding manipulation* for
//! its single user (Section 3.1). With N concurrent sessions sharing
//! one database and one morsel worker pool, the rule generalizes to
//! admission control: every candidate build asks the governor for a
//! slot, the governor ranks candidates across **all** sessions by
//! expected benefit per unit of build resource
//! ([`Decision::benefit_rate`], derived from the Theorem 3.1 cost model
//! and the PR 1 calibration), enforces a global outstanding-build
//! budget, and — when configured — preempts the weakest in-flight build
//! for a stronger candidate. Preemption cancels through the build's
//! [`CancelToken`], which the morsel pipeline checks at morsel/page
//! boundaries, so a preempted build stops within one morsel.
//!
//! The governor is a pure policy object: no threads, no clock. The
//! same instance drives both the wall-clock serving layer
//! ([`SessionManager`]) and the virtual-clock `multi_session` replay in
//! `specdb-sim`, which is what lets the determinism suite assert that a
//! single session under the governor is bit-identical to the
//! pre-governor replay path.
//!
//! [`Decision::benefit_rate`]: specdb_core::Decision::benefit_rate
//! [`CancelToken`]: specdb_exec::CancelToken
//! [`SessionManager`]: crate::SessionManager

use crate::artifacts::SessionId;
use parking_lot::Mutex;
use specdb_exec::CancelToken;
use specdb_obs::{Observer, SpanKind};
use std::collections::BTreeMap;

/// Governor policy knobs (see `docs/knobs.md`).
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Global outstanding-build budget across every session. The
    /// default of 2 keeps speculative builds from monopolizing the
    /// shared morsel worker pool; `SPECDB_GOVERNOR_BUDGET` overrides.
    pub max_outstanding: usize,
    /// Allow a strictly stronger candidate to cancel the weakest
    /// in-flight build when the budget is full
    /// (`SPECDB_GOVERNOR_PREEMPT`, default on).
    pub preempt: bool,
    /// Candidates below this benefit rate (benefit-seconds per
    /// build-second) are denied outright even when slots are free
    /// (`SPECDB_GOVERNOR_MIN_RATE`, default 0: any positive benefit
    /// qualifies).
    pub min_benefit_rate: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig { max_outstanding: 2, preempt: true, min_benefit_rate: 0.0 }
    }
}

impl GovernorConfig {
    /// Configuration from `SPECDB_GOVERNOR_*` environment variables,
    /// falling back to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = GovernorConfig::default();
        if let Some(n) = env_parse::<usize>("SPECDB_GOVERNOR_BUDGET") {
            cfg.max_outstanding = n.max(1);
        }
        if let Some(n) = env_parse::<u8>("SPECDB_GOVERNOR_PREEMPT") {
            cfg.preempt = n != 0;
        }
        if let Some(r) = env_parse::<f64>("SPECDB_GOVERNOR_MIN_RATE") {
            cfg.min_benefit_rate = r.max(0.0);
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// The governor's verdict on a candidate build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was free: the build may start.
    Admit,
    /// The budget was full but this candidate outranked the weakest
    /// in-flight build, which has been cancelled (its session id is
    /// returned); the new build takes its slot.
    Preempt(SessionId),
    /// No slot, no preemptable victim (or the candidate fell below the
    /// minimum benefit rate): do not build.
    Deny,
}

struct Build {
    priority: f64,
    /// Display form of the candidate manipulation — the final
    /// tie-breaker when two in-flight builds share a priority, so the
    /// preemption victim never depends on map iteration order.
    key: String,
    cancel: Option<CancelToken>,
}

#[derive(Default)]
struct State {
    outstanding: BTreeMap<SessionId, Build>,
    admitted: u64,
    denied: u64,
    preempted: u64,
}

/// Counters describing the governor's admission history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Builds admitted (including those admitted by preemption).
    pub admitted: u64,
    /// Candidates denied.
    pub denied: u64,
    /// In-flight builds cancelled to make room for stronger candidates.
    pub preempted: u64,
    /// Builds currently holding a slot.
    pub outstanding: u64,
}

/// Fleet-wide admission control over speculative builds.
///
/// ```
/// use specdb_serve::{Admission, Governor, GovernorConfig};
///
/// let gov = Governor::new(GovernorConfig {
///     max_outstanding: 1,
///     preempt: true,
///     min_benefit_rate: 0.0,
/// });
/// // Session 1's build takes the only slot.
/// assert_eq!(gov.admit(1, 2.0, "materialize{a}"), Admission::Admit);
/// // A weaker candidate from session 2 is denied...
/// assert_eq!(gov.admit(2, 1.0, "materialize{b}"), Admission::Deny);
/// // ...but a stronger one from session 3 preempts session 1.
/// assert_eq!(gov.admit(3, 5.0, "predict{c}"), Admission::Preempt(1));
/// gov.finish(3);
/// assert_eq!(gov.outstanding(), 0);
/// ```
pub struct Governor {
    cfg: GovernorConfig,
    state: Mutex<State>,
    observer: Observer,
}

impl Default for Governor {
    fn default() -> Self {
        Self::new(GovernorConfig::default())
    }
}

impl Governor {
    /// A governor with the given policy and observability disabled.
    pub fn new(cfg: GovernorConfig) -> Self {
        Self::with_observer(cfg, Observer::disabled())
    }

    /// A governor emitting `governor` spans and counters through the
    /// given observer.
    pub fn with_observer(cfg: GovernorConfig, observer: Observer) -> Self {
        Governor { cfg, state: Mutex::new(State::default()), observer }
    }

    /// The active policy.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Ask for a build slot for `session` at the given priority
    /// (benefit-seconds per build-second; see
    /// [`Decision::benefit_rate`]) for the candidate identified by
    /// `key` (its display form; used only to break priority ties
    /// deterministically). On [`Admission::Preempt`], the victim's
    /// [`CancelToken`] — if one was attached — has already been
    /// cancelled; the caller only needs bookkeeping.
    ///
    /// [`Decision::benefit_rate`]: specdb_core::Decision::benefit_rate
    pub fn admit(&self, session: SessionId, priority: f64, key: &str) -> Admission {
        let mut st = self.state.lock();
        let verdict = self.decide_locked(&mut st, session, priority, key);
        match verdict {
            Admission::Admit => st.admitted += 1,
            Admission::Preempt(_) => {
                st.admitted += 1;
                st.preempted += 1;
            }
            Admission::Deny => st.denied += 1,
        }
        let outstanding = st.outstanding.len();
        drop(st);
        self.trace(session, priority, verdict, outstanding);
        verdict
    }

    fn decide_locked(
        &self,
        st: &mut State,
        session: SessionId,
        priority: f64,
        key: &str,
    ) -> Admission {
        // One-outstanding-per-session still holds inside the fleet rule:
        // a session must resolve its own build before proposing another.
        if priority <= self.cfg.min_benefit_rate || st.outstanding.contains_key(&session) {
            return Admission::Deny;
        }
        if st.outstanding.len() < self.cfg.max_outstanding {
            st.outstanding
                .insert(session, Build { priority, key: key.to_string(), cancel: None });
            return Admission::Admit;
        }
        if !self.cfg.preempt {
            return Admission::Deny;
        }
        // Weakest in-flight build; priority ties fall to the lowest
        // (session id, candidate key) pair, never to map iteration
        // order, so the victim is the same in every run and at every
        // thread count.
        let victim = st
            .outstanding
            .iter()
            .min_by(|a, b| {
                a.1.priority
                    .total_cmp(&b.1.priority)
                    .then_with(|| a.0.cmp(b.0))
                    .then_with(|| a.1.key.cmp(&b.1.key))
            })
            .map(|(id, b)| (*id, b.priority));
        match victim {
            Some((vid, vprio)) if priority > vprio => {
                if let Some(b) = st.outstanding.remove(&vid) {
                    if let Some(token) = b.cancel {
                        token.cancel();
                    }
                }
                st.outstanding
                    .insert(session, Build { priority, key: key.to_string(), cancel: None });
                Admission::Preempt(vid)
            }
            _ => Admission::Deny,
        }
    }

    /// Attach the live cancel token for `session`'s admitted build so a
    /// later preemption can stop it at the next morsel boundary. The
    /// virtual-clock replay never attaches tokens (cancellation there
    /// is a bookkeeping rollback).
    pub fn attach_cancel(&self, session: SessionId, token: CancelToken) {
        if let Some(b) = self.state.lock().outstanding.get_mut(&session) {
            b.cancel = Some(token);
        }
    }

    /// Release `session`'s slot (build completed, cancelled, or rolled
    /// back). Returns whether a slot was actually held.
    pub fn finish(&self, session: SessionId) -> bool {
        self.state.lock().outstanding.remove(&session).is_some()
    }

    /// Builds currently holding a slot.
    pub fn outstanding(&self) -> usize {
        self.state.lock().outstanding.len()
    }

    /// Admission-history counters.
    pub fn stats(&self) -> GovernorStats {
        let st = self.state.lock();
        GovernorStats {
            admitted: st.admitted,
            denied: st.denied,
            preempted: st.preempted,
            outstanding: st.outstanding.len() as u64,
        }
    }

    fn trace(&self, session: SessionId, priority: f64, verdict: Admission, outstanding: usize) {
        let counter = match verdict {
            Admission::Admit => "governor.admitted",
            Admission::Preempt(_) => "governor.preempted",
            Admission::Deny => "governor.denied",
        };
        self.observer.metrics().counter(counter).incr();
        let tracer = self.observer.tracer().clone();
        let now = self.observer.now_micros();
        let label = match verdict {
            Admission::Admit => "admit",
            Admission::Preempt(_) => "preempt",
            Admission::Deny => "deny",
        };
        tracer.instant(SpanKind::Governor, label, now, |a| {
            a.push(("session", session.into()));
            a.push(("priority", priority.into()));
            a.push(("outstanding", (outstanding as u64).into()));
            if let Admission::Preempt(victim) = verdict {
                a.push(("victim", victim.into()));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov(max: usize, preempt: bool) -> Governor {
        Governor::new(GovernorConfig { max_outstanding: max, preempt, min_benefit_rate: 0.0 })
    }

    #[test]
    fn budget_is_enforced() {
        let g = gov(2, false);
        assert_eq!(g.admit(1, 1.0, "a"), Admission::Admit);
        assert_eq!(g.admit(2, 1.0, "b"), Admission::Admit);
        assert_eq!(g.admit(3, 9.0, "c"), Admission::Deny, "no preemption configured");
        assert!(g.finish(1));
        assert_eq!(g.admit(3, 9.0, "c"), Admission::Admit);
        assert_eq!(g.outstanding(), 2);
    }

    #[test]
    fn preemption_cancels_weakest_victim() {
        let g = gov(2, true);
        g.admit(1, 1.0, "a");
        g.admit(2, 3.0, "b");
        let token = CancelToken::new();
        g.attach_cancel(1, token.clone());
        assert_eq!(g.admit(3, 2.0, "c"), Admission::Preempt(1), "session 1 is the weakest");
        assert!(token.is_cancelled(), "victim's build must stop at the next morsel");
        assert_eq!(g.admit(4, 1.9, "d"), Admission::Deny, "weaker than both survivors");
        let s = g.stats();
        assert_eq!((s.admitted, s.denied, s.preempted), (3, 1, 1));
    }

    #[test]
    fn equal_priority_victim_is_lowest_session_then_key() {
        let g = gov(2, true);
        // Two in-flight builds at exactly the same priority: the victim
        // must be the lower session id regardless of insertion order.
        g.admit(7, 1.0, "materialize{z}");
        g.admit(3, 1.0, "materialize{a}");
        assert_eq!(g.admit(9, 2.0, "c"), Admission::Preempt(3), "lowest session id loses the tie");
        // Refill and preempt again: now 7 (the remaining equal-priority
        // build) is the deterministic victim.
        assert_eq!(g.admit(1, 2.0, "d"), Admission::Preempt(7));
    }

    #[test]
    fn one_outstanding_per_session_still_holds() {
        let g = gov(4, true);
        assert_eq!(g.admit(1, 1.0, "a"), Admission::Admit);
        assert_eq!(g.admit(1, 5.0, "b"), Admission::Deny, "own slot must be freed first");
    }

    #[test]
    fn min_benefit_rate_filters() {
        let g = Governor::new(GovernorConfig {
            max_outstanding: 4,
            preempt: true,
            min_benefit_rate: 0.5,
        });
        assert_eq!(g.admit(1, 0.4, "a"), Admission::Deny);
        assert_eq!(g.admit(1, 0.6, "a"), Admission::Admit);
    }

    #[test]
    fn zero_priority_never_admits() {
        let g = gov(4, true);
        assert_eq!(g.admit(1, 0.0, "a"), Admission::Deny, "idle decisions rank at zero");
    }
}
