//! One serving session: per-user partial query, Learner profile, and
//! speculative builds gated by the fleet governor.
//!
//! [`ServeSession`] is the multi-session counterpart of
//! [`specdb_core::SpeculativeSession`]: same edit/GO lifecycle, same
//! background build thread, but the database is *shared* with every
//! other session, builds must win a slot from the [`Governor`], and
//! speculative artifacts are registered in the [`SharedArtifactCache`]
//! so any session's GO can reuse them.

use crate::artifacts::{BeginBuild, CompleteBuild, SessionId, SharedArtifactCache};
use crate::governor::{Admission, Governor};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::Serialize;
use specdb_core::session::apply_manipulation;
use specdb_core::{Learner, Manipulation, Speculator, SpeculatorConfig};
use specdb_exec::{CancelToken, Database, ExecResult, QueryOutput};
use specdb_query::{EditOp, PartialQuery, Query};
use specdb_storage::VirtualTime;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Counters describing one serving session's activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ServeSessionStats {
    /// Speculative builds admitted and started.
    pub issued: u64,
    /// Builds that completed and installed their artifact.
    pub completed: u64,
    /// Builds cancelled (edit invalidation, GO, or preemption).
    pub cancelled: u64,
    /// Candidate builds the governor denied.
    pub denied: u64,
    /// Candidate builds skipped because the artifact already existed
    /// (or was being built) fleet-wide.
    pub deduped: u64,
    /// Final queries executed.
    pub queries: u64,
    /// This session's GO plans that read an artifact built by a
    /// *different* session.
    pub shared_hits: u64,
    /// Artifacts garbage-collected by this session's sweeps.
    pub collected: u64,
}

enum WorkerEvent {
    Done,
    Cancelled,
}

struct Outstanding {
    manipulation: Manipulation,
    cancel: CancelToken,
    handle: JoinHandle<()>,
}

/// One interactive session against the shared database.
pub struct ServeSession {
    id: SessionId,
    name: String,
    db: Arc<Mutex<Database>>,
    speculator: Arc<Speculator>,
    governor: Arc<Governor>,
    artifacts: Arc<SharedArtifactCache>,
    learner: Learner,
    partial: PartialQuery,
    outstanding: Option<Outstanding>,
    events: (Sender<WorkerEvent>, Receiver<WorkerEvent>),
    epoch: Instant,
    stats: ServeSessionStats,
}

impl ServeSession {
    /// A new session over the shared database. Sessions are normally
    /// created through [`SessionManager::connect`], which wires the
    /// shared governor and artifact cache.
    ///
    /// [`SessionManager::connect`]: crate::SessionManager::connect
    pub fn new(
        id: SessionId,
        name: String,
        db: Arc<Mutex<Database>>,
        spec: SpeculatorConfig,
        governor: Arc<Governor>,
        artifacts: Arc<SharedArtifactCache>,
    ) -> Self {
        ServeSession {
            id,
            name,
            db,
            speculator: Arc::new(Speculator::new(spec)),
            governor,
            artifacts,
            learner: Learner::default(),
            partial: PartialQuery::new(),
            outstanding: None,
            events: unbounded(),
            epoch: Instant::now(),
            stats: ServeSessionStats::default(),
        }
    }

    /// Session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Session name (from CONNECT).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn now(&self) -> VirtualTime {
        VirtualTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn drain_events(&mut self) {
        while let Ok(ev) = self.events.1.try_recv() {
            match ev {
                WorkerEvent::Done => self.stats.completed += 1,
                WorkerEvent::Cancelled => self.stats.cancelled += 1,
            }
        }
    }

    fn resolve_outstanding(&mut self, force_cancel: bool) {
        if let Some(out) = &self.outstanding {
            let finished = out.handle.is_finished();
            let invalid = force_cancel
                || self.speculator.should_cancel(&out.manipulation, self.partial.graph());
            if finished || invalid {
                if !finished {
                    out.cancel.cancel();
                }
                let out = self.outstanding.take().unwrap();
                let _ = out.handle.join();
            }
        }
        self.drain_events();
    }

    /// Apply one user edit; may cancel the in-flight build, refresh the
    /// session's artifact leases, and propose a new build to the
    /// governor.
    pub fn edit(&mut self, op: EditOp) {
        let now = self.now();
        self.learner.observe_edit(now, &op);
        self.partial.apply(&op);
        self.resolve_outstanding(false);
        // Lease exactly the artifacts the new partial query supports.
        let keys = self.db.lock().supported_view_keys(self.partial.graph());
        self.artifacts.set_leases(self.id, &keys);
        if self.outstanding.is_some() {
            return;
        }
        let elapsed = self
            .learner
            .formulation_start()
            .map(|s| now.saturating_sub(s))
            .unwrap_or(VirtualTime::ZERO);
        let decision = {
            let db = self.db.lock();
            self.speculator.decide(self.partial.graph(), &db, &self.learner, elapsed)
        };
        if decision.is_idle() {
            return;
        }
        // Fleet-wide dedupe: if any session already built (or is
        // building) this artifact, don't propose a duplicate.
        let artifact_key = decision.manipulation.graph().map(Database::graph_key);
        if let Some(key) = &artifact_key {
            match self.artifacts.begin_build(key, self.id) {
                BeginBuild::Started(ticket) => {
                    // We hold the build claim; now win a slot or give
                    // the claim back.
                    let cand = decision.manipulation.to_string();
                    match self.governor.admit(self.id, decision.benefit_rate(), &cand) {
                        Admission::Admit | Admission::Preempt(_) => {
                            self.spawn_build(decision.manipulation.clone(), Some(ticket));
                        }
                        Admission::Deny => {
                            self.artifacts.abort_build(ticket);
                            self.stats.denied += 1;
                        }
                    }
                }
                BeginBuild::InFlight | BeginBuild::Ready(_) => {
                    self.stats.deduped += 1;
                }
            }
            return;
        }
        // Non-materializing manipulations (index, histogram, staging)
        // still consume a governor slot but register no artifact.
        let cand = decision.manipulation.to_string();
        match self.governor.admit(self.id, decision.benefit_rate(), &cand) {
            Admission::Admit | Admission::Preempt(_) => {
                self.spawn_build(decision.manipulation, None);
            }
            Admission::Deny => self.stats.denied += 1,
        }
    }

    fn spawn_build(&mut self, m: Manipulation, ticket: Option<crate::artifacts::BuildTicket>) {
        let cancel = CancelToken::new();
        self.governor.attach_cancel(self.id, cancel.clone());
        let db = Arc::clone(&self.db);
        let governor = Arc::clone(&self.governor);
        let artifacts = Arc::clone(&self.artifacts);
        let tx = self.events.0.clone();
        let token = cancel.clone();
        let id = self.id;
        let manipulation = m.clone();
        let handle = std::thread::spawn(move || {
            let result = {
                let mut db = db.lock();
                apply_manipulation(&mut db, &manipulation, token)
            };
            governor.finish(id);
            match result {
                Ok(applied) => {
                    if let Some(ticket) = ticket {
                        let table = applied.table.clone().unwrap_or_default();
                        if artifacts.complete_build(ticket, table.clone()) == CompleteBuild::Stale {
                            // A DDL epoch bump raced the build: the
                            // result answers a stale snapshot. Drop it.
                            db.lock().drop_materialized(&table);
                            let _ = tx.send(WorkerEvent::Cancelled);
                            return;
                        }
                    }
                    let _ = tx.send(WorkerEvent::Done);
                }
                Err(_) => {
                    if let Some(ticket) = ticket {
                        artifacts.abort_build(ticket);
                    }
                    let _ = tx.send(WorkerEvent::Cancelled);
                }
            }
        });
        self.stats.issued += 1;
        self.outstanding = Some(Outstanding { manipulation: m, cancel, handle });
    }

    /// Cancel the in-flight build, if any. Returns whether one was
    /// cancelled.
    pub fn cancel(&mut self) -> bool {
        let had = self.outstanding.is_some();
        self.resolve_outstanding(true);
        had
    }

    /// The user pressed GO: resolve the in-flight build, execute the
    /// final query, account cross-session artifact hits, and run the
    /// lease-aware GC sweep.
    pub fn go(&mut self) -> ExecResult<GoOutcome> {
        self.resolve_outstanding(true);
        let now = self.now();
        let final_query: Query = self.partial.query().clone();
        self.learner.observe_go(now, &final_query.graph);
        let (result, collected) = {
            let mut db = self.db.lock();
            let r = db.execute(&final_query)?;
            // Lease against the final query, then sweep artifacts no
            // session supports any more.
            let keys = db.supported_view_keys(&final_query.graph);
            self.artifacts.set_leases(self.id, &keys);
            let doomed = self.artifacts.collect_unleased();
            for (_, table) in &doomed {
                db.drop_materialized(table);
            }
            for table in db.unsupported_staged(&final_query.graph) {
                db.unstage(&table);
            }
            (r, doomed.len() as u64)
        };
        self.stats.collected += collected;
        self.stats.queries += 1;
        let mut shared_hit = false;
        for view in &result.used_views {
            if self.artifacts.note_use(view, self.id) {
                self.stats.shared_hits += 1;
                shared_hit = true;
            }
        }
        Ok(GoOutcome { output: result, shared_hit })
    }

    /// The current partial query graph.
    pub fn partial(&self) -> &specdb_query::QueryGraph {
        self.partial.graph()
    }

    /// Session counters (drains pending worker events first).
    pub fn stats(&mut self) -> ServeSessionStats {
        self.drain_events();
        self.stats
    }

    /// Tear down: cancel in-flight work and release every artifact
    /// lease. Called by [`SessionManager::disconnect`].
    ///
    /// [`SessionManager::disconnect`]: crate::SessionManager::disconnect
    pub fn close(&mut self) {
        self.resolve_outstanding(true);
        self.artifacts.release_session(self.id);
        let doomed = self.artifacts.collect_unleased();
        if !doomed.is_empty() {
            let mut db = self.db.lock();
            for (_, table) in &doomed {
                db.drop_materialized(table);
            }
        }
    }
}

/// Result of [`ServeSession::go`].
#[derive(Debug)]
pub struct GoOutcome {
    /// The final query's output.
    pub output: QueryOutput,
    /// Whether the plan read at least one artifact built by a
    /// different session.
    pub shared_hit: bool,
}
