//! The wire protocol: line-oriented requests, JSON-line responses.
//!
//! Requests are single lines of whitespace-separated tokens — easy to
//! type into `nc` — and every response is a single JSON object
//! terminated by `\n`. The verbs mirror the session lifecycle:
//!
//! ```text
//! CONNECT [name]                             open a session
//! EDIT ADD_RELATION <table>                  place a relation
//! EDIT REMOVE_RELATION <table>
//! EDIT ADD_SELECTION <table> <col> <op> <v>  op ∈ = != < <= > >=
//! EDIT REMOVE_SELECTION <table> <col> <op> <v>
//! EDIT UPDATE_SELECTION <table> <col> <op> <old> <new>
//! EDIT ADD_JOIN <t1> <c1> <t2> <c2>
//! EDIT REMOVE_JOIN <t1> <c1> <t2> <c2>
//! EDIT ADD_PROJECTION <table> <col>
//! EDIT REMOVE_PROJECTION <table> <col>
//! GO                                         submit the final query
//! CANCEL                                     cancel the in-flight build
//! STATS                                      session + fleet counters
//! QUIT                                       close the session
//! ```
//!
//! Values parse as integers when they look like one, strings otherwise
//! (single quotes optional: `FRANCE` and `'FRANCE'` are the same).
//! A worked transcript lives in `docs/serving.md`.

use crate::artifacts::CacheStats;
use crate::governor::GovernorStats;
use crate::session::ServeSessionStats;
use serde::Serialize;
use specdb_query::{CompareOp, EditOp, Join, Predicate, Selection};
use specdb_storage::Value;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session, optionally naming it.
    Connect {
        /// Client-chosen session label (defaults to `anon`).
        name: Option<String>,
    },
    /// Apply one partial-query edit.
    Edit(EditOp),
    /// Submit the final query.
    Go,
    /// Cancel the in-flight speculative build.
    Cancel,
    /// Report session and fleet counters.
    Stats,
    /// Close the session and the connection.
    Quit,
}

/// Parse one request line. Verbs are case-insensitive.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or("empty request")?.to_ascii_uppercase();
    let rest: Vec<&str> = tokens.collect();
    match verb.as_str() {
        "CONNECT" => Ok(Request::Connect { name: rest.first().map(|s| s.to_string()) }),
        "EDIT" => parse_edit(&rest).map(Request::Edit),
        "GO" => Ok(Request::Go),
        "CANCEL" => Ok(Request::Cancel),
        "STATS" => Ok(Request::Stats),
        "QUIT" | "EXIT" => Ok(Request::Quit),
        other => Err(format!("unknown verb {other:?} (try CONNECT/EDIT/GO/CANCEL/STATS/QUIT)")),
    }
}

fn parse_edit(args: &[&str]) -> Result<EditOp, String> {
    let op = args.first().ok_or("EDIT needs a sub-command")?.to_ascii_uppercase();
    let need = |n: usize| -> Result<(), String> {
        if args.len() - 1 == n {
            Ok(())
        } else {
            Err(format!("EDIT {op} takes {n} argument(s), got {}", args.len() - 1))
        }
    };
    match op.as_str() {
        "ADD_RELATION" => {
            need(1)?;
            Ok(EditOp::AddRelation(args[1].to_string()))
        }
        "REMOVE_RELATION" => {
            need(1)?;
            Ok(EditOp::RemoveRelation(args[1].to_string()))
        }
        "ADD_SELECTION" => {
            need(4)?;
            Ok(EditOp::AddSelection(parse_selection(&args[1..5])?))
        }
        "REMOVE_SELECTION" => {
            need(4)?;
            Ok(EditOp::RemoveSelection(parse_selection(&args[1..5])?))
        }
        "UPDATE_SELECTION" => {
            need(5)?;
            let old = parse_selection(&args[1..5])?;
            let new = Selection::new(
                args[1],
                Predicate::new(args[2], parse_op(args[3])?, parse_value(args[5])),
            );
            Ok(EditOp::UpdateSelection { old, new })
        }
        "ADD_JOIN" => {
            need(4)?;
            Ok(EditOp::AddJoin(Join::new(args[1], args[2], args[3], args[4])))
        }
        "REMOVE_JOIN" => {
            need(4)?;
            Ok(EditOp::RemoveJoin(Join::new(args[1], args[2], args[3], args[4])))
        }
        "ADD_PROJECTION" => {
            need(2)?;
            Ok(EditOp::AddProjection(args[1].to_string(), args[2].to_string()))
        }
        "REMOVE_PROJECTION" => {
            need(2)?;
            Ok(EditOp::RemoveProjection(args[1].to_string(), args[2].to_string()))
        }
        "GO" => Ok(EditOp::Go),
        other => Err(format!("unknown EDIT sub-command {other:?}")),
    }
}

fn parse_selection(args: &[&str]) -> Result<Selection, String> {
    Ok(Selection::new(args[0], Predicate::new(args[1], parse_op(args[2])?, parse_value(args[3]))))
}

fn parse_op(tok: &str) -> Result<CompareOp, String> {
    match tok.to_ascii_uppercase().as_str() {
        "=" | "==" | "EQ" => Ok(CompareOp::Eq),
        "!=" | "<>" | "NE" => Ok(CompareOp::Ne),
        "<" | "LT" => Ok(CompareOp::Lt),
        "<=" | "LE" => Ok(CompareOp::Le),
        ">" | "GT" => Ok(CompareOp::Gt),
        ">=" | "GE" => Ok(CompareOp::Ge),
        other => Err(format!("unknown operator {other:?} (= != < <= > >=)")),
    }
}

fn parse_value(tok: &str) -> Value {
    let unquoted = tok.trim_matches('\'');
    if unquoted.len() == tok.len() {
        if let Ok(i) = tok.parse::<i64>() {
            return Value::Int(i);
        }
    }
    Value::Str(unquoted.to_string())
}

/// A serialized response line (without the trailing newline).
pub fn render<T: Serialize>(resp: &T) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| "{\"ok\":false,\"error\":\"render\"}".into())
}

/// Response to `CONNECT`.
#[derive(Debug, Serialize)]
pub struct ConnectResponse {
    /// Always true on success.
    pub ok: bool,
    /// The assigned session id.
    pub session: u64,
    /// Echo of the session name.
    pub name: String,
}

/// Response to `EDIT`.
#[derive(Debug, Serialize)]
pub struct EditResponse {
    /// Always true on success.
    pub ok: bool,
    /// Relations currently on the canvas.
    pub relations: u64,
    /// Selections currently on the canvas.
    pub selections: u64,
    /// Join edges currently on the canvas.
    pub joins: u64,
    /// Whether a speculative build is in flight for this session.
    pub outstanding: bool,
}

/// Response to `GO`.
#[derive(Debug, Serialize)]
pub struct GoResponse {
    /// Always true on success.
    pub ok: bool,
    /// Result row count.
    pub rows: u64,
    /// Virtual execution time in seconds.
    pub elapsed_secs: f64,
    /// Materialized views the plan read.
    pub used_views: Vec<String>,
    /// Whether the plan read an artifact built by a different session.
    pub shared_hit: bool,
}

/// Response to `CANCEL`.
#[derive(Debug, Serialize)]
pub struct CancelResponse {
    /// Always true on success.
    pub ok: bool,
    /// Whether a build was actually cancelled.
    pub cancelled: bool,
}

/// Response to `STATS`.
#[derive(Debug, Serialize)]
pub struct StatsResponse {
    /// Always true on success.
    pub ok: bool,
    /// This session's counters.
    pub session: ServeSessionStats,
    /// Sessions currently connected.
    pub sessions: u64,
    /// Governor admission counters.
    pub governor: GovernorSummary,
    /// Shared artifact-cache counters.
    pub cache: CacheSummary,
}

/// Governor counters in wire form.
#[derive(Debug, Serialize)]
pub struct GovernorSummary {
    /// Builds admitted.
    pub admitted: u64,
    /// Candidates denied.
    pub denied: u64,
    /// Builds preempted.
    pub preempted: u64,
    /// Builds currently in flight.
    pub outstanding: u64,
}

impl From<GovernorStats> for GovernorSummary {
    fn from(s: GovernorStats) -> Self {
        GovernorSummary {
            admitted: s.admitted,
            denied: s.denied,
            preempted: s.preempted,
            outstanding: s.outstanding,
        }
    }
}

/// Artifact-cache counters in wire form.
#[derive(Debug, Serialize)]
pub struct CacheSummary {
    /// Installed artifacts resident.
    pub ready: u64,
    /// Builds in flight.
    pub building: u64,
    /// Ready-artifact lookups.
    pub hits: u64,
    /// Hits/uses served by another session's build.
    pub shared_hits: u64,
    /// Fraction of plan uses served cross-session.
    pub cross_session_reuse: f64,
}

impl From<CacheStats> for CacheSummary {
    fn from(s: CacheStats) -> Self {
        CacheSummary {
            ready: s.ready,
            building: s.building,
            hits: s.hits,
            shared_hits: s.shared_hits,
            cross_session_reuse: s.cross_session_reuse(),
        }
    }
}

/// Error response (any verb).
#[derive(Debug, Serialize)]
pub struct ErrorResponse {
    /// Always false.
    pub ok: bool,
    /// Human-readable diagnostic.
    pub error: String,
}

impl ErrorResponse {
    /// Build an error line.
    pub fn line(error: impl Into<String>) -> String {
        render(&ErrorResponse { ok: false, error: error.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(
            parse_request("connect alice").unwrap(),
            Request::Connect { name: Some("alice".into()) }
        );
        assert_eq!(
            parse_request("EDIT add_relation customer").unwrap(),
            Request::Edit(EditOp::AddRelation("customer".into()))
        );
        let sel = parse_request("EDIT ADD_SELECTION customer c_nation = 'FRANCE'").unwrap();
        assert_eq!(
            sel,
            Request::Edit(EditOp::AddSelection(Selection::new(
                "customer",
                Predicate::new("c_nation", CompareOp::Eq, "FRANCE"),
            )))
        );
        assert_eq!(
            parse_request("EDIT ADD_SELECTION lineitem l_quantity <= 2").unwrap(),
            Request::Edit(EditOp::AddSelection(Selection::new(
                "lineitem",
                Predicate::new("l_quantity", CompareOp::Le, 2i64),
            )))
        );
        assert_eq!(
            parse_request("edit add_join orders o_custkey customer c_custkey").unwrap(),
            Request::Edit(EditOp::AddJoin(Join::new(
                "orders",
                "o_custkey",
                "customer",
                "c_custkey"
            )))
        );
        assert_eq!(parse_request("GO").unwrap(), Request::Go);
        assert_eq!(parse_request("cancel").unwrap(), Request::Cancel);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("quit").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROB x").is_err());
        assert!(parse_request("EDIT ADD_SELECTION customer c_nation").is_err());
        assert!(parse_request("EDIT ADD_SELECTION customer c_nation ~ FRANCE").is_err());
    }

    #[test]
    fn responses_render_as_json_lines() {
        let line = render(&ConnectResponse { ok: true, session: 7, name: "alice".into() });
        assert!(line.contains("\"session\":7"), "{line}");
        let parsed = serde_json::parse(&line).expect("valid JSON");
        drop(parsed);
        assert!(ErrorResponse::line("nope").contains("\"ok\":false"));
    }
}
