#![warn(missing_docs)]
//! Shared orchestration for the experiment benches.
//!
//! Every table and figure of the paper has a bench target under
//! `benches/` (custom harnesses that print the same rows/series the
//! paper reports). This library holds the pieces they share: environment
//! knobs, cohort generation, paired normal-vs-speculative runs, and
//! figure rendering.
//!
//! Scale knobs (environment variables):
//!
//! | var | default | meaning |
//! |-----|---------|---------|
//! | `SPECDB_DIVISOR` | 50 | dataset scale divisor (DESIGN.md subst. 3) |
//! | `SPECDB_USERS`   | 6  | traces per cohort (paper: 15) |
//! | `SPECDB_QUERIES` | 30 | queries per trace (paper: 42) |
//! | `SPECDB_SEED`    | 123 | cohort base seed |
//!
//! Raising users/queries toward the paper's 15/42 tightens the
//! statistics at proportional wall-clock cost.

use specdb_exec::Database;
use specdb_sim::replay::{replay_trace, ReplayConfig, ReplayOutcome};
use specdb_sim::report::{
    bucketize, improvement, pair_runs, render_rows, render_speculation_summary, PairedRun,
    SpeculationSummary,
};
use specdb_sim::DatasetSpec;
use specdb_storage::VirtualTime;
use specdb_trace::{Trace, UserModel, UserModelConfig};

/// Bench scale parameters (see module docs for the env vars).
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// Dataset scale divisor.
    pub divisor: u64,
    /// Traces per cohort.
    pub users: usize,
    /// Queries per trace.
    pub queries: usize,
    /// Cohort base seed.
    pub seed: u64,
}

impl BenchEnv {
    /// Read the environment (falling back to defaults).
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
        BenchEnv {
            divisor: get("SPECDB_DIVISOR", 50),
            users: get("SPECDB_USERS", 6) as usize,
            queries: get("SPECDB_QUERIES", 30) as usize,
            seed: get("SPECDB_SEED", 123),
        }
    }

    /// The paper's three dataset specs at this scale.
    pub fn specs(&self) -> Vec<DatasetSpec> {
        DatasetSpec::paper_trio(self.divisor)
    }

    /// Generate the user cohort.
    pub fn cohort(&self) -> Vec<Trace> {
        let cfg = UserModelConfig { queries: self.queries, ..Default::default() };
        UserModel::new(cfg, specdb_tpch::ExploreDomain::tpch())
            .generate_cohort(self.users, self.seed)
    }

    /// The user-model config the cohort uses (for oracle profiles).
    pub fn user_config(&self) -> UserModelConfig {
        UserModelConfig { queries: self.queries, ..Default::default() }
    }
}

/// Aggregated result of replaying a cohort under two configurations.
#[derive(Debug, Default)]
pub struct PairedCohort {
    /// Per-query (baseline, treatment) pairs across all traces.
    pub pairs: Vec<PairedRun>,
    /// Treatment-side replay outcomes (speculation statistics).
    pub treatment: Vec<ReplayOutcome>,
}

impl PairedCohort {
    /// Aggregate improvement of treatment over baseline.
    pub fn improvement_pct(&self) -> f64 {
        improvement(&self.pairs) * 100.0
    }

    /// Manipulations issued.
    pub fn issued(&self) -> u64 {
        self.treatment.iter().map(|o| o.issued).sum()
    }

    /// Manipulations completed.
    pub fn completed(&self) -> u64 {
        self.treatment.iter().map(|o| o.completed).sum()
    }

    /// Percentage of manipulations that did not complete in time.
    pub fn non_completion_pct(&self) -> f64 {
        let issued = self.issued();
        if issued == 0 {
            0.0
        } else {
            100.0 * (issued - self.completed()) as f64 / issued as f64
        }
    }

    /// Aggregate speculation statistics across the treatment outcomes.
    pub fn speculation(&self) -> SpeculationSummary {
        SpeculationSummary::from_outcomes(&self.treatment)
    }

    /// Render the speculation summary (hit rate, waste, calibration when
    /// the treatment database carried an enabled observer).
    pub fn speculation_report(
        &self,
        calibration: Option<&specdb_obs::CalibrationTracker>,
    ) -> String {
        render_speculation_summary(&self.speculation(), calibration)
    }

    /// Mean completed-manipulation duration.
    pub fn mean_manipulation(&self) -> VirtualTime {
        let times: Vec<VirtualTime> = self
            .treatment
            .iter()
            .flat_map(|o| o.manipulation_times.iter().copied())
            .collect();
        if times.is_empty() {
            VirtualTime::ZERO
        } else {
            times.iter().copied().sum::<VirtualTime>() / times.len() as u64
        }
    }
}

/// Replay a cohort under `baseline` and `treatment` configs against
/// clones of `base`, pairing the measurements per query.
pub fn run_paired(
    base: &Database,
    traces: &[Trace],
    baseline: &ReplayConfig,
    treatment: &ReplayConfig,
) -> PairedCohort {
    let mut out = PairedCohort::default();
    for trace in traces {
        let mut db_b = base.clone();
        let b = replay_trace(&mut db_b, trace, baseline).expect("baseline replay");
        drop(db_b);
        let mut db_t = base.clone();
        let t = replay_trace(&mut db_t, trace, treatment).expect("treatment replay");
        drop(db_t);
        out.pairs.extend(
            pair_runs(&b.queries, &t.queries).expect("paired replays of one trace must align"),
        );
        out.treatment.push(t);
    }
    out
}

/// The paper's bucket ranges per dataset label: `(lo, hi, step)` seconds.
pub fn paper_buckets(label: &str) -> (f64, f64, f64) {
    match label {
        "100MB" => (3.0, 13.0, 1.0),
        "500MB" => (10.0, 65.0, 5.0),
        "1GB" => (30.0, 140.0, 10.0),
        _ => (0.0, 1e6, 1e6),
    }
}

/// Render one figure panel: bucket rows over the paper's range plus an
/// all-queries summary line (coverage of the paper range included).
pub fn render_panel(title: &str, pairs: &[PairedRun], label: &str, extremes: bool) -> String {
    let (lo, hi, step) = paper_buckets(label);
    let min_count = if pairs.len() >= 200 { 5 } else { 2 };
    let rows = bucketize(pairs, lo, hi, step, min_count);
    let covered: usize = rows.iter().map(|r| r.count).sum();
    let mut s = render_rows(title, &rows, extremes);
    s.push_str(&format!(
        "   overall: {:+.1}% over {} queries ({} in the paper's {}-{}s range)\n",
        improvement(pairs) * 100.0,
        pairs.len(),
        covered,
        lo,
        hi,
    ));
    s
}

/// Format a virtual time in seconds with one decimal.
pub fn secs(t: VirtualTime) -> String {
    format!("{:.1}s", t.as_secs_f64())
}

/// Exact sample quantile by nearest rank over a sorted copy; `q` in
/// `[0, 1]`. Returns 0 for an empty slice. Unlike the metrics
/// registry's HDR histograms (bounded-error buckets for unbounded
/// streams), benches keep every sample, so quantiles here are exact.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Mean of a sample set (0 for empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Render a sample set's p50/p95/p99 as a JSON object fragment, e.g.
/// `{ "p50": 12.0, "p95": 40.5, "p99": 61.0 }` — the shape the
/// `BENCH_*.json` artifacts embed next to their means.
pub fn quantiles_json(samples: &[f64]) -> String {
    format!(
        "{{ \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3} }}",
        quantile(samples, 0.50),
        quantile(samples, 0.95),
        quantile(samples, 0.99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let env = BenchEnv::from_env();
        assert!(env.divisor >= 1);
        assert!(env.users >= 1);
        assert_eq!(env.specs().len(), 3);
    }

    #[test]
    fn paper_bucket_ranges() {
        assert_eq!(paper_buckets("100MB"), (3.0, 13.0, 1.0));
        assert_eq!(paper_buckets("1GB"), (30.0, 140.0, 10.0));
    }

    #[test]
    fn exact_quantiles_over_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&samples, 0.0), 1.0);
        assert_eq!(quantile(&samples, 1.0), 100.0);
        assert!((quantile(&samples, 0.50) - 50.0).abs() <= 1.0);
        assert!((quantile(&samples, 0.95) - 95.0).abs() <= 1.0);
        assert!((quantile(&samples, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        let json = quantiles_json(&samples);
        assert!(json.contains("\"p95\""), "{json}");
    }

    #[test]
    fn paired_cohort_math() {
        let mut c = PairedCohort::default();
        c.pairs.push(PairedRun {
            normal: VirtualTime::from_secs(10),
            spec: VirtualTime::from_secs(6),
        });
        let o = ReplayOutcome {
            issued: 4,
            completed: 3,
            manipulation_times: vec![VirtualTime::from_secs(6)],
            ..Default::default()
        };
        c.treatment.push(o);
        assert!((c.improvement_pct() - 40.0).abs() < 1e-9);
        assert!((c.non_completion_pct() - 25.0).abs() < 1e-9);
        assert_eq!(c.mean_manipulation(), VirtualTime::from_secs(6));
    }
}
