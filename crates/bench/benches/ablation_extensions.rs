//! Extension ablations: features beyond the paper's prototype.
//!
//! The paper's Section 7 sketches DBMS support that would improve
//! speculation; this repository implements three of those ideas plus a
//! matching extension, each toggleable:
//!
//! * **wait-at-GO** — instead of always cancelling the in-flight
//!   manipulation at GO, wait for it when its remaining time undercuts
//!   its estimated benefit (needs the "remaining time" feedback §7 asks
//!   DBMSs for),
//! * **subsumption matching** — a view of `age < 30` answers a query for
//!   `age < 20` with a residual predicate (classic view matching; the
//!   paper's containment is exact),
//! * **data staging** — pre-fetch + pin relation prefixes (defined in
//!   §3.2, unimplementable over the paper's closed DBMS, natively
//!   supported by this engine; compared here as an additional space arm),
//!
//! all measured as single-user improvement on the 100 MB dataset against
//! the same normal-processing baseline.

use specdb_bench::{run_paired, BenchEnv};
use specdb_core::{SpaceConfig, SpeculatorConfig};
use specdb_exec::MatchMode;
use specdb_sim::build_base_db;
use specdb_sim::replay::ReplayConfig;

fn main() {
    let env = BenchEnv::from_env();
    let traces = env.cohort();
    let spec = env.specs().remove(0); // 100MB
    println!(
        "extension ablations: {} dataset, {} traces x {} queries, divisor {}",
        spec.label, env.users, env.queries, env.divisor
    );
    eprintln!("generating base database...");
    let base = build_base_db(&spec).expect("base db");
    let mut base_subsume = base.clone();
    base_subsume.set_match_mode(MatchMode::Subsume);

    println!();
    println!(
        "{:<34} {:>12} {:>8} {:>10} {:>8}",
        "configuration", "improvement%", "issued", "completed", "waited"
    );
    let arms: Vec<(&str, &specdb_exec::Database, ReplayConfig)> = vec![
        ("paper baseline (exact, cancel)", &base, ReplayConfig::speculative()),
        ("+ wait-at-GO", &base, ReplayConfig { wait_at_go: true, ..ReplayConfig::speculative() }),
        ("+ subsumption matching", &base_subsume, ReplayConfig::speculative()),
        (
            "+ staging in the space",
            &base,
            ReplayConfig {
                speculative: true,
                speculator: SpeculatorConfig {
                    space: SpaceConfig { staging: true, ..Default::default() },
                    ..Default::default()
                },
                ..Default::default()
            },
        ),
        (
            "all extensions",
            &base_subsume,
            ReplayConfig {
                speculative: true,
                wait_at_go: true,
                speculator: SpeculatorConfig {
                    space: SpaceConfig { staging: true, ..Default::default() },
                    ..Default::default()
                },
                ..Default::default()
            },
        ),
    ];
    for (name, db, cfg) in arms {
        eprintln!("replaying arm: {name}...");
        let cohort = run_paired(db, &traces, &ReplayConfig::normal(), &cfg);
        let waited: u64 = cohort.treatment.iter().map(|o| o.waited).sum();
        println!(
            "{:<34} {:>12.1} {:>8} {:>10} {:>8}",
            name,
            cohort.improvement_pct(),
            cohort.issued(),
            cohort.completed(),
            waited
        );
    }
}
