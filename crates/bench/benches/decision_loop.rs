//! Decision-loop latency: how fast can the speculator re-decide after
//! each edit of an evolving partial query?
//!
//! The paper's speculation loop runs `decide()` on *every* edit, so its
//! latency bounds how large a manipulation space (and how small a think
//! gap) the system can afford. This bench drives a recorded TPC-H edit
//! session through the loop twice — with the plan/estimate caches and
//! the incremental manipulation space on, and with both off — and
//! reports per-edit decide() wall-clock plus end-to-end replay
//! throughput for each arm, verifying along the way that the two arms
//! produce identical decisions and replay outcomes (caching must be
//! pure memoization).
//!
//! Results land in `BENCH_decision_loop.json` at the repository root so
//! CI can archive them; the criterion-style stderr lines participate in
//! `--save-baseline` / `--baseline` regression tracking. Set
//! `SPECDB_BENCH_SMOKE=1` for a seconds-scale smoke run.

use criterion::{black_box, Criterion};
use specdb_bench::BenchEnv;
use specdb_core::{Manipulation, Speculator, SpeculatorConfig, UniformProfile};
use specdb_exec::Database;
use specdb_query::{PartialQuery, QueryGraph};
use specdb_sim::replay::{replay_trace, ReplayConfig, ReplayOutcome};
use specdb_sim::{build_base_db, DatasetSpec};
use specdb_storage::VirtualTime;
use specdb_trace::Trace;
use std::time::Instant;

/// Snapshot of a decision (the fields `decide()` is judged on).
#[derive(PartialEq, Debug)]
struct DecisionKey {
    manipulation: Manipulation,
    score_bits: u64,
    build: VirtualTime,
}

/// Per-edit partial-query snapshots for the first `min_edits`+ non-GO
/// edits of the trace (each one is a decision point).
fn decision_points(trace: &Trace, min_edits: usize) -> Vec<QueryGraph> {
    let mut pq = PartialQuery::new();
    let mut points = Vec::new();
    for te in &trace.edits {
        let is_go = pq.apply(&te.op);
        if !is_go {
            points.push(pq.graph().clone());
            if points.len() >= min_edits {
                break;
            }
        }
    }
    points
}

/// One full sweep of `decide()` over the session's decision points.
fn sweep(spec: &Speculator, points: &[QueryGraph], db: &Database) -> Vec<DecisionKey> {
    let profile = UniformProfile { p: 0.9, think_mean_secs: 120.0 };
    points
        .iter()
        .map(|g| {
            let d = spec.decide(g, db, &profile, VirtualTime::ZERO);
            DecisionKey {
                manipulation: d.manipulation,
                score_bits: d.score.to_bits(),
                build: d.build,
            }
        })
        .collect()
}

/// An arm of the comparison: a database and speculator with caching
/// either fully on or fully off.
fn arm(base: &Database, cached: bool) -> (Database, Speculator) {
    let mut db = base.clone();
    db.set_plan_cache(cached);
    let spec = Speculator::new(SpeculatorConfig { incremental: cached, ..Default::default() });
    (db, spec)
}

/// Per-edit decide() wall times over `passes` sweeps, in microseconds —
/// one sample per (pass, edit), so the artifact can report exact
/// p50/p95/p99 alongside the mean.
fn time_decides(base: &Database, points: &[QueryGraph], cached: bool, passes: usize) -> Vec<f64> {
    let (db, spec) = arm(base, cached);
    let profile = UniformProfile { p: 0.9, think_mean_secs: 120.0 };
    let mut samples = Vec::with_capacity(passes * points.len());
    for _ in 0..passes {
        for g in points {
            let start = Instant::now();
            black_box(spec.decide(g, &db, &profile, VirtualTime::ZERO));
            samples.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    samples
}

/// Wall-clock seconds for a full speculative replay of the trace.
fn time_replay(base: &Database, trace: &Trace, cached: bool) -> (f64, ReplayOutcome) {
    let mut db = base.clone();
    db.set_plan_cache(cached);
    let mut cfg = ReplayConfig::speculative();
    cfg.speculator.incremental = cached;
    let start = Instant::now();
    let outcome = replay_trace(&mut db, trace, &cfg).expect("replay");
    (start.elapsed().as_secs_f64(), outcome)
}

fn write_json(path: &std::path::Path, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("decision_loop: cannot write {}: {e}", path.display());
    } else {
        eprintln!("decision_loop: wrote {}", path.display());
    }
}

fn main() {
    let smoke = std::env::var("SPECDB_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let env = BenchEnv::from_env();
    let spec_ds =
        if smoke { DatasetSpec::tiny() } else { DatasetSpec::paper_trio(env.divisor).remove(0) };
    let passes = if smoke { 3 } else { 30 };
    let min_edits = 20;

    eprintln!(
        "decision_loop: dataset {} ({} MB), {} passes{}",
        spec_ds.label,
        spec_ds.actual_mb(),
        passes,
        if smoke { " [smoke]" } else { "" }
    );
    let base = build_base_db(&spec_ds).expect("base db");
    let trace = env.cohort().remove(0);
    let points = decision_points(&trace, min_edits);
    assert!(
        points.len() >= min_edits,
        "trace too short: {} decision points (need {min_edits})",
        points.len()
    );

    // Caching must be pure memoization: identical decisions either way.
    let (db_c, spec_c) = arm(&base, true);
    let (db_u, spec_u) = arm(&base, false);
    let cached_decisions = sweep(&spec_c, &points, &db_c);
    let uncached_decisions = sweep(&spec_u, &points, &db_u);
    let decisions_identical = cached_decisions == uncached_decisions;
    assert!(decisions_identical, "caching changed decisions");

    // Criterion lines (participate in --save-baseline / --baseline).
    let mut c = Criterion::default().sample_size(if smoke { 2 } else { 10 });
    {
        let (db, spec) = arm(&base, true);
        c.bench_function("decision_loop/session_cached", |b| b.iter(|| sweep(&spec, &points, &db)));
    }
    {
        let (db, spec) = arm(&base, false);
        c.bench_function("decision_loop/session_uncached", |b| {
            b.iter(|| sweep(&spec, &points, &db))
        });
    }

    // Headline numbers: per-edit decide latency samples per arm.
    let cached_samples = time_decides(&base, &points, true, passes);
    let uncached_samples = time_decides(&base, &points, false, passes);
    let cached_us = specdb_bench::mean(&cached_samples);
    let uncached_us = specdb_bench::mean(&uncached_samples);
    let decide_speedup = uncached_us / cached_us.max(1e-9);

    // End-to-end replay throughput, plus bit-identity of the outcome.
    let (cached_secs, out_c) = time_replay(&base, &trace, true);
    let (uncached_secs, out_u) = time_replay(&base, &trace, false);
    let replay_identical = out_c == out_u;
    assert!(replay_identical, "caching changed replay outcome");
    let queries = trace.query_count();
    let replay_speedup = uncached_secs / cached_secs.max(1e-9);

    println!();
    println!(
        "per-edit decide: cached {cached_us:.1} us (p50 {:.1} p95 {:.1} p99 {:.1}), \
         uncached {uncached_us:.1} us (p50 {:.1} p95 {:.1} p99 {:.1}) \
         ({decide_speedup:.2}x), {} edits x {passes} passes",
        specdb_bench::quantile(&cached_samples, 0.50),
        specdb_bench::quantile(&cached_samples, 0.95),
        specdb_bench::quantile(&cached_samples, 0.99),
        specdb_bench::quantile(&uncached_samples, 0.50),
        specdb_bench::quantile(&uncached_samples, 0.95),
        specdb_bench::quantile(&uncached_samples, 0.99),
        points.len()
    );
    println!(
        "replay ({queries} queries): cached {cached_secs:.3} s, uncached {uncached_secs:.3} s \
         ({replay_speedup:.2}x), outcomes identical: {replay_identical}"
    );

    let json = format!(
        "{{\n  \"bench\": \"decision_loop\",\n  \"smoke\": {smoke},\n  \
         \"dataset\": \"{}\",\n  \"dataset_mb\": {},\n  \"edits\": {},\n  \"passes\": {passes},\n  \
         \"decide_us_per_edit\": {{ \"cached\": {cached_us:.3}, \"uncached\": {uncached_us:.3} }},\n  \
         \"decide_us_quantiles\": {{ \"cached\": {}, \"uncached\": {} }},\n  \
         \"decide_speedup\": {decide_speedup:.3},\n  \"decisions_identical\": {decisions_identical},\n  \
         \"replay\": {{ \"queries\": {queries}, \"cached_secs\": {cached_secs:.4}, \
         \"uncached_secs\": {uncached_secs:.4}, \"speedup\": {replay_speedup:.3}, \
         \"identical\": {replay_identical} }}\n}}\n",
        spec_ds.label,
        spec_ds.actual_mb(),
        points.len(),
        specdb_bench::quantiles_json(&cached_samples),
        specdb_bench::quantiles_json(&uncached_samples),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decision_loop.json");
    write_json(&path, &json);
}
