//! Learner ablation: what does the user profile buy?
//!
//! The paper's Learner feeds the cost model the probability that query
//! parts survive/persist. This ablation replays the same cohort with
//! four probability sources on the 100 MB dataset:
//!
//! * **oracle** — the true generator parameters (upper bound),
//! * **learner (counting)** — the paper's configuration, trained online,
//! * **learner (logistic)** — the alternative hashed-feature estimator,
//! * **uniform 0.5** — no knowledge (lower bound).

use specdb_bench::{run_paired, BenchEnv};
use specdb_core::learner::SurvivalMode;
use specdb_core::{LearnerConfig, UniformProfile};
use specdb_sim::build_base_db;
use specdb_sim::replay::{ProfileKind, ReplayConfig};
use specdb_trace::gen::oracle_profile;

fn main() {
    let env = BenchEnv::from_env();
    let traces = env.cohort();
    let spec = env.specs().remove(0); // 100MB
    println!(
        "learner ablation: {} dataset, {} traces x {} queries, divisor {}",
        spec.label, env.users, env.queries, env.divisor
    );
    eprintln!("generating base database...");
    let base = build_base_db(&spec).expect("base db");
    let arms: Vec<(&str, ProfileKind)> = vec![
        ("oracle", ProfileKind::Oracle(oracle_profile(&env.user_config()))),
        ("learner (counting)", ProfileKind::Learner(LearnerConfig::default())),
        (
            "learner (logistic)",
            ProfileKind::Learner(LearnerConfig {
                mode: SurvivalMode::Logistic,
                ..Default::default()
            }),
        ),
        ("uniform 0.5", ProfileKind::Uniform(UniformProfile::default())),
    ];
    println!();
    println!(
        "{:<22} {:>12} {:>8} {:>10} {:>14}",
        "profile", "improvement%", "issued", "completed", "non-compl.%"
    );
    for (name, profile) in arms {
        eprintln!("replaying arm: {name}...");
        let cfg = ReplayConfig { speculative: true, profile, ..Default::default() };
        let cohort = run_paired(&base, &traces, &ReplayConfig::normal(), &cfg);
        println!(
            "{:<22} {:>12.1} {:>8} {:>10} {:>14.1}",
            name,
            cohort.improvement_pct(),
            cohort.issued(),
            cohort.completed(),
            cohort.non_completion_pct()
        );
    }
}
