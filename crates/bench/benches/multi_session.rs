//! Multi-session serving scale-out: p95 GO latency and cross-session
//! artifact reuse as the fleet grows.
//!
//! N concurrent sessions (N in {1, 8, 64}) replay against one shared
//! engine under the fleet governor (admission budget, priority by
//! benefit rate, preemption at morsel boundaries) with the shared
//! speculative-artifact cache enabled. Sessions arrive in look-alike
//! pairs — half the fleet converges on a twin's question — so
//! cross-session reuse has something to find, mirroring the "popular
//! dashboard query" serving workload.
//!
//! Reported per N: p50/p95/p99 GO latency (virtual seconds), shared
//! artifact hits, cross-session reuse rate, and governor admission
//! counters. Results land in `BENCH_multi_session.json` at the
//! repository root so EXPERIMENTS.md can quote them; set
//! `SPECDB_BENCH_SMOKE=1` for a seconds-scale smoke run.

use specdb_bench::{quantile, quantiles_json};
use specdb_exec::Database;
use specdb_serve::GovernorConfig;
use specdb_sim::{build_base_db, replay_multi_session, DatasetSpec, MultiSessionConfig};
use specdb_trace::{Trace, UserModel, UserModelConfig};
use std::time::Instant;

/// Fleet sizes the acceptance bar names: lone session, small fleet,
/// saturated fleet.
const FLEET_SIZES: [usize; 3] = [1, 8, 64];

/// Generate `n` traces in look-alike pairs: sessions 2k and 2k+1 share
/// a seed (identical exploration), so half the fleet re-asks a question
/// someone else is already speculating on.
fn fleet_traces(n: usize, queries: usize, base_seed: u64) -> Vec<Trace> {
    let cfg = UserModelConfig { queries, ..Default::default() };
    let model = UserModel::new(cfg, specdb_tpch::ExploreDomain::tpch());
    (0..n)
        .map(|i| model.generate(&format!("s{i}"), base_seed + (i / 2) as u64))
        .collect()
}

struct FleetRun {
    sessions: usize,
    go_latency: Vec<f64>,
    shared_hits: u64,
    artifact_uses: u64,
    reuse: f64,
    admitted: u64,
    denied: u64,
    preempted: u64,
    wall_secs: f64,
}

fn run_fleet(base: &Database, traces: &[Trace], config: &MultiSessionConfig) -> FleetRun {
    let mut db = base.clone();
    let start = Instant::now();
    let out = replay_multi_session(&mut db, traces, config).expect("multi-session replay");
    let wall_secs = start.elapsed().as_secs_f64();
    FleetRun {
        sessions: traces.len(),
        go_latency: out.go_latency_secs(),
        shared_hits: out.shared_hits,
        artifact_uses: out.artifact_uses,
        reuse: out.cross_session_reuse(),
        admitted: out.admitted,
        denied: out.denied,
        preempted: out.preempted,
        wall_secs,
    }
}

fn write_json(path: &std::path::Path, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("multi_session: cannot write {}: {e}", path.display());
    } else {
        eprintln!("multi_session: wrote {}", path.display());
    }
}

fn main() {
    let smoke = std::env::var("SPECDB_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let spec_ds = if smoke {
        DatasetSpec::tiny()
    } else {
        DatasetSpec::paper_trio(
            std::env::var("SPECDB_DIVISOR").ok().and_then(|v| v.parse().ok()).unwrap_or(50),
        )
        .remove(0)
    };
    let queries = if smoke { 4 } else { 12 };
    let governor = GovernorConfig::from_env();

    eprintln!(
        "multi_session: dataset {} ({} MB), {} queries/session, budget {}, preempt {}{}",
        spec_ds.label,
        spec_ds.actual_mb(),
        queries,
        governor.max_outstanding,
        governor.preempt,
        if smoke { " [smoke]" } else { "" }
    );
    let base = build_base_db(&spec_ds).expect("base db");
    let config =
        MultiSessionConfig { governor: governor.clone(), ..MultiSessionConfig::speculative() };

    let mut runs = Vec::new();
    for &n in &FLEET_SIZES {
        eprintln!("multi_session: replaying fleet of {n}...");
        let traces = fleet_traces(n, queries, 9000);
        let run = run_fleet(&base, &traces, &config);
        println!(
            "N={:<3} GO p50 {:.3}s p95 {:.3}s p99 {:.3}s | shared hits {:>4} (reuse {:.1}%) | \
             admitted {} denied {} preempted {} | {:.1}s wall",
            run.sessions,
            quantile(&run.go_latency, 0.50),
            quantile(&run.go_latency, 0.95),
            quantile(&run.go_latency, 0.99),
            run.shared_hits,
            run.reuse * 100.0,
            run.admitted,
            run.denied,
            run.preempted,
            run.wall_secs,
        );
        if n >= 8 {
            assert!(
                run.shared_hits > 0,
                "a fleet of {n} look-alike pairs must produce cross-session shared hits"
            );
        }
        runs.push(run);
    }

    let fleets: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{ \"sessions\": {}, \"go_latency_secs\": {}, \"queries\": {}, \
                 \"shared_hits\": {}, \"artifact_uses\": {}, \"cross_session_reuse\": {:.4}, \
                 \"admitted\": {}, \"denied\": {}, \"preempted\": {}, \"wall_secs\": {:.2} }}",
                r.sessions,
                quantiles_json(&r.go_latency),
                r.go_latency.len(),
                r.shared_hits,
                r.artifact_uses,
                r.reuse,
                r.admitted,
                r.denied,
                r.preempted,
                r.wall_secs,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"multi_session\",\n  \"smoke\": {smoke},\n  \
         \"dataset\": \"{}\",\n  \"dataset_mb\": {},\n  \"queries_per_session\": {queries},\n  \
         \"governor\": {{ \"max_outstanding\": {}, \"preempt\": {}, \"min_benefit_rate\": {} }},\n  \
         \"fleets\": [\n{}\n  ]\n}}\n",
        spec_ds.label,
        spec_ds.actual_mb(),
        governor.max_outstanding,
        governor.preempt,
        governor.min_benefit_rate,
        fleets.join(",\n"),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_multi_session.json");
    write_json(&path, &json);
}
