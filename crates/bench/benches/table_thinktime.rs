//! Section 5 tables: user querying behaviour.
//!
//! Regenerates the paper's think-time distribution table
//! (min/avg/max/25%/50%/75% of query-formulation duration) and the
//! query-structure statistics (queries per trace, selections and
//! relations per query, part persistence) from the synthetic cohort, so
//! the calibration of the user model against the paper's reported human
//! behaviour is directly checkable.

use specdb_bench::BenchEnv;
use specdb_trace::{TraceStats, UserModel};

fn main() {
    let mut env = BenchEnv::from_env();
    // This table is cheap: always use the paper's full cohort shape.
    env.users = env.users.max(15);
    env.queries = env.queries.max(42);
    let cfg = specdb_trace::UserModelConfig { queries: env.queries, ..Default::default() };
    let traces = UserModel::new(cfg, specdb_tpch::ExploreDomain::tpch())
        .generate_cohort(env.users, env.seed);
    let stats = TraceStats::compute(&traces);

    println!("=== Section 5: query formulation duration (seconds) ===");
    println!("paper:     min=1   avg=28   max=680   25%=4   50%=11   75%=29");
    let t = &stats.think_time;
    println!(
        "measured:  min={:.0}   avg={:.0}   max={:.0}   25%={:.0}   50%={:.0}   75%={:.0}",
        t.min, t.avg, t.max, t.p25, t.p50, t.p75
    );
    println!();
    println!("=== Section 5: query structure ===");
    println!("paper:     {} queries/trace, 1-2 selections/query, 4 relations/query,", 42);
    println!("           selection persists ~3 queries, join ~10");
    println!(
        "measured:  {:.1} queries/trace, {:.2} selections/query, {:.2} relations/query,",
        stats.queries_per_trace, stats.selections_per_query, stats.relations_per_query
    );
    println!(
        "           selection persists {:.2} queries, join {:.2}",
        stats.selection_persistence, stats.join_persistence
    );
}
