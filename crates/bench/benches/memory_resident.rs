//! Memory-resident databases (§6.1, closing remark).
//!
//! The paper: "our results show that materializations can reduce
//! execution time significantly even if they do not reduce I/O cost, and
//! thus speculation continues to outperform normal query processing when
//! the database is memory resident."
//!
//! This bench reruns the single-user experiment with the buffer pool
//! sized to hold the entire dataset (everything is warm after the first
//! touch): the only thing left for a materialization to save is CPU —
//! join and predicate work already performed at build time. Speculation
//! should still win, by less than in the I/O-bound runs.

use specdb_bench::{run_paired, BenchEnv};
use specdb_exec::Database;
use specdb_sim::replay::ReplayConfig;
use specdb_sim::DatasetSpec;
use specdb_tpch::{generate_into, TpchConfig};

fn main() {
    let env = BenchEnv::from_env();
    let traces = env.cohort();
    println!(
        "memory-resident experiment: {} traces x {} queries, divisor {}",
        env.users, env.queries, env.divisor
    );
    println!();
    println!("{:<8} {:>14} {:>8} {:>10}", "dataset", "improvement%", "issued", "completed");
    for spec in env.specs() {
        // Pool = 4x the dataset: nothing is ever evicted.
        let mem_spec = DatasetSpec { buffer_mb: spec.nominal_mb * 4, ..spec.clone() };
        eprintln!("[{}] generating memory-resident base...", spec.label);
        let mut db = Database::new(mem_spec.db_config());
        generate_into(&mut db, &TpchConfig::new(mem_spec.actual_mb()).seed(mem_spec.seed))
            .expect("generate");
        // Pre-warm: one pass over every table so replays measure pure CPU.
        for t in specdb_tpch::TPCH_TABLES {
            let g = specdb_query::QueryGraph::relation(t);
            db.execute_discard(&specdb_query::Query::star(g)).expect("warm");
        }
        let cohort = run_paired(
            &db,
            &traces,
            &ReplayConfig::normal().warm(),
            &ReplayConfig::speculative().warm(),
        );
        println!(
            "{:<8} {:>14.1} {:>8} {:>10}",
            spec.label,
            cohort.improvement_pct(),
            cohort.issued(),
            cohort.completed()
        );
    }
    println!();
    println!("paper's claim: speculation keeps winning without I/O savings (CPU-only benefit).");
}
