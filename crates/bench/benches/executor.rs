//! Executor throughput: row-at-a-time vs row-major batches vs columnar.
//!
//! PR 2 left replay wall-clock dominated by query execution; PR 3 added
//! the row-major batch pipeline, and PR 4 made it columnar
//! (`specdb_exec::batch`): scans forward cached column segments
//! zero-copy, filters build selection vectors, projection is column
//! pointer selection, and index-nested-loop joins probe batch-at-a-time.
//! This bench runs a memory-resident TPC-H workload (scans, joins,
//! aggregates) through all three [`ExecMode`]s plus a fourth arm running
//! the columnar pipeline with four morsel workers
//! (`Database::set_threads(4)`, PR 5) and a fifth running it with
//! segment encoding disabled (`Database::set_encoding(false)`, PR 7 —
//! plain segments, no dictionaries or zone maps) — the batch arms with
//! every table's segments pinned — verifying along the way that rows and
//! virtual-time accounting are bit-identical across modes, thread
//! counts, and encodings (all of them wall-clock optimizations only).
//! The artifact also records the encoded-segment compression ratio and
//! the number of pages zone maps let the scans skip.
//!
//! Results land in `BENCH_executor.json` at the repository root so CI
//! can archive them; the criterion-style stderr lines participate in
//! `--save-baseline` / `--baseline` regression tracking. Set
//! `SPECDB_BENCH_SMOKE=1` for a seconds-scale smoke run — in smoke mode
//! the process exits non-zero if the columnar path is slower than the
//! row baseline, which is the CI regression gate.

use criterion::{black_box, Criterion};
use specdb_bench::BenchEnv;
use specdb_exec::{Database, ExecMode};
use specdb_query::{parse_sql, Query};
use specdb_sim::{build_base_db, DatasetSpec};
use specdb_storage::ResourceDemand;
use std::time::Instant;

/// The measured workload: decode-heavy scans, a hash join, and grouped
/// aggregates over the TPC-H subset. The first and third queries are
/// projection-narrow (the columnar layout's best case: two of eight and
/// one of nine columns survive the scan).
const WORKLOAD: &[&str] = &[
    "SELECT c_name, c_acctbal FROM customer WHERE c_nation = 'FRANCE'",
    "SELECT * FROM customer WHERE c_acctbal >= 9500",
    "SELECT o_totalprice FROM orders WHERE o_orderpriority = 1",
    "SELECT count(*), avg(o_totalprice), max(o_totalprice) FROM orders \
     WHERE o_orderpriority = 1",
    "SELECT customer.c_name, orders.o_totalprice FROM customer, orders \
     WHERE orders.o_custkey = customer.c_custkey AND c_nation = 'FRANCE' \
     AND o_orderpriority <= 2",
    // Clustered-predicate scan: c_custkey is loaded in key order, so the
    // zone maps of every page past the first prove `< 100` matches
    // nothing — the page-skip fast path (PR 7) in its best case.
    "SELECT c_name FROM customer WHERE c_custkey < 100",
];

fn workload(db: &Database) -> Vec<Query> {
    WORKLOAD
        .iter()
        .map(|sql| parse_sql(db, sql).unwrap_or_else(|e| panic!("{sql}: {e:?}")))
        .collect()
}

/// Run every workload query, returning total rows and summed demand
/// (compared across arms to assert the modes behave identically).
fn run_workload(db: &mut Database, qs: &[Query]) -> (u64, ResourceDemand) {
    let mut rows = 0u64;
    let mut demand = ResourceDemand::default();
    for q in qs {
        let out = db.execute_discard(q).expect("execute");
        rows += out.row_count;
        demand = demand.plus(&out.demand);
    }
    (rows, demand)
}

/// Mean wall-clock microseconds per workload query over `passes` passes.
fn time_arm(db: &mut Database, qs: &[Query], passes: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_workload(db, qs));
    }
    start.elapsed().as_secs_f64() * 1e6 / (passes * qs.len()) as f64
}

/// Per-query wall times over `passes` passes, in microseconds — one
/// sample per (pass, query), for exact p50/p95/p99 in the artifact.
fn sample_arm(db: &mut Database, qs: &[Query], passes: usize) -> Vec<f64> {
    let mut samples = Vec::with_capacity(passes * qs.len());
    for _ in 0..passes {
        for q in qs {
            let start = Instant::now();
            black_box(run_workload(db, std::slice::from_ref(q)));
            samples.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    samples
}

fn write_json(path: &std::path::Path, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("executor: cannot write {}: {e}", path.display());
    } else {
        eprintln!("executor: wrote {}", path.display());
    }
}

/// The three measured pipelines, in bench-progression order.
const MODES: [ExecMode; 3] = [ExecMode::Row, ExecMode::BatchRow, ExecMode::Columnar];

fn main() {
    let smoke = std::env::var("SPECDB_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let env = BenchEnv::from_env();
    let spec_ds =
        if smoke { DatasetSpec::tiny() } else { DatasetSpec::paper_trio(env.divisor).remove(0) };
    let passes = if smoke { 10 } else { 50 };

    eprintln!(
        "executor: dataset {} ({} MB), {} passes{}",
        spec_ds.label,
        spec_ds.actual_mb(),
        passes,
        if smoke { " [smoke]" } else { "" }
    );
    let base = build_base_db(&spec_ds).expect("base db");
    // One arm per mode. The memory-resident fast path under test: pin
    // every table's decoded column segments for the batch arms
    // (materialized speculation results get this automatically from
    // `Database::materialize`); the row path never reads the cache.
    let mut arms: Vec<Database> = MODES
        .iter()
        .map(|&mode| {
            let mut db = base.clone();
            db.set_exec_mode(mode);
            db.set_encoding(true);
            if mode != ExecMode::Row {
                for t in specdb_tpch::TPCH_TABLES {
                    db.cache_table_segments(t).expect("cache segments");
                }
            }
            db
        })
        .collect();
    // Fourth arm: the columnar pipeline with four morsel workers
    // (bit-identical to serial columnar by contract; wall-clock only).
    {
        let mut db = arms.last().expect("columnar arm").clone();
        db.set_threads(4);
        arms.push(db);
    }
    // Fifth arm: serial columnar with segment encoding off — plain
    // `ColumnVec` segments, no dictionaries, no zone maps. The baseline
    // the encoded kernels must beat on dictionary-friendly scans.
    {
        let mut db = base.clone();
        db.set_exec_mode(ExecMode::Columnar);
        db.set_encoding(false);
        for t in specdb_tpch::TPCH_TABLES {
            db.cache_table_segments(t).expect("cache segments");
        }
        arms.push(db);
    }
    let qs = workload(&base);

    // Warm every arm (buffer pool + segment cache) and hold them to the
    // equivalence contract: same rows, same virtual-time accounting.
    let warm: Vec<(u64, ResourceDemand)> =
        arms.iter_mut().map(|db| run_workload(db, &qs)).collect();
    let identical = warm.iter().all(|w| *w == warm[0]);
    assert!(identical, "executor modes diverged: {warm:?}");
    let seg_pages = arms[2].pool().seg_resident();

    // Storage-format stats, on a dedicated clone of the encoded columnar
    // arm so the metrics observer never perturbs the timed arms: resident
    // encoded vs would-be-plain bytes, and zone-map page skips over one
    // workload pass.
    let (compression_ratio, pages_skipped) = {
        let mut db = arms[2].clone();
        db.set_observer(specdb_obs::Observer::enabled());
        run_workload(&mut db, &qs);
        let snap = db.observer().metrics().snapshot();
        let encoded = db.pool().seg_resident_bytes().max(1);
        let plain = db.pool().seg_resident_plain_bytes();
        (plain as f64 / encoded as f64, snap.counter("exec.pages_skipped"))
    };

    // Criterion lines (participate in --save-baseline / --baseline).
    let labels: Vec<String> = MODES
        .iter()
        .map(|m| m.as_str().replace('-', "_"))
        .chain(["batch_columnar_par4".into(), "batch_columnar_plain".into()])
        .collect();
    let mut c = Criterion::default().sample_size(if smoke { 2 } else { 10 });
    for (db, label) in arms.iter_mut().zip(&labels) {
        c.bench_function(&format!("executor/workload_{label}"), |b| {
            b.iter(|| run_workload(db, &qs))
        });
    }

    // Headline numbers: mean per-query wall-clock per arm, plus raw
    // per-query samples for exact latency quantiles.
    let us: Vec<f64> = arms.iter_mut().map(|db| time_arm(db, &qs, passes)).collect();
    let arm_samples: Vec<Vec<f64>> =
        arms.iter_mut().map(|db| sample_arm(db, &qs, passes)).collect();
    let (row_us, batch_row_us, columnar_us, par4_us, plain_us) =
        (us[0], us[1], us[2], us[3], us[4]);
    let speedup = row_us / columnar_us.max(1e-9);
    let speedup_vs_batch_row = batch_row_us / columnar_us.max(1e-9);
    let par4_speedup = columnar_us / par4_us.max(1e-9);
    let encoded_speedup_vs_plain = plain_us / columnar_us.max(1e-9);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Per-query breakdown (stderr only; helps attribute regressions).
    let mut per_query: Vec<Vec<f64>> = Vec::with_capacity(qs.len());
    for (qi, (q, sql)) in qs.iter().zip(WORKLOAD).enumerate() {
        let per: Vec<f64> = arms
            .iter_mut()
            .map(|db| time_arm(db, std::slice::from_ref(q), passes))
            .collect();
        eprintln!(
            "executor:   q{qi}: row {:7.1} | batch-row {:7.1} | columnar {:7.1} | \
             par4 {:7.1} | plain {:7.1} us ({:.2}x vs row, {:.2}x vs plain)  {}",
            per[0],
            per[1],
            per[2],
            per[3],
            per[4],
            per[0] / per[2].max(1e-9),
            per[4] / per[2].max(1e-9),
            sql
        );
        per_query.push(per);
    }
    // q0 is the dictionary-friendly scan (low-cardinality string
    // equality): the encoded kernel's headline matchup against plain.
    let encoded_q0_speedup = per_query[0][4] / per_query[0][2].max(1e-9);

    println!();
    println!(
        "executor ({} queries x {passes} passes, {seg_pages} segment-cached pages, \
         {cores} cores): row {row_us:.1} | batch-row {batch_row_us:.1} | \
         columnar {columnar_us:.1} | par4 {par4_us:.1} | plain {plain_us:.1} us/query \
         ({speedup:.2}x vs row, {speedup_vs_batch_row:.2}x vs batch-row, \
         par4 {par4_speedup:.2}x vs columnar, encoded {encoded_speedup_vs_plain:.2}x vs plain, \
         compression {compression_ratio:.2}x, {pages_skipped} pages skipped)",
        qs.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"executor\",\n  \"smoke\": {smoke},\n  \
         \"dataset\": \"{}\",\n  \"dataset_mb\": {},\n  \"queries\": {},\n  \"passes\": {passes},\n  \
         \"seg_cached_pages\": {seg_pages},\n  \"host_cores\": {cores},\n  \
         \"us_per_query\": {{ \"row\": {row_us:.3}, \"batch_row\": {batch_row_us:.3}, \
         \"batch_columnar\": {columnar_us:.3}, \"batch_columnar_par4\": {par4_us:.3}, \
         \"batch_columnar_plain\": {plain_us:.3} }},\n  \
         \"us_per_query_quantiles\": {{ \"row\": {}, \"batch_row\": {}, \
         \"batch_columnar\": {}, \"batch_columnar_par4\": {}, \"batch_columnar_plain\": {} }},\n  \
         \"speedup\": {speedup:.3},\n  \"speedup_vs_batch_row\": {speedup_vs_batch_row:.3},\n  \
         \"par4_speedup_vs_columnar\": {par4_speedup:.3},\n  \
         \"encoded_speedup_vs_plain\": {encoded_speedup_vs_plain:.3},\n  \
         \"encoded_q0_speedup_vs_plain\": {encoded_q0_speedup:.3},\n  \
         \"compression_ratio\": {compression_ratio:.3},\n  \"pages_skipped\": {pages_skipped},\n  \
         \"identical\": {identical}\n}}\n",
        spec_ds.label,
        spec_ds.actual_mb(),
        qs.len(),
        specdb_bench::quantiles_json(&arm_samples[0]),
        specdb_bench::quantiles_json(&arm_samples[1]),
        specdb_bench::quantiles_json(&arm_samples[2]),
        specdb_bench::quantiles_json(&arm_samples[3]),
        specdb_bench::quantiles_json(&arm_samples[4]),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_executor.json");
    write_json(&path, &json);

    // CI regression gate: on the smoke workload the columnar path must
    // not be slower than the row baseline, nor meaningfully slower than
    // the row-major batch pipeline it replaced (10% noise allowance).
    if smoke && speedup < 1.0 {
        eprintln!("executor: FAIL — columnar path slower than row path ({speedup:.2}x)");
        std::process::exit(1);
    }
    if smoke && speedup_vs_batch_row < 0.9 {
        eprintln!(
            "executor: FAIL — columnar path regressed vs batch-row ({speedup_vs_batch_row:.2}x)"
        );
        std::process::exit(1);
    }
    // Encoding gate: on the dictionary-friendly scan (q0, string
    // equality over a handful of nations) the encoded kernel must not be
    // slower than the plain columnar baseline (10% noise allowance —
    // per-query smoke timings are short).
    if smoke && encoded_q0_speedup < 0.9 {
        eprintln!(
            "executor: FAIL — encoded scan slower than plain on dictionary-friendly q0 \
             ({encoded_q0_speedup:.2}x)"
        );
        std::process::exit(1);
    }
    // Morsel-parallel gate: only meaningful with real cores to run on —
    // on a single-core host four workers time-slice one CPU and the arm
    // measures pure scheduling overhead (10% noise allowance here too).
    if smoke && cores >= 2 && par4_speedup < 0.9 {
        eprintln!(
            "executor: FAIL — parallel-4 slower than serial columnar \
             ({par4_speedup:.2}x on {cores} cores)"
        );
        std::process::exit(1);
    }
    if cores < 2 {
        eprintln!("executor: note — single-core host, parallel-4 gate skipped");
    }
}
