//! Executor throughput: batch-vectorized vs row-at-a-time execution.
//!
//! PR 2 left replay wall-clock dominated by query execution, so the
//! batch executor (`specdb_exec::batch`) is the next lever: operators
//! exchange 1024-tuple batches, scans fuse filter/project, and hot heap
//! files are served from the decoded segment cache. This bench runs a
//! memory-resident TPC-H workload (scans, joins, aggregates) through
//! both paths — `batch_exec` on with every table's segments pinned, and
//! off — verifying along the way that rows and virtual-time accounting
//! are bit-identical (the batch path is a wall-clock optimization only).
//!
//! Results land in `BENCH_executor.json` at the repository root so CI
//! can archive them; the criterion-style stderr lines participate in
//! `--save-baseline` / `--baseline` regression tracking. Set
//! `SPECDB_BENCH_SMOKE=1` for a seconds-scale smoke run — in smoke mode
//! the process exits non-zero if the batch path is slower than the row
//! path, which is the CI regression gate.

use criterion::{black_box, Criterion};
use specdb_bench::BenchEnv;
use specdb_exec::Database;
use specdb_query::{parse_sql, Query};
use specdb_sim::{build_base_db, DatasetSpec};
use specdb_storage::ResourceDemand;
use std::time::Instant;

/// The measured workload: decode-heavy scans, a hash join, and grouped
/// aggregates over the TPC-H subset.
const WORKLOAD: &[&str] = &[
    "SELECT c_name, c_acctbal FROM customer WHERE c_nation = 'FRANCE'",
    "SELECT * FROM customer WHERE c_acctbal >= 9500",
    "SELECT o_totalprice FROM orders WHERE o_orderpriority = 1",
    "SELECT count(*), avg(o_totalprice), max(o_totalprice) FROM orders \
     WHERE o_orderpriority = 1",
    "SELECT customer.c_name, orders.o_totalprice FROM customer, orders \
     WHERE orders.o_custkey = customer.c_custkey AND c_nation = 'FRANCE' \
     AND o_orderpriority <= 2",
];

fn workload(db: &Database) -> Vec<Query> {
    WORKLOAD
        .iter()
        .map(|sql| parse_sql(db, sql).unwrap_or_else(|e| panic!("{sql}: {e:?}")))
        .collect()
}

/// Run every workload query, returning total rows and summed demand
/// (compared across arms to assert the paths behave identically).
fn run_workload(db: &mut Database, qs: &[Query]) -> (u64, ResourceDemand) {
    let mut rows = 0u64;
    let mut demand = ResourceDemand::default();
    for q in qs {
        let out = db.execute_discard(q).expect("execute");
        rows += out.row_count;
        demand = demand.plus(&out.demand);
    }
    (rows, demand)
}

/// Mean wall-clock microseconds per workload query over `passes` passes.
fn time_arm(db: &mut Database, qs: &[Query], passes: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_workload(db, qs));
    }
    start.elapsed().as_secs_f64() * 1e6 / (passes * qs.len()) as f64
}

fn write_json(path: &std::path::Path, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("executor: cannot write {}: {e}", path.display());
    } else {
        eprintln!("executor: wrote {}", path.display());
    }
}

fn main() {
    let smoke = std::env::var("SPECDB_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let env = BenchEnv::from_env();
    let spec_ds =
        if smoke { DatasetSpec::tiny() } else { DatasetSpec::paper_trio(env.divisor).remove(0) };
    let passes = if smoke { 10 } else { 50 };

    eprintln!(
        "executor: dataset {} ({} MB), {} passes{}",
        spec_ds.label,
        spec_ds.actual_mb(),
        passes,
        if smoke { " [smoke]" } else { "" }
    );
    let base = build_base_db(&spec_ds).expect("base db");
    let mut db_batch = base.clone();
    let mut db_row = base.clone();
    db_row.set_batch_exec(false);
    // The memory-resident fast path under test: pin every table's
    // decoded segments for the batch arm (materialized speculation
    // results get this automatically from `Database::materialize`).
    for t in specdb_tpch::TPCH_TABLES {
        db_batch.cache_table_segments(t).expect("cache segments");
    }
    let qs = workload(&base);

    // Warm both arms (buffer pool + segment cache) and hold them to the
    // equivalence contract: same rows, same virtual-time accounting.
    let warm_batch = run_workload(&mut db_batch, &qs);
    let warm_row = run_workload(&mut db_row, &qs);
    assert_eq!(warm_batch, warm_row, "batch and row paths diverged");
    let identical = warm_batch == warm_row;
    let seg_pages = db_batch.pool().seg_resident();

    // Criterion lines (participate in --save-baseline / --baseline).
    let mut c = Criterion::default().sample_size(if smoke { 2 } else { 10 });
    c.bench_function("executor/workload_batch", |b| b.iter(|| run_workload(&mut db_batch, &qs)));
    c.bench_function("executor/workload_row", |b| b.iter(|| run_workload(&mut db_row, &qs)));

    // Headline numbers: mean per-query wall-clock per arm.
    let batch_us = time_arm(&mut db_batch, &qs, passes);
    let row_us = time_arm(&mut db_row, &qs, passes);
    let speedup = row_us / batch_us.max(1e-9);

    // Per-query breakdown (stderr only; helps attribute regressions).
    for (q, sql) in qs.iter().zip(WORKLOAD) {
        let qb = time_arm(&mut db_batch, std::slice::from_ref(q), passes);
        let qr = time_arm(&mut db_row, std::slice::from_ref(q), passes);
        eprintln!("executor:   {:6.1} vs {:6.1} us ({:.2}x)  {}", qb, qr, qr / qb.max(1e-9), sql);
    }

    println!();
    println!(
        "executor ({} queries x {passes} passes, {seg_pages} segment-cached pages): \
         batch {batch_us:.1} us/query, row {row_us:.1} us/query ({speedup:.2}x)",
        qs.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"executor\",\n  \"smoke\": {smoke},\n  \
         \"dataset\": \"{}\",\n  \"dataset_mb\": {},\n  \"queries\": {},\n  \"passes\": {passes},\n  \
         \"seg_cached_pages\": {seg_pages},\n  \
         \"us_per_query\": {{ \"batch\": {batch_us:.3}, \"row\": {row_us:.3} }},\n  \
         \"speedup\": {speedup:.3},\n  \"identical\": {identical}\n}}\n",
        spec_ds.label,
        spec_ds.actual_mb(),
        qs.len(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_executor.json");
    write_json(&path, &json);

    // CI regression gate: on the smoke workload the batch path must not
    // be slower than the row path.
    if smoke && speedup < 1.0 {
        eprintln!("executor: FAIL — batch path slower than row path ({speedup:.2}x)");
        std::process::exit(1);
    }
}
