//! Depth-n speculation ablation (paper Section 3.3 extension).
//!
//! The paper proves its cost model extends to sequences of future
//! queries: a materialization that persists is amortized across them.
//! This ablation replays the cohort with the extended cost model at
//! depths 1 (the base model), 2, 3, and 5, on the 100 MB dataset. With
//! the cohort's measured selection persistence ≈ 3 queries, deeper
//! speculation should value durable materializations more and win
//! slightly overall.

use specdb_bench::{run_paired, BenchEnv};
use specdb_core::{CostModelConfig, SpeculatorConfig};
use specdb_sim::build_base_db;
use specdb_sim::replay::ReplayConfig;

fn main() {
    let env = BenchEnv::from_env();
    let traces = env.cohort();
    let spec = env.specs().remove(0); // 100MB
    println!(
        "depth-n ablation: {} dataset, {} traces x {} queries, divisor {}",
        spec.label, env.users, env.queries, env.divisor
    );
    eprintln!("generating base database...");
    let base = build_base_db(&spec).expect("base db");
    println!();
    println!(
        "{:<8} {:>12} {:>8} {:>10} {:>10}",
        "depth", "improvement%", "issued", "completed", "collected"
    );
    for depth in [1usize, 2, 3, 5] {
        eprintln!("replaying depth {depth}...");
        let cfg = ReplayConfig {
            speculative: true,
            speculator: SpeculatorConfig {
                cost: CostModelConfig { depth, ..Default::default() },
                ..Default::default()
            },
            ..Default::default()
        };
        let cohort = run_paired(&base, &traces, &ReplayConfig::normal(), &cfg);
        let collected: u64 = cohort.treatment.iter().map(|o| o.collected).sum();
        println!(
            "{:<8} {:>12.1} {:>8} {:>10} {:>10}",
            depth,
            cohort.improvement_pct(),
            cohort.issued(),
            cohort.completed(),
            collected
        );
    }
}
