//! Manipulation-type ablation (paper Sections 3.2 / 4.2).
//!
//! The paper states: "we verified experimentally that query
//! materialization and query rewriting outperform histogram and index
//! creation in terms of reducing query execution time" — but shows no
//! figure. This bench regenerates that comparison: the same cohort is
//! replayed with the manipulation space restricted to each operation
//! type, on the 100 MB dataset.

use specdb_bench::{run_paired, secs, BenchEnv};
use specdb_core::{SpaceConfig, SpeculatorConfig};
use specdb_sim::build_base_db;
use specdb_sim::replay::ReplayConfig;

fn main() {
    let env = BenchEnv::from_env();
    let traces = env.cohort();
    let spec = env.specs().remove(0); // 100MB
    println!(
        "manipulation-type ablation: {} dataset, {} traces x {} queries, divisor {}",
        spec.label, env.users, env.queries, env.divisor
    );
    eprintln!("generating base database...");
    let base = build_base_db(&spec).expect("base db");
    let arms: Vec<(&str, SpaceConfig)> = vec![
        ("staging only", SpaceConfig::staging_only()),
        ("histograms only", SpaceConfig::histograms_only()),
        ("indexes only", SpaceConfig::indexes_only()),
        ("materialization/rewriting", SpaceConfig::default()),
        ("everything", SpaceConfig::everything()),
    ];
    println!();
    println!(
        "{:<28} {:>12} {:>8} {:>10} {:>12}",
        "manipulation space", "improvement%", "issued", "completed", "mean build"
    );
    for (name, space) in arms {
        eprintln!("replaying arm: {name}...");
        let cfg = ReplayConfig {
            speculative: true,
            speculator: SpeculatorConfig { space, ..Default::default() },
            ..Default::default()
        };
        let cohort = run_paired(&base, &traces, &ReplayConfig::normal(), &cfg);
        println!(
            "{:<28} {:>12.1} {:>8} {:>10} {:>12}",
            name,
            cohort.improvement_pct(),
            cohort.issued(),
            cohort.completed(),
            secs(cohort.mean_manipulation())
        );
    }
    println!();
    println!("paper's claim: the materialization-based manipulations dominate.");
}
