//! Figure 7: speculation with three simultaneous users.
//!
//! Three traces replay concurrently against one shared engine with a
//! 96 MB buffer pool (the paper's scale-up for three users) and a
//! processor-sharing disk. The speculator runs the paper's multi-user
//! enumeration strategy — materializations of selection predicates only
//! — to keep the extra load low. Improvement is measured against the
//! same three traces replayed concurrently *without* speculation.
//!
//! Expected shape: clear improvements at 100 MB and 500 MB, noticeably
//! smaller gains and some nontrivial penalties at 1 GB where the server
//! is already saturated.

use specdb_bench::BenchEnv;
use specdb_core::{SpaceConfig, SpeculatorConfig};
use specdb_sim::replay::ReplayConfig;
use specdb_sim::report::pair_runs;
use specdb_sim::report::{bucketize, improvement, render_rows};
use specdb_sim::{build_base_db, replay_multi};

fn main() {
    let env = BenchEnv::from_env();
    let trios: usize = std::env::var("SPECDB_TRIOS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let traces = env.cohort();
    println!(
        "figure 7: {} trios of 3 users x {} queries, divisor {}, 96MB pool",
        trios, env.queries, env.divisor
    );
    let spec_cfg = ReplayConfig {
        speculative: true,
        speculator: SpeculatorConfig { space: SpaceConfig::multi_user(), ..Default::default() },
        ..Default::default()
    };
    let normal_cfg = ReplayConfig { speculative: false, ..spec_cfg.clone() };
    for spec in env.specs() {
        let spec = spec.multi_user();
        eprintln!("[{}] generating base database...", spec.label);
        let base = build_base_db(&spec).expect("base db");
        let mut pairs = Vec::new();
        for trio in 0..trios {
            let start = (trio * 3) % traces.len().max(1);
            let group: Vec<_> =
                (0..3).map(|i| traces[(start + i) % traces.len()].clone()).collect();
            eprintln!("[{}] trio {trio}: normal concurrent replay...", spec.label);
            let mut db_n = base.clone();
            let normal = replay_multi(&mut db_n, &group, &normal_cfg).expect("normal multi");
            drop(db_n);
            eprintln!("[{}] trio {trio}: speculative concurrent replay...", spec.label);
            let mut db_s = base.clone();
            let specr = replay_multi(&mut db_s, &group, &spec_cfg).expect("spec multi");
            drop(db_s);
            for (n, s) in normal.per_user.iter().zip(&specr.per_user) {
                pairs.extend(pair_runs(&n.queries, &s.queries).expect("aligned replays"));
            }
        }
        // The paper re-ranges Figure 7's x-axes for the contended runs:
        // 1-10 s (100 MB), 0-100 s (500 MB), 10-160 s (1 GB).
        let (lo, hi, step) = match spec.label {
            "100MB" => (1.0, 10.0, 1.0),
            "500MB" => (0.0, 100.0, 10.0),
            _ => (10.0, 160.0, 15.0),
        };
        let min_count = if pairs.len() >= 200 { 5 } else { 2 };
        let rows = bucketize(&pairs, lo, hi, step, min_count);
        println!();
        print!(
            "{}",
            render_rows(
                &format!("Figure 7: three simultaneous users, {} dataset", spec.label),
                &rows,
                true,
            )
        );
        println!("   overall: {:+.1}% over {} queries", improvement(&pairs) * 100.0, pairs.len());
    }
}
