//! Whole-query prediction: GO latency with the edit predictor on vs
//! off, on a think-time-heavy exploration where prediction has room to
//! pay off.
//!
//! Long formulations (median ~30 s of think time) give the speculator
//! time to pre-execute top-k predicted completed queries; on GO, exact
//! hits serve instantly and near-misses are salvaged through
//! subsumption rewriting (`MatchMode::Subsume`). Both arms replay the
//! identical traces on the identical database, differing only in the
//! `predict` knob.
//!
//! Reported: p50/p95 GO latency (virtual seconds) per arm, the on/off
//! p50 ratio, exact-prediction and salvage hit rates, and the
//! prediction waste ratio, plus a held-out predictor accuracy section
//! over a train/held-out corpus split. Results land in
//! `BENCH_prediction.json` at the repository root; set
//! `SPECDB_BENCH_SMOKE=1` for a seconds-scale smoke run.

use specdb_bench::{quantile, quantiles_json};
use specdb_core::{Learner, LearnerConfig};
use specdb_exec::{Database, MatchMode};
use specdb_query::{canonical_key, EditOp, PartialQuery};
use specdb_sim::replay::{replay_trace, ReplayConfig};
use specdb_sim::{build_base_db, DatasetSpec};
use specdb_trace::{SplitSummary, Trace, UserModel, UserModelConfig};
use std::time::Instant;

/// Think-time-heavy exploration: the paper's user shape slowed down to
/// a 30 s median formulation, pursuing a single exploration question —
/// the regime where edit sequences repeat enough for the n-gram
/// predictor to anticipate whole queries.
fn think_heavy_model(queries: usize) -> UserModel {
    let cfg =
        UserModelConfig { queries, questions: 1, think_median_secs: 30.0, ..Default::default() };
    UserModel::new(cfg, specdb_tpch::ExploreDomain::tpch())
}

#[derive(Default)]
struct Arm {
    go_latency: Vec<f64>,
    issued: u64,
    predicted_issued: u64,
    predicted_hits: u64,
    salvaged_hits: u64,
    predicted_wasted: u64,
    wall_secs: f64,
}

fn run_arm(base: &Database, traces: &[Trace], predict: bool) -> Arm {
    let mut cfg = ReplayConfig::speculative();
    // Back-to-back pipelining keeps the server busy through the long
    // think gaps — the setting where whole-query pre-execution can
    // follow the one-step manipulation it extends.
    cfg.pipeline = true;
    cfg.speculator.predict = predict;
    cfg.speculator.predict_topk = 3;
    let start = Instant::now();
    let mut arm = Arm::default();
    for trace in traces {
        let mut db = base.clone();
        db.set_match_mode(MatchMode::Subsume);
        let out = replay_trace(&mut db, trace, &cfg).expect("replay");
        arm.go_latency.extend(out.queries.iter().map(|q| q.elapsed.as_secs_f64()));
        arm.issued += out.issued;
        arm.predicted_issued += out.predicted_issued;
        arm.predicted_hits += out.predicted_hits;
        arm.salvaged_hits += out.salvaged_hits;
        arm.predicted_wasted += out.predicted_wasted;
    }
    arm.wall_secs = start.elapsed().as_secs_f64();
    arm
}

/// Held-out top-k hit rate of the standalone predictor (no database):
/// at the instant before each GO, is the final query's canonical key in
/// the top-k predicted completions?
fn held_out_accuracy(model: &UserModel, train: usize, held_out: usize, k: usize) -> (f64, usize) {
    let split = model.generate_split(train, held_out, 60123);
    let mut learner = Learner::new(LearnerConfig::default());
    for t in &split.train {
        for f in t.formulations() {
            let ops: Vec<EditOp> = f.edits.iter().map(|te| te.op.clone()).collect();
            learner.train_predictor(&ops);
        }
    }
    let (mut hits, mut total) = (0usize, 0usize);
    for t in &split.held_out {
        let mut pq = PartialQuery::new();
        let mut hist: Vec<EditOp> = Vec::new();
        for te in &t.edits {
            if te.op.is_go() {
                let final_key = canonical_key(pq.graph());
                total += 1;
                let preds = learner.predictor().predict(&hist, pq.graph(), k);
                if preds.iter().any(|(g, _)| canonical_key(g) == final_key) {
                    hits += 1;
                }
                hist.clear();
            } else {
                hist.push(te.op.clone());
            }
            pq.apply(&te.op);
        }
    }
    eprintln!("prediction: {}", SplitSummary::of(&split).render());
    (hits as f64 / total.max(1) as f64, total)
}

fn write_json(path: &std::path::Path, body: &str) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("prediction: cannot write {}: {e}", path.display());
    } else {
        eprintln!("prediction: wrote {}", path.display());
    }
}

fn main() {
    let smoke = std::env::var("SPECDB_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let spec_ds = if smoke {
        DatasetSpec::tiny()
    } else {
        DatasetSpec::paper_trio(
            std::env::var("SPECDB_DIVISOR").ok().and_then(|v| v.parse().ok()).unwrap_or(50),
        )
        .remove(0)
    };
    // The predictor trains online within each trace, so formulations per
    // user must clear its cold start (~15 GOs before predictions fire)
    // with enough warm GOs left to move the median.
    let (queries, users) = if smoke { (60, 2) } else { (60, 5) };
    let model = think_heavy_model(queries);
    let traces: Vec<Trace> =
        (0..users).map(|i| model.generate(&format!("p{i}"), 7000 + i as u64)).collect();

    eprintln!(
        "prediction: dataset {} ({} MB), {} users x {} queries, think-heavy{}",
        spec_ds.label,
        spec_ds.actual_mb(),
        users,
        queries,
        if smoke { " [smoke]" } else { "" }
    );
    let base = build_base_db(&spec_ds).expect("base db");

    let off = run_arm(&base, &traces, false);
    let on = run_arm(&base, &traces, true);

    let p50_off = quantile(&off.go_latency, 0.50);
    let p50_on = quantile(&on.go_latency, 0.50);
    let ratio = if p50_off > 0.0 { p50_on / p50_off } else { f64::NAN };
    let gos = on.go_latency.len() as f64;
    let exact_rate = on.predicted_hits as f64 / gos;
    let salvage_rate = on.salvaged_hits as f64 / gos;
    let waste = if on.predicted_issued > 0 {
        on.predicted_wasted as f64 / on.predicted_issued as f64
    } else {
        0.0
    };
    let (top3, held_out_gos) = held_out_accuracy(&model, 8, 2, 3);

    for (label, arm) in [("predict=0", &off), ("predict=1", &on)] {
        println!(
            "{label}  GO p50 {:.3}s p95 {:.3}s | issued {} predicted {} | {:.1}s wall",
            quantile(&arm.go_latency, 0.50),
            quantile(&arm.go_latency, 0.95),
            arm.issued,
            arm.predicted_issued,
            arm.wall_secs,
        );
    }
    println!(
        "p50 ratio {ratio:.3} | exact hits {} ({:.1}%) salvaged {} ({:.1}%) | \
         waste {:.1}% | held-out top-3 {:.1}% over {held_out_gos} GOs",
        on.predicted_hits,
        exact_rate * 100.0,
        on.salvaged_hits,
        salvage_rate * 100.0,
        waste * 100.0,
        top3 * 100.0,
    );

    assert!(
        on.predicted_hits + on.salvaged_hits > 0,
        "prediction must land exact or salvaged hits (gate)"
    );
    assert!(
        ratio <= 0.7,
        "predict=1 p50 GO latency must be <= 0.7x the predict=0 baseline, got {ratio:.3}"
    );

    let arm_json = |arm: &Arm| {
        format!(
            "{{ \"go_latency_secs\": {}, \"queries\": {}, \"issued\": {}, \
             \"predicted_issued\": {}, \"predicted_hits\": {}, \"salvaged_hits\": {}, \
             \"predicted_wasted\": {}, \"wall_secs\": {:.2} }}",
            quantiles_json(&arm.go_latency),
            arm.go_latency.len(),
            arm.issued,
            arm.predicted_issued,
            arm.predicted_hits,
            arm.salvaged_hits,
            arm.predicted_wasted,
            arm.wall_secs,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"prediction\",\n  \"smoke\": {smoke},\n  \"dataset\": \"{}\",\n  \
         \"dataset_mb\": {},\n  \"users\": {users},\n  \"queries_per_user\": {queries},\n  \
         \"predict_off\": {},\n  \"predict_on\": {},\n  \"p50_ratio\": {ratio:.4},\n  \
         \"exact_hit_rate\": {exact_rate:.4},\n  \"salvage_hit_rate\": {salvage_rate:.4},\n  \
         \"prediction_waste_ratio\": {waste:.4},\n  \"held_out_top3\": {top3:.4}\n}}\n",
        spec_ds.label,
        spec_ds.actual_mb(),
        arm_json(&off),
        arm_json(&on),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_prediction.json");
    write_json(&path, &json);
}
