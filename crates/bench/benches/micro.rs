//! Criterion micro-benchmarks for the substrate hot paths.
//!
//! These are not paper artefacts; they guard the performance of the
//! pieces every experiment leans on: page codec, buffer pool, histogram
//! estimation, graph algebra, optimizer planning, executor joins, and
//! the speculator's decision loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use specdb_catalog::Histogram;
use specdb_core::{Speculator, UniformProfile};
use specdb_exec::{Database, DatabaseConfig};
use specdb_query::{canonical_key, CompareOp, Join, Predicate, Query, QueryGraph, Selection};
use specdb_storage::{AccessKind, BufferPool, Page, PageId, Tuple, Value, VirtualTime};
use specdb_tpch::{generate_into, TpchConfig};

fn bench_page_codec(c: &mut Criterion) {
    let tuple = Tuple::new(vec![
        Value::Int(42),
        Value::Str("supplier-00042".into()),
        Value::Float(1234.56),
        Value::Int(7),
    ]);
    let encoded = tuple.encode();
    c.bench_function("tuple_encode", |b| b.iter(|| black_box(&tuple).encode()));
    c.bench_function("tuple_decode", |b| b.iter(|| Tuple::decode(black_box(&encoded)).unwrap()));
    c.bench_function("page_fill", |b| {
        b.iter(|| {
            let mut p = Page::new();
            while p.insert(black_box(&encoded)).unwrap().is_some() {}
            p.live_count()
        })
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut pool = BufferPool::new(256);
    let f = pool.create_file();
    for i in 0..512u32 {
        let mut p = Page::new();
        p.insert(&[0u8; 64]).unwrap();
        pool.put_page(PageId::new(f, i), p).unwrap();
    }
    c.bench_function("buffer_hit", |b| {
        // Page 511 was written last and stays resident.
        b.iter(|| pool.read_page(PageId::new(f, 511), AccessKind::Random).unwrap())
    });
    c.bench_function("buffer_miss_evict", |b| {
        let mut i = 0u32;
        b.iter(|| {
            // Cycle over 2x capacity: every read misses and evicts.
            let page_no = (i * 97) % 512;
            i = i.wrapping_add(1);
            pool.read_page(PageId::new(f, page_no), AccessKind::Sequential).unwrap()
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let values: Vec<Value> = (0..50_000).map(|i| Value::Int((i * 37) % 5000)).collect();
    c.bench_function("histogram_build_50k", |b| b.iter(|| Histogram::build(black_box(&values))));
    let h = Histogram::build(&values);
    c.bench_function("histogram_estimate", |b| {
        b.iter(|| h.fraction_lt(black_box(&Value::Int(2500))))
    });
}

fn figure2_graph() -> QueryGraph {
    let mut g = QueryGraph::new();
    g.add_join(Join::new("R", "a", "S", "a"));
    g.add_join(Join::new("S", "b", "W", "b"));
    g.add_selection(Selection::new("R", Predicate::new("c", CompareOp::Gt, 10i64)));
    g.add_selection(Selection::new("W", Predicate::new("d", CompareOp::Lt, 2000i64)));
    g
}

fn bench_graph_algebra(c: &mut Criterion) {
    let g = figure2_graph();
    let sub = g.selection_subgraph(g.selections().next().unwrap());
    c.bench_function("graph_containment", |b| b.iter(|| black_box(&g).contains(&sub)));
    c.bench_function("graph_union", |b| b.iter(|| black_box(&g).union(&sub)));
    c.bench_function("graph_canonical_key", |b| b.iter(|| canonical_key(black_box(&g))));
}

fn tpch_db() -> Database {
    let mut db = Database::new(DatabaseConfig::with_buffer_pages(2048));
    generate_into(&mut db, &TpchConfig::new(2)).unwrap();
    db
}

fn tpch_join_query() -> Query {
    let mut g = QueryGraph::new();
    g.add_join(Join::new("orders", "o_custkey", "customer", "c_custkey"));
    g.add_join(Join::new("lineitem", "l_orderkey", "orders", "o_orderkey"));
    g.add_selection(Selection::new(
        "customer",
        Predicate::new("c_nation", CompareOp::Eq, "FRANCE"),
    ));
    Query::star(g)
}

fn bench_optimizer_and_executor(c: &mut Criterion) {
    let mut db = tpch_db();
    let q = tpch_join_query();
    c.bench_function("optimizer_plan_3way", |b| {
        b.iter(|| db.estimate_query_time(black_box(&q)).unwrap())
    });
    c.bench_function("execute_3way_join", |b| {
        b.iter(|| db.execute_discard(black_box(&q)).unwrap().row_count)
    });
}

fn bench_observer_overhead(c: &mut Criterion) {
    // The same buffer-pool hot loop under each observability mode. The
    // disabled observer must be indistinguishable from the seed's
    // instrumentation-free pool; the enabled-metrics mode buys counters
    // for one relaxed atomic per access.
    let build_pool = || {
        let mut pool = BufferPool::new(256);
        let f = pool.create_file();
        for i in 0..512u32 {
            let mut p = Page::new();
            p.insert(&[0u8; 64]).unwrap();
            pool.put_page(PageId::new(f, i), p).unwrap();
        }
        (pool, f)
    };
    let (mut pool, f) = build_pool();
    c.bench_function("buffer_hit_obs_disabled", |b| {
        b.iter(|| pool.read_page(PageId::new(f, 511), AccessKind::Random).unwrap())
    });
    let (mut pool, f) = build_pool();
    pool.set_observer(specdb_obs::Observer::enabled());
    c.bench_function("buffer_hit_obs_metrics", |b| {
        b.iter(|| pool.read_page(PageId::new(f, 511), AccessKind::Random).unwrap())
    });
    let (mut pool, f) = build_pool();
    pool.set_observer(
        specdb_obs::Observer::enabled()
            .with_sink(std::sync::Arc::new(specdb_obs::MemorySink::new())),
    );
    c.bench_function("buffer_hit_obs_events", |b| {
        b.iter(|| pool.read_page(PageId::new(f, 511), AccessKind::Random).unwrap())
    });
}

fn bench_speculator_decide(c: &mut Criterion) {
    let db = tpch_db();
    let speculator = Speculator::default();
    let profile = UniformProfile { p: 0.8, think_mean_secs: 28.0 };
    let partial = tpch_join_query().graph;
    c.bench_function("speculator_decide", |b| {
        b.iter(|| speculator.decide(black_box(&partial), &db, &profile, VirtualTime::ZERO))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_page_codec,
        bench_buffer_pool,
        bench_histogram,
        bench_graph_algebra,
        bench_optimizer_and_executor,
        bench_observer_overhead,
        bench_speculator_decide
}
criterion_main!(benches);
