//! Figures 4 & 5 and the Section 6.1 headline numbers.
//!
//! One cohort replay per dataset size (100 MB / 500 MB / 1 GB, 32 MB
//! buffer pool, single user) yields all three artefacts the paper
//! derives from those runs:
//!
//! * **Figure 4** — average improvement per execution-time bucket,
//! * **Figure 5** — max improvement / max penalty per bucket,
//! * **Section 6.1 text** — overall average improvement per size
//!   (paper: 42% / 28% / 20%), mean materialization time (6 s / 9 s /
//!   10 s), and non-completion rate (17% / 25% / 30%).

use specdb_bench::{render_panel, run_paired, secs, BenchEnv};
use specdb_sim::build_base_db;
use specdb_sim::replay::ReplayConfig;

fn main() {
    let env = BenchEnv::from_env();
    let traces = env.cohort();
    println!(
        "single-user experiments: {} traces x {} queries, divisor {}",
        env.users, env.queries, env.divisor
    );
    let paper = [("100MB", 42.0, 6.0, 17.0), ("500MB", 28.0, 9.0, 25.0), ("1GB", 20.0, 10.0, 30.0)];
    let mut headline = Vec::new();
    for spec in env.specs() {
        eprintln!("[{}] generating base database...", spec.label);
        let base = build_base_db(&spec).expect("base db");
        eprintln!("[{}] replaying cohort (normal vs speculative)...", spec.label);
        let cohort =
            run_paired(&base, &traces, &ReplayConfig::normal(), &ReplayConfig::speculative());
        println!();
        println!(
            "{}",
            render_panel(
                &format!("Figure 4: average improvement, {} dataset", spec.label),
                &cohort.pairs,
                spec.label,
                false,
            )
        );
        println!(
            "{}",
            render_panel(
                &format!("Figure 5: max improvement / max penalty, {} dataset", spec.label),
                &cohort.pairs,
                spec.label,
                true,
            )
        );
        headline.push((spec.label, cohort));
    }
    println!();
    println!("=== Section 6.1 headline numbers ===");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "dataset", "paper avg%", "avg%", "paper mat", "mat avg", "paper !compl%", "!compl%"
    );
    for ((label, cohort), (_, p_imp, p_mat, p_nc)) in headline.iter().zip(paper.iter()) {
        println!(
            "{:<8} {:>12.0} {:>12.1} {:>11}s {:>12} {:>14.0} {:>14.1}",
            label,
            p_imp,
            cohort.improvement_pct(),
            p_mat,
            secs(cohort.mean_manipulation()),
            p_nc,
            cohort.non_completion_pct()
        );
    }
}
