//! Figure 6: speculation vs. materialized views vs. their combination.
//!
//! Three treatments per dataset size, all reported as improvement over
//! normal processing without views (the paper's Section 6.2):
//!
//! * **Views** — normal processing on a database where the join of each
//!   possible (connected) subset of the relations is pre-materialized,
//! * **Spec** — speculative processing, no pre-materialized views,
//! * **Spec+Views** — both.
//!
//! Expected shape: speculation wins on shorter queries, views on longer
//! ones, and the combination wins nearly everywhere. The subset size is
//! capped (default 4; `SPECDB_MAX_SUBSET` overrides) standing in for the
//! storage constraints the paper says would normally bound the view set.
//!
//! This figure runs with the hybrid hash-join *spill model enabled* (all
//! arms, including the baseline): the value of pre-joined views hinges
//! on multi-way joins being expensive at a 32 MB pool, which is the
//! memory-overflow regime the paper's Oracle testbed was in for its
//! longest queries.

use specdb_bench::{paper_buckets, BenchEnv};
use specdb_sim::replay::{replay_trace, ReplayConfig};
use specdb_sim::report::{bucketize, improvement, pair_runs, PairedRun};
use specdb_sim::{build_base_db_spilling, materialize_subset_joins_up_to};

fn main() {
    let env = BenchEnv::from_env();
    let max_subset: usize = std::env::var("SPECDB_MAX_SUBSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let traces = env.cohort();
    println!(
        "figure 6: {} traces x {} queries, divisor {}, subset cap {}",
        env.users, env.queries, env.divisor, max_subset
    );
    for spec in env.specs() {
        eprintln!("[{}] generating bases...", spec.label);
        let base_plain = build_base_db_spilling(&spec).expect("base db");
        let mut base_views = base_plain.clone();
        let created = materialize_subset_joins_up_to(&mut base_views, max_subset).expect("views");
        // Pre-materialized views are the *DBMS's* to use or ignore: Oracle's
        // optimizer picked them cost-based in the paper. (Forcing raw
        // subset-join scans would be catastrophic and is not what the
        // paper measured.) The speculator's own materializations on this
        // base therefore run in the paper's "query materialization"
        // flavour rather than "query rewriting".
        base_views.set_view_mode(specdb_exec::ViewMode::CostBased);
        eprintln!("[{}] {} subset-join views materialized", spec.label, created);
        let arms: [(&str, &specdb_exec::Database, ReplayConfig); 3] = [
            ("Views", &base_views, ReplayConfig::normal()),
            ("Spec", &base_plain, ReplayConfig::speculative()),
            ("Spec+Views", &base_views, ReplayConfig::speculative()),
        ];
        let mut arm_pairs: Vec<(&str, Vec<PairedRun>)> =
            arms.iter().map(|(n, _, _)| (*n, Vec::new())).collect();
        for trace in &traces {
            let mut db = base_plain.clone();
            let baseline = replay_trace(&mut db, trace, &ReplayConfig::normal()).expect("baseline");
            drop(db);
            for (i, (_, base, cfg)) in arms.iter().enumerate() {
                let mut db = (*base).clone();
                let t = replay_trace(&mut db, trace, cfg).expect("arm replay");
                arm_pairs[i]
                    .1
                    .extend(pair_runs(&baseline.queries, &t.queries).expect("aligned replays"));
            }
        }
        println!();
        println!("## Figure 6: {} dataset (improvement % over normal, no views)", spec.label);
        let (lo, hi, step) = paper_buckets(spec.label);
        let min_count = if traces.len() * env.queries >= 200 { 5 } else { 2 };
        // Align the three series on the bucket grid.
        println!("{:>12} {:>10} {:>10} {:>12}", "bucket(s)", "Views%", "Spec%", "Spec+Views%");
        let series: Vec<Vec<specdb_sim::report::BucketRow>> = arm_pairs
            .iter()
            .map(|(_, pairs)| bucketize(pairs, lo, hi, step, min_count))
            .collect();
        let mut edges: Vec<f64> =
            series.iter().flat_map(|rows| rows.iter().map(|r| r.bucket.lo)).collect();
        edges.sort_by(|a, b| a.total_cmp(b));
        edges.dedup();
        for edge in edges {
            let cell = |rows: &[specdb_sim::report::BucketRow]| {
                rows.iter()
                    .find(|r| (r.bucket.lo - edge).abs() < 1e-9)
                    .map(|r| format!("{:.1}", r.improvement_pct))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "{:>5.0}-{:<6.0} {:>10} {:>10} {:>12}",
                edge,
                edge + step,
                cell(&series[0]),
                cell(&series[1]),
                cell(&series[2]),
            );
        }
        for (name, pairs) in &arm_pairs {
            println!(
                "   overall {:<11} {:+.1}% over {} queries",
                format!("{name}:"),
                improvement(pairs) * 100.0,
                pairs.len()
            );
        }
    }
}
