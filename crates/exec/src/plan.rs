//! Physical plan trees.
//!
//! A [`Plan`] is a tree of physical operators with all column references
//! resolved to output positions at plan-build time. Every node records
//! its output column *qualified names* (`"rel.col"` form), which is what
//! lets materialized views — whose stored schemas use the same qualified
//! names — slot into plans transparently (see [`crate::rewrite`]).

use specdb_query::{AggFunc, CompareOp};
use specdb_storage::Value;
use std::fmt;
use std::ops::Bound;

/// A predicate bound to an output column position.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPred {
    /// Column position in the operator's input tuples.
    pub idx: usize,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant operand.
    pub value: Value,
}

impl BoundPred {
    /// Evaluate against a tuple.
    pub fn matches(&self, t: &specdb_storage::Tuple) -> bool {
        self.op.eval(t.get(self.idx), &self.value)
    }
}

/// A physical plan node.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Sequential scan of a stored table with pushed-down filters.
    SeqScan {
        /// Catalog table name.
        table: String,
        /// Filters over the table's own column positions.
        filters: Vec<BoundPred>,
    },
    /// Index range scan: probe the index, fetch rids, apply residual filters.
    IndexScan {
        /// Catalog table name.
        table: String,
        /// Indexed column name (in the stored schema).
        column: String,
        /// Lower bound on the indexed column.
        lo: Bound<Value>,
        /// Upper bound on the indexed column.
        hi: Bound<Value>,
        /// Residual filters over the table's own column positions
        /// (including any non-range predicates on the indexed column).
        filters: Vec<BoundPred>,
    },
    /// Hash join on one equality; extra equalities become residuals.
    HashJoin {
        /// Build side.
        left: Box<Plan>,
        /// Probe side.
        right: Box<Plan>,
        /// Key position in the left output.
        lkey: usize,
        /// Key position in the right output.
        rkey: usize,
        /// Residual equality pairs `(left_pos, right_pos)`.
        residual: Vec<(usize, usize)>,
    },
    /// Index nested-loop join: for each outer tuple, probe an index on a
    /// stored inner table.
    IndexNLJoin {
        /// Outer input.
        outer: Box<Plan>,
        /// Inner stored table name.
        inner_table: String,
        /// Indexed inner column name.
        inner_column: String,
        /// Join key position in the outer output.
        okey: usize,
        /// Filters over the inner table's own column positions.
        inner_filters: Vec<BoundPred>,
        /// Residual equality pairs `(outer_pos, inner_pos)`.
        residual: Vec<(usize, usize)>,
    },
    /// Nested-loop join with arbitrary equality conditions (empty =
    /// cartesian product; used for disconnected query graphs).
    NestedLoop {
        /// Materialized side.
        left: Box<Plan>,
        /// Streamed side.
        right: Box<Plan>,
        /// Equality pairs `(left_pos, right_pos)`.
        cond: Vec<(usize, usize)>,
    },
    /// Projection to a subset of input positions.
    Project {
        /// Input.
        input: Box<Plan>,
        /// Positions to keep, in output order.
        keep: Vec<usize>,
    },
    /// Hash aggregation over the input: group by key positions, compute
    /// aggregate functions. Output = group keys ++ aggregate values.
    Aggregate {
        /// Input.
        input: Box<Plan>,
        /// Group-key positions in the input, in output order.
        group: Vec<usize>,
        /// Aggregates: function plus input position (`None` = COUNT(*)).
        aggs: Vec<(AggFunc, Option<usize>)>,
    },
}

/// A plan node with its output schema (qualified column names).
#[derive(Debug, Clone)]
pub struct Plan {
    /// The operator.
    pub node: PlanNode,
    /// Qualified output column names, parallel to tuple positions.
    pub cols: Vec<String>,
}

impl Plan {
    /// Position of a qualified column name in the output.
    pub fn col_index(&self, qualified: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == qualified)
    }

    /// Call `f(table, access)` for every base-relation access in the
    /// plan tree: `seq_scan`, `index_scan`, or `index_probe` (the inner
    /// side of an index nested-loop join). Used for plan-choice
    /// observability.
    pub fn visit_accesses(&self, f: &mut impl FnMut(&str, &str)) {
        match &self.node {
            PlanNode::SeqScan { table, .. } => f(table, "seq_scan"),
            PlanNode::IndexScan { table, .. } => f(table, "index_scan"),
            PlanNode::HashJoin { left, right, .. } | PlanNode::NestedLoop { left, right, .. } => {
                left.visit_accesses(f);
                right.visit_accesses(f);
            }
            PlanNode::IndexNLJoin { outer, inner_table, .. } => {
                outer.visit_accesses(f);
                f(inner_table, "index_probe");
            }
            PlanNode::Project { input, .. } | PlanNode::Aggregate { input, .. } => {
                input.visit_accesses(f)
            }
        }
    }

    /// One-line operator description (indented tree via [`Plan::explain`]).
    fn describe(&self) -> String {
        match &self.node {
            PlanNode::SeqScan { table, filters } => {
                format!("SeqScan({table}, {} filters)", filters.len())
            }
            PlanNode::IndexScan { table, column, filters, .. } => {
                format!("IndexScan({table}.{column}, {} residual)", filters.len())
            }
            PlanNode::HashJoin { lkey, rkey, residual, .. } => {
                format!("HashJoin(l[{lkey}] = r[{rkey}], {} residual)", residual.len())
            }
            PlanNode::IndexNLJoin { inner_table, inner_column, okey, .. } => {
                format!("IndexNLJoin(outer[{okey}] -> {inner_table}.{inner_column})")
            }
            PlanNode::NestedLoop { cond, .. } => {
                if cond.is_empty() {
                    "NestedLoop(cartesian)".to_string()
                } else {
                    format!("NestedLoop({} eq conds)", cond.len())
                }
            }
            PlanNode::Project { keep, .. } => format!("Project({} cols)", keep.len()),
            PlanNode::Aggregate { group, aggs, .. } => {
                format!("Aggregate({} keys, {} aggs)", group.len(), aggs.len())
            }
        }
    }

    /// Render the plan tree as an indented EXPLAIN-style string.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.describe());
        out.push('\n');
        match &self.node {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => {}
            PlanNode::HashJoin { left, right, .. } | PlanNode::NestedLoop { left, right, .. } => {
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PlanNode::IndexNLJoin { outer, .. } => outer.explain_into(out, depth + 1),
            PlanNode::Project { input, .. } | PlanNode::Aggregate { input, .. } => {
                input.explain_into(out, depth + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_storage::Tuple;

    #[test]
    fn bound_pred_evaluates() {
        let p = BoundPred { idx: 1, op: CompareOp::Ge, value: Value::Int(10) };
        assert!(p.matches(&Tuple::new(vec![Value::Null, Value::Int(10)])));
        assert!(!p.matches(&Tuple::new(vec![Value::Null, Value::Int(9)])));
    }

    #[test]
    fn explain_renders_tree() {
        let scan = Plan {
            node: PlanNode::SeqScan { table: "t".into(), filters: vec![] },
            cols: vec!["t.a".into()],
        };
        let proj = Plan {
            node: PlanNode::Project { input: Box::new(scan), keep: vec![0] },
            cols: vec!["t.a".into()],
        };
        let text = proj.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("  SeqScan"));
    }

    #[test]
    fn col_index_lookup() {
        let p = Plan {
            node: PlanNode::SeqScan { table: "t".into(), filters: vec![] },
            cols: vec!["t.a".into(), "t.b".into()],
        };
        assert_eq!(p.col_index("t.b"), Some(1));
        assert_eq!(p.col_index("t.z"), None);
    }
}
