//! Push-based plan execution.
//!
//! Plans execute by driving tuples into a callback, which keeps the
//! memory footprint bounded by the pipeline-breaking operators (hash
//! join builds, nested-loop materializations) rather than whole result
//! sets. CPU work is charged to the buffer pool's counters (one unit per
//! tuple touched) so the virtual-time disk model can include it, and
//! cancellation is checked once per page/batch of work.

use crate::context::ExecCtx;
use crate::error::{ExecError, ExecResult};
use crate::plan::{BoundPred, Plan, PlanNode};
use specdb_catalog::Catalog;
use specdb_query::AggFunc;
use specdb_storage::{AccessKind, PageId, Tuple, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// Execute a plan, invoking `out` for every result tuple.
pub fn run(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    match &plan.node {
        PlanNode::SeqScan { table, filters } => seq_scan(table, filters, catalog, ctx, out),
        PlanNode::IndexScan { table, column, lo, hi, filters } => {
            index_scan(table, column, lo, hi, filters, catalog, ctx, out)
        }
        PlanNode::HashJoin { left, right, lkey, rkey, residual } => {
            hash_join(left, right, *lkey, *rkey, residual, catalog, ctx, out)
        }
        PlanNode::IndexNLJoin {
            outer,
            inner_table,
            inner_column,
            okey,
            inner_filters,
            residual,
        } => index_nl_join(
            outer,
            inner_table,
            inner_column,
            *okey,
            inner_filters,
            residual,
            catalog,
            ctx,
            out,
        ),
        PlanNode::NestedLoop { left, right, cond } => {
            nested_loop(left, right, cond, catalog, ctx, out)
        }
        PlanNode::Project { input, keep } => {
            run(input, catalog, ctx, &mut |t| out(t.project(keep)))
        }
        PlanNode::Aggregate { input, group, aggs } => {
            aggregate(input, group, aggs, catalog, ctx, out)
        }
    }
}

/// Accumulator state for one aggregate function (shared with the batch
/// executor so both paths aggregate identically).
#[derive(Clone)]
pub(crate) enum Acc {
    Count(u64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, u64),
}

impl Acc {
    pub(crate) fn new(f: AggFunc) -> Acc {
        match f {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(0.0, false),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg(0.0, 0),
        }
    }

    /// Feed one input value (`None` = COUNT(*) semantics: count the row).
    pub(crate) fn feed(&mut self, v: Option<&Value>) {
        match (self, v) {
            (Acc::Count(n), None) => *n += 1,
            (Acc::Count(n), Some(v)) if !v.is_null() => *n += 1,
            (Acc::Count(_), _) => {}
            (Acc::Sum(s, seen), Some(v)) if !v.is_null() => {
                *s += v.as_numeric();
                *seen = true;
            }
            (Acc::Min(m), Some(v)) if !v.is_null() => match m {
                Some(cur) if &*cur <= v => {}
                _ => *m = Some(v.clone()),
            },
            (Acc::Max(m), Some(v)) if !v.is_null() => match m {
                Some(cur) if &*cur >= v => {}
                _ => *m = Some(v.clone()),
            },
            (Acc::Avg(s, n), Some(v)) if !v.is_null() => {
                *s += v.as_numeric();
                *n += 1;
            }
            _ => {}
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Sum(s, true) => Value::Float(s),
            Acc::Sum(_, false) => Value::Null,
            Acc::Min(m) => m.unwrap_or(Value::Null),
            Acc::Max(m) => m.unwrap_or(Value::Null),
            Acc::Avg(_, 0) => Value::Null,
            Acc::Avg(s, n) => Value::Float(s / n as f64),
        }
    }
}

fn aggregate(
    input: &Plan,
    group: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut input_rows: u64 = 0;
    run(input, catalog, ctx, &mut |t| {
        input_rows += 1;
        let key: Vec<Value> = group.iter().map(|&i| t.get(i).clone()).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|&(f, _)| Acc::new(f)).collect());
        for (acc, &(_, pos)) in accs.iter_mut().zip(aggs) {
            acc.feed(pos.map(|i| t.get(i)));
        }
        Ok(())
    })?;
    ctx.pool.charge_cpu(input_rows);
    // SQL convention: with no GROUP BY, an empty input still yields one
    // row of "empty" aggregates (count = 0).
    if groups.is_empty() && group.is_empty() {
        groups.insert(Vec::new(), aggs.iter().map(|&(f, _)| Acc::new(f)).collect());
    }
    // Deterministic output order: sort by group key.
    let mut rows: Vec<(Vec<Value>, Vec<Acc>)> = groups.into_iter().collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    for (mut key, accs) in rows {
        key.extend(accs.into_iter().map(Acc::finish));
        out(Tuple::new(key))?;
    }
    Ok(())
}

/// Execute a plan and collect all results (convenience wrapper).
pub fn run_collect(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<Vec<Tuple>> {
    let mut rows = Vec::new();
    run(plan, catalog, ctx, &mut |t| {
        rows.push(t);
        Ok(())
    })?;
    Ok(rows)
}

fn apply_filters(t: &Tuple, filters: &[BoundPred]) -> bool {
    filters.iter().all(|f| f.matches(t))
}

fn seq_scan(
    table: &str,
    filters: &[BoundPred],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
    let heap = t.heap;
    for page_no in 0..heap.pages(ctx.pool) {
        ctx.cancel.check()?;
        let tuples = heap.read_page(ctx.pool, page_no)?;
        ctx.pool.charge_cpu(tuples.len() as u64);
        for tuple in tuples {
            if apply_filters(&tuple, filters) {
                out(tuple)?;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn index_scan(
    table: &str,
    column: &str,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
    filters: &[BoundPred],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    let _t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
    let index = catalog.index(table, column).ok_or_else(|| ExecError::UnknownColumn {
        rel: table.into(),
        column: format!("{column} (no index)"),
    })?;
    ctx.cancel.check()?;
    let rids = index.lookup(ctx.pool, as_ref_bound(lo), as_ref_bound(hi))?;
    ctx.pool.charge_cpu(rids.len() as u64);
    // Fetch rids grouped by page to avoid pathological re-reads; within
    // one page all slots are served by a single (random) page access.
    let mut by_page: Vec<(PageId, Vec<u16>)> = Vec::new();
    let mut sorted = rids;
    sorted.sort();
    for rid in sorted {
        match by_page.last_mut() {
            Some((pid, slots)) if *pid == rid.page => slots.push(rid.slot),
            _ => by_page.push((rid.page, vec![rid.slot])),
        }
    }
    for (pid, slots) in by_page {
        ctx.cancel.check()?;
        let page = ctx.pool.read_page(pid, AccessKind::Random)?;
        ctx.pool.charge_cpu(slots.len() as u64);
        for slot in slots {
            if let Some(bytes) = page.get(slot as usize)? {
                let tuple = Tuple::decode(bytes)?;
                if apply_filters(&tuple, filters) {
                    out(tuple)?;
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &Plan,
    right: &Plan,
    lkey: usize,
    rkey: usize,
    residual: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    // Build phase: materialize the left input into a hash table.
    let mut table: HashMap<Value, Vec<Tuple>> = HashMap::new();
    let mut build_bytes: u64 = 0;
    run(left, catalog, ctx, &mut |t| {
        let key = t.get(lkey).clone();
        if !key.is_null() {
            build_bytes += t.encoded_len() as u64;
            table.entry(key).or_default().push(t);
        }
        Ok(())
    })?;
    ctx.pool.charge_cpu(table.values().map(|v| v.len() as u64).sum());
    // The build side is a pipeline breaker held wholly in memory; charge
    // its footprint so the cost model and metrics see it. The disk model
    // assigns no time to memory, so virtual durations are unchanged.
    ctx.pool.charge_mem(build_bytes);
    // Hybrid hash-join spill model: when the build side exceeds the
    // buffer pool, the overflow fraction `f = 1 − pool/build` of *both*
    // inputs is partitioned to scratch files and read back. The
    // in-memory execution is unaffected; the virtual clock pays the I/O.
    let pool_bytes = ctx.pool.capacity() as u64 * specdb_storage::PAGE_SIZE as u64;
    let spill_fraction = if ctx.pool.spill_model() && build_bytes > pool_bytes {
        1.0 - pool_bytes as f64 / build_bytes as f64
    } else {
        0.0
    };
    let mut probe_bytes: u64 = 0;
    // Probe phase.
    let lwidth = left.cols.len();
    run(right, catalog, ctx, &mut |r| {
        probe_bytes += r.encoded_len() as u64;
        let key = r.get(rkey);
        if key.is_null() {
            return Ok(());
        }
        if let Some(matches) = table.get(key) {
            for l in matches {
                let pass = residual.iter().all(|&(li, ri)| {
                    debug_assert!(li < lwidth);
                    l.get(li) == r.get(ri) && !l.get(li).is_null()
                });
                if pass {
                    out(l.concat(&r))?;
                }
            }
        }
        Ok(())
    })?;
    if spill_fraction > 0.0 {
        let page = specdb_storage::PAGE_SIZE as f64;
        let pages = (spill_fraction * (build_bytes + probe_bytes) as f64 / page).ceil() as u64;
        ctx.pool.charge_io(pages, pages);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn index_nl_join(
    outer: &Plan,
    inner_table: &str,
    inner_column: &str,
    okey: usize,
    inner_filters: &[BoundPred],
    residual: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    let inner = catalog
        .table(inner_table)
        .ok_or_else(|| ExecError::UnknownTable(inner_table.into()))?;
    let heap = inner.heap;
    // The outer side is materialized first: the index probes borrow the
    // pool mutably, so streaming both sides at once is not possible.
    let outer_rows = run_collect(outer, catalog, ctx)?;
    let index =
        catalog
            .index(inner_table, inner_column)
            .ok_or_else(|| ExecError::UnknownColumn {
                rel: inner_table.into(),
                column: format!("{inner_column} (no index)"),
            })?;
    for o in &outer_rows {
        ctx.cancel.check()?;
        let key = o.get(okey);
        if key.is_null() {
            continue;
        }
        let rids = index.lookup_eq(ctx.pool, key)?;
        ctx.pool.charge_cpu(1 + rids.len() as u64);
        for rid in rids {
            let inner_tuple = heap.get(ctx.pool, rid)?;
            if !apply_filters(&inner_tuple, inner_filters) {
                continue;
            }
            let pass = residual
                .iter()
                .all(|&(oi, ii)| o.get(oi) == inner_tuple.get(ii) && !o.get(oi).is_null());
            if pass {
                out(o.concat(&inner_tuple))?;
            }
        }
    }
    Ok(())
}

fn nested_loop(
    left: &Plan,
    right: &Plan,
    cond: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Tuple) -> ExecResult<()>,
) -> ExecResult<()> {
    let left_rows = run_collect(left, catalog, ctx)?;
    let mut right_count: u64 = 0;
    run(right, catalog, ctx, &mut |r| {
        right_count += 1;
        for l in &left_rows {
            let pass = cond.iter().all(|&(li, ri)| l.get(li) == r.get(ri) && !l.get(li).is_null());
            if pass {
                out(l.concat(&r))?;
            }
        }
        Ok(())
    })?;
    // The pool is exclusively borrowed while the right side streams, so
    // the pairwise comparison CPU is charged once afterwards.
    ctx.pool.charge_cpu(right_count.saturating_mul(left_rows.len() as u64));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CancelToken;
    use specdb_catalog::{ColumnDef, DataType, Schema, TableStats};
    use specdb_query::CompareOp;
    use specdb_storage::heap::BulkLoader;
    use specdb_storage::{BufferPool, HeapFile};

    /// Build a catalog with two joinable tables:
    /// emp(id, dept, age), dept(id, name).
    fn fixture() -> (BufferPool, Catalog) {
        let mut pool = BufferPool::new(512);
        let mut cat = Catalog::new();
        let emp_heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(emp_heap, &pool);
        for i in 0..1000i64 {
            loader
                .push(
                    &mut pool,
                    &Tuple::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(20 + i % 50)]),
                )
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let emp_stats = TableStats::analyze(&mut pool, emp_heap, 3).unwrap();
        cat.register(
            "emp",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("dept", DataType::Int),
                ColumnDef::new("age", DataType::Int),
            ]),
            emp_heap,
            emp_stats,
            false,
        );
        let dept_heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(dept_heap, &pool);
        for i in 0..10i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Str(format!("d{i}"))]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let dept_stats = TableStats::analyze(&mut pool, dept_heap, 2).unwrap();
        cat.register(
            "dept",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
            ]),
            dept_heap,
            dept_stats,
            false,
        );
        (pool, cat)
    }

    fn scan(table: &str, cols: &[&str], filters: Vec<BoundPred>) -> Plan {
        Plan {
            node: PlanNode::SeqScan { table: table.into(), filters },
            cols: cols.iter().map(|c| c.to_string()).collect(),
        }
    }

    #[test]
    fn seq_scan_with_filter() {
        let (mut pool, cat) = fixture();
        let plan = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 2, op: CompareOp::Lt, value: Value::Int(25) }],
        );
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        // ages cycle 20..69; ages 20-24 → 5 of every 50 → 100 rows.
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| matches!(r.get(2), Value::Int(a) if *a < 25)));
    }

    #[test]
    fn index_scan_range() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "emp", "age").unwrap();
        let plan = Plan {
            node: PlanNode::IndexScan {
                table: "emp".into(),
                column: "age".into(),
                lo: Bound::Included(Value::Int(20)),
                hi: Bound::Excluded(Value::Int(25)),
                filters: vec![],
            },
            cols: vec!["emp.id".into(), "emp.dept".into(), "emp.age".into()],
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn seq_and_index_scan_agree() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "emp", "age").unwrap();
        let seq = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 2, op: CompareOp::Ge, value: Value::Int(60) }],
        );
        let idx = Plan {
            node: PlanNode::IndexScan {
                table: "emp".into(),
                column: "age".into(),
                lo: Bound::Included(Value::Int(60)),
                hi: Bound::Unbounded,
                filters: vec![],
            },
            cols: seq.cols.clone(),
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let mut a = run_collect(&seq, &cat, &mut ctx).unwrap();
        let mut b = run_collect(&idx, &cat, &mut ctx).unwrap();
        let key = |t: &Tuple| format!("{:?}", t.values());
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn hash_join_produces_all_matches() {
        let (mut pool, cat) = fixture();
        let left = scan("dept", &["dept.id", "dept.name"], vec![]);
        let right = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let join = Plan {
            cols: vec![
                "dept.id".into(),
                "dept.name".into(),
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
            ],
            node: PlanNode::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                lkey: 0,
                rkey: 1,
                residual: vec![],
            },
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&join, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1000, "every emp matches exactly one dept");
        assert!(rows.iter().all(|r| r.get(0) == r.get(3)));
    }

    #[test]
    fn index_nl_join_matches_hash_join() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "dept", "id").unwrap();
        let outer = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 0, op: CompareOp::Lt, value: Value::Int(50) }],
        );
        let join = Plan {
            cols: vec![
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
                "dept.id".into(),
                "dept.name".into(),
            ],
            node: PlanNode::IndexNLJoin {
                outer: Box::new(outer),
                inner_table: "dept".into(),
                inner_column: "id".into(),
                okey: 1,
                inner_filters: vec![],
                residual: vec![],
            },
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&join, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|r| r.get(1) == r.get(3)));
    }

    #[test]
    fn cartesian_nested_loop() {
        let (mut pool, cat) = fixture();
        let left = scan("dept", &["dept.id", "dept.name"], vec![]);
        let right = scan(
            "dept",
            &["d2.id", "d2.name"],
            vec![BoundPred { idx: 0, op: CompareOp::Lt, value: Value::Int(3) }],
        );
        let nl = Plan {
            cols: vec!["dept.id".into(), "dept.name".into(), "d2.id".into(), "d2.name".into()],
            node: PlanNode::NestedLoop {
                left: Box::new(left),
                right: Box::new(right),
                cond: vec![],
            },
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&nl, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 30);
    }

    #[test]
    fn project_keeps_positions() {
        let (mut pool, cat) = fixture();
        let inner = scan("dept", &["dept.id", "dept.name"], vec![]);
        let plan = Plan {
            cols: vec!["dept.name".into()],
            node: PlanNode::Project { input: Box::new(inner), keep: vec![1] },
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.arity() == 1 && matches!(r.get(0), Value::Str(_))));
    }

    #[test]
    fn cancellation_aborts_scan() {
        let (mut pool, cat) = fixture();
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = ExecCtx::with_cancel(&mut pool, token);
        let err = run_collect(&plan, &cat, &mut ctx).unwrap_err();
        assert!(err.is_cancelled());
    }

    #[test]
    fn unknown_table_errors() {
        let (mut pool, cat) = fixture();
        let plan = scan("ghost", &["ghost.x"], vec![]);
        let mut ctx = ExecCtx::new(&mut pool);
        assert!(matches!(run_collect(&plan, &cat, &mut ctx), Err(ExecError::UnknownTable(_))));
    }

    #[test]
    fn hash_join_residual_filters() {
        // Self-join emp with itself on dept, residual on id=id → only
        // identical rows survive.
        let (mut pool, cat) = fixture();
        let l = scan("emp", &["l.id", "l.dept", "l.age"], vec![]);
        let r = scan("emp", &["r.id", "r.dept", "r.age"], vec![]);
        let join = Plan {
            cols: vec![
                "l.id".into(),
                "l.dept".into(),
                "l.age".into(),
                "r.id".into(),
                "r.dept".into(),
                "r.age".into(),
            ],
            node: PlanNode::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                lkey: 1,
                rkey: 1,
                residual: vec![(0, 0)],
            },
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&join, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1000, "residual id=id keeps exactly the diagonal");
    }

    #[test]
    fn hash_join_spill_charged_when_build_exceeds_pool() {
        // Tiny pool (2 pages): the 1000-row emp build side must spill.
        let (big_pool, cat) = fixture();
        drop(big_pool);
        let mut pool = BufferPool::new(2);
        // Rebuild data in the tiny pool via a fresh fixture-like load.
        let mut cat2 = Catalog::new();
        let heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(heap, &pool);
        for i in 0..5000i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Int(i % 10)]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let stats = TableStats::analyze(&mut pool, heap, 2).unwrap();
        cat2.register(
            "big",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
            ]),
            heap,
            stats,
            false,
        );
        let l = scan("big", &["l.id", "l.grp"], vec![]);
        let r = scan("big", &["r.id", "r.grp"], vec![]);
        let join = Plan {
            cols: vec!["l.id".into(), "l.grp".into(), "r.id".into(), "r.grp".into()],
            node: PlanNode::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                lkey: 0,
                rkey: 0,
                residual: vec![],
            },
        };
        pool.clear();
        let before = pool.snapshot();
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&join, &cat2, &mut ctx).unwrap();
        assert_eq!(rows.len(), 5000);
        let d = pool.demand_since(before);
        assert!(d.writes > 0, "spill must charge writes: {d:?}");
        assert!(
            d.seq_reads > heap.pages(&pool) as u64 * 2,
            "spill must charge extra read pass: {d:?}"
        );
        let _ = cat;
    }

    #[test]
    fn null_keys_never_join() {
        let mut pool = BufferPool::new(64);
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(heap, &pool);
        loader.push(&mut pool, &Tuple::new(vec![Value::Null])).unwrap();
        loader.push(&mut pool, &Tuple::new(vec![Value::Int(1)])).unwrap();
        loader.finish(&mut pool).unwrap();
        let stats = TableStats::analyze(&mut pool, heap, 1).unwrap();
        cat.register(
            "n",
            Schema::new(vec![ColumnDef::new("k", DataType::Int)]),
            heap,
            stats,
            false,
        );
        let l = scan("n", &["l.k"], vec![]);
        let r = scan("n", &["r.k"], vec![]);
        let join = Plan {
            cols: vec!["l.k".into(), "r.k".into()],
            node: PlanNode::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                lkey: 0,
                rkey: 0,
                residual: vec![],
            },
        };
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&join, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1, "null keys must not match null keys");
    }
}
