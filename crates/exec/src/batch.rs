//! Columnar batch execution: column vectors plus selection vectors.
//!
//! The default executor path. Operators exchange [`ColumnBatch`]es —
//! per-column `Vec<Value>` vectors shared by `Arc`, plus an optional
//! selection vector listing the live row indexes — instead of the
//! row-major `Vec<Tuple>` chunks of [`crate::batch_row`]:
//!
//! * **scans** forward a heap page's cached [`ColumnSegment`] columns
//!   zero-copy ([`specdb_storage::BufferPool::read_page_columnar`]),
//! * **filters** evaluate one predicate column at a time into a
//!   selection vector — survivors are never copied,
//! * **projection** is `Arc` pointer selection of the kept columns,
//! * **hash joins** gather build/probe keys from the key column only,
//! * **index-nested-loop joins** probe each outer batch through a
//!   [`specdb_catalog::BatchProber`], decoding every touched index leaf
//!   at most once per batch instead of once per outer tuple.
//!
//! Filter kernels are specialized from catalog column metadata
//! ([`specdb_catalog::DataType`]) for `Int`/`Float` columns, but columns
//! themselves stay `Vec<Value>`-backed: a `Float` column may legally
//! store `Int` values (`DataType::admits`) and `Int`/`Int` comparisons
//! must stay integer-exact, so a fixed-stride `f64` layout would break
//! bit-identity with the row oracle. The kernels keep the exact
//! [`Value`] comparison semantics per element and only skip the generic
//! tag dispatch.
//!
//! Kernels additionally exploit the segment cache's *encoded* column
//! forms ([`specdb_storage::EncodedCol`]): dictionary columns evaluate a
//! predicate once per distinct value and filter by `u32` code,
//! run-length columns accept or reject whole runs, and per-column zone
//! maps ([`specdb_storage::ZoneMap`]) let a scan skip decoding pages
//! that provably contain no qualifying row (`exec.pages_skipped`).
//! Selection vectors make materialization late: only the columns a
//! query keeps, on the pages that survive the zones, ever inflate to
//! `Vec<Value>`.
//!
//! **Equivalence contract**: for any plan, this path produces the same
//! tuples in the same order as [`crate::run::run`], and charges the same
//! virtual-time resource demand (page reads, hits, CPU tuples, writes,
//! memory). Columnar layout, selection vectors, and batched index probes
//! elide wall-clock work only; every page access still flows through
//! [`specdb_storage::BufferPool::read_page`] accounting in the same
//! order. The differential suite `tests/batch_exec.rs` holds all
//! executor paths to this contract.

use crate::context::{CancelToken, ExecCtx};
use crate::error::{ExecError, ExecResult};
use crate::parallel::{
    check_abort, effective_workers, morsel_size, stream_ordered, MorselTask, MIN_MORSEL_PAGES,
};
use crate::plan::{BoundPred, Plan, PlanNode};
use crate::run::{as_ref_bound, Acc};
use specdb_catalog::{Catalog, DataType, Schema};
use specdb_obs::SpanKind;
use specdb_query::{AggFunc, CompareOp};
use specdb_storage::column::rle_run_of;
use specdb_storage::{
    AccessKind, ColumnSegment, ColumnVec, EncodedCol, HeapFile, Page, PageId, SegCache, Tuple,
    Value, ZoneMap,
};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Default maximum number of logical rows per [`ColumnBatch`].
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A columnar chunk of rows exchanged between batch operators: `Arc`ed
/// column vectors plus an optional selection vector of live row indexes
/// (in output order). `sel == None` means every underlying row is live.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    cols: Vec<ColumnVec>,
    sel: Option<Arc<Vec<u32>>>,
    /// Underlying (pre-selection) row count of the column vectors.
    rows: usize,
}

impl ColumnBatch {
    /// Batch over owned column vectors, all rows live. Columns must have
    /// equal lengths.
    pub fn new(cols: Vec<ColumnVec>) -> Self {
        let rows = cols.first().map_or(0, |c| c.len());
        debug_assert!(cols.iter().all(|c| c.len() == rows), "ragged column batch");
        ColumnBatch { cols, sel: None, rows }
    }

    /// Batch over a decoded page segment's columns (all of them
    /// materialized — see `ColumnBatch::from_segment_keep` for the
    /// late-materializing scan path).
    pub fn from_segment(seg: &ColumnSegment) -> Self {
        ColumnBatch::new(seg.cols())
    }

    /// Batch over only the `keep` columns of a segment (`None` keeps
    /// all). This is where late materialization pays off: columns a
    /// query filters on but never outputs are left encoded, and the
    /// kept columns decode lazily, once, shared by every batch over the
    /// page.
    fn from_segment_keep(seg: &ColumnSegment, keep: Option<&[usize]>) -> Self {
        let cols = match keep {
            Some(keep) => keep.iter().map(|&c| Arc::clone(seg.col(c))).collect(),
            None => seg.cols(),
        };
        // Explicit row count: a zero-column projection still carries the
        // segment's row extent for selection vectors.
        ColumnBatch { cols, sel: None, rows: seg.rows() }
    }

    /// Replace the selection vector (row indexes into the underlying
    /// columns, in output order).
    pub fn with_sel(mut self, sel: Vec<u32>) -> Self {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.rows));
        self.sel = Some(Arc::new(sel));
        self
    }

    /// Logical (selected) row count.
    pub fn len(&self) -> usize {
        self.sel.as_ref().map_or(self.rows, |s| s.len())
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Physical row index of logical row `row`.
    fn phys(&self, row: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[row] as usize,
            None => row,
        }
    }

    /// Value at logical `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.cols[col][self.phys(row)]
    }

    /// Project to the given columns: pure `Arc` pointer selection, the
    /// selection vector is shared untouched.
    pub fn project(&self, keep: &[usize]) -> ColumnBatch {
        ColumnBatch {
            cols: keep.iter().map(|&c| Arc::clone(&self.cols[c])).collect(),
            sel: self.sel.clone(),
            rows: self.rows,
        }
    }

    /// Encoded byte size of one logical row, equal to the row path's
    /// [`Tuple::encoded_len`] for the gathered tuple (accounting parity
    /// for hash-join build/probe byte charges).
    fn row_encoded_len(&self, row: usize) -> usize {
        let p = self.phys(row);
        2 + self.cols.iter().map(|c| c[p].encoded_len()).sum::<usize>()
    }

    /// Clone one logical row's values in column order.
    fn gather_row(&self, row: usize) -> Vec<Value> {
        let p = self.phys(row);
        self.cols.iter().map(|c| c[p].clone()).collect()
    }

    /// Materialize every logical row as a [`Tuple`], appended to `out` —
    /// the row-major boundary for result collection.
    pub fn to_tuples(&self, out: &mut Vec<Tuple>) {
        out.reserve(self.len());
        for row in 0..self.len() {
            out.push(Tuple::new(self.gather_row(row)));
        }
    }

    /// Split into chunks of at most `cap` logical rows (columns stay
    /// shared; only selection vectors are built).
    fn emit_chunked(
        self,
        cap: usize,
        out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
    ) -> ExecResult<u64> {
        let cap = cap.max(1);
        let n = self.len();
        if n == 0 {
            return Ok(0);
        }
        if n <= cap {
            out(self)?;
            return Ok(1);
        }
        let mut emitted = 0u64;
        let mut start = 0usize;
        while start < n {
            let end = (start + cap).min(n);
            let sel: Vec<u32> = match &self.sel {
                Some(sel) => sel[start..end].to_vec(),
                None => (start as u32..end as u32).collect(),
            };
            out(ColumnBatch {
                cols: self.cols.clone(),
                sel: Some(Arc::new(sel)),
                rows: self.rows,
            })?;
            emitted += 1;
            start = end;
        }
        Ok(emitted)
    }
}

/// Accumulates row-built operator output column-wise and flushes a
/// [`ColumnBatch`] to `out` whenever `cap` rows are buffered (and once
/// more at the end for the tail). Scans bypass this and forward their
/// zero-copy batches via [`ColumnBatch::emit_chunked`].
struct Emitter<'o> {
    cols: Vec<Vec<Value>>,
    len: usize,
    cap: usize,
    batches: u64,
    out: &'o mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
}

impl<'o> Emitter<'o> {
    fn new(
        width: usize,
        cap: usize,
        out: &'o mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
    ) -> Self {
        Emitter {
            cols: (0..width).map(|_| Vec::new()).collect(),
            len: 0,
            cap: cap.max(1),
            batches: 0,
            out,
        }
    }

    fn push_row(&mut self, values: impl IntoIterator<Item = Value>) -> ExecResult<()> {
        let mut n = 0;
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(v);
            n += 1;
        }
        debug_assert_eq!(n, self.cols.len(), "row narrower than emitter");
        self.len += 1;
        if self.len >= self.cap {
            self.flush()
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> ExecResult<()> {
        if self.len == 0 {
            return Ok(());
        }
        let width = self.cols.len();
        let full = std::mem::replace(&mut self.cols, (0..width).map(|_| Vec::new()).collect());
        self.len = 0;
        self.batches += 1;
        (self.out)(ColumnBatch::new(full.into_iter().map(Arc::new).collect()))
    }

    /// Flush the tail and return how many batches were emitted.
    fn finish(mut self) -> ExecResult<u64> {
        self.flush()?;
        Ok(self.batches)
    }
}

/// Execute a plan, invoking `out` for every [`ColumnBatch`] of results.
///
/// Batches are non-empty and hold at most [`ExecCtx::batch_size`]
/// logical rows; gathered row-major and concatenated they are exactly
/// the row path's output.
///
/// When the observer's tracer is enabled, every operator subtree gets a
/// [`SpanKind::Operator`] span counting the rows and batches it emitted;
/// disabled tracing adds a single branch per subtree.
pub fn run_batched(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    let tracer = ctx.pool.observer().tracer().clone();
    if !tracer.is_enabled() {
        return run_node(plan, catalog, ctx, out);
    }
    let virt = ctx.pool.observer().now_micros();
    let span = tracer.begin(SpanKind::Operator, op_label(&plan.node), virt);
    let mut rows = 0u64;
    let mut batches = 0u64;
    let result = run_node(plan, catalog, ctx, &mut |b| {
        rows += b.len() as u64;
        batches += 1;
        out(b)
    });
    // Operators have no virtual extent of their own (the disk model
    // prices the whole query); their wall extent is the payload here.
    span.finish_with(virt, |a| {
        a.push(("rows", rows.into()));
        a.push(("batches", batches.into()));
    });
    result
}

/// Stable operator label for spans and profiles.
fn op_label(node: &PlanNode) -> &'static str {
    match node {
        PlanNode::SeqScan { .. } => "seq_scan",
        PlanNode::Project { .. } => "project",
        PlanNode::IndexScan { .. } => "index_scan",
        PlanNode::HashJoin { .. } => "hash_join",
        PlanNode::IndexNLJoin { .. } => "index_nl_join",
        PlanNode::NestedLoop { .. } => "nested_loop",
        PlanNode::Aggregate { .. } => "aggregate",
    }
}

fn run_node(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    match &plan.node {
        PlanNode::SeqScan { table, filters } => {
            fused_seq_scan(table, filters, None, catalog, ctx, out)
        }
        // Scan→filter→project fusion: a projection directly above a
        // sequential scan folds into the scan's batch-producing loop.
        PlanNode::Project { input, keep } => match &input.node {
            PlanNode::SeqScan { table, filters } => {
                fused_seq_scan(table, filters, Some(keep), catalog, ctx, out)
            }
            _ => run_batched(input, catalog, ctx, &mut |b: ColumnBatch| out(b.project(keep))),
        },
        PlanNode::IndexScan { table, column, lo, hi, filters } => {
            index_scan_batched(table, column, lo, hi, filters, catalog, ctx, out)
        }
        PlanNode::HashJoin { left, right, lkey, rkey, residual } => {
            hash_join_batched(left, right, *lkey, *rkey, residual, catalog, ctx, out)
        }
        PlanNode::IndexNLJoin {
            outer,
            inner_table,
            inner_column,
            okey,
            inner_filters,
            residual,
        } => index_nl_join_batched(
            outer,
            inner_table,
            inner_column,
            *okey,
            inner_filters,
            residual,
            catalog,
            ctx,
            out,
        ),
        PlanNode::NestedLoop { left, right, cond } => {
            nested_loop_batched(left, right, cond, catalog, ctx, out)
        }
        PlanNode::Aggregate { input, group, aggs } => {
            aggregate_batched(input, group, aggs, catalog, ctx, out)
        }
    }
}

/// Execute a plan on the columnar path and collect all results row-major.
pub fn run_collect_batched(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<Vec<Tuple>> {
    let mut rows = Vec::new();
    run_batched(plan, catalog, ctx, &mut |b: ColumnBatch| {
        b.to_tuples(&mut rows);
        Ok(())
    })?;
    Ok(rows)
}

/// Collect a plan's output as column batches (pipeline breakers that
/// re-iterate their input, e.g. the index-nested-loop outer side).
fn collect_batches(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<Vec<ColumnBatch>> {
    let mut batches = Vec::new();
    run_batched(plan, catalog, ctx, &mut |b: ColumnBatch| {
        batches.push(b);
        Ok(())
    })?;
    Ok(batches)
}

// ---------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------

/// Does `ord` (of `left.cmp(right)`) satisfy `op`? Mirrors
/// [`CompareOp::eval`] exactly.
#[inline]
fn ord_matches(op: CompareOp, ord: Ordering) -> bool {
    match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::Ne => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::Le => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::Ge => ord != Ordering::Less,
    }
}

/// Which specialized comparison loop a predicate column gets, chosen
/// from the catalog's column type and the predicate constant. Every
/// kernel is still total over [`Value`] variants (loose typing:
/// `DataType::admits` lets `Int` into `Float` columns), so a wrong hint
/// could never change results — only speed.
enum FilterKernel<'v> {
    /// `Int` column vs `Int` constant: integer-exact comparison.
    IntInt { k: i64, c: &'v Value },
    /// Numeric column vs numeric constant: `total_cmp` after widening,
    /// exactly as [`Value::cmp`]'s mixed arms do.
    Numeric(&'v Value),
    /// `Str` column vs `Str` constant.
    StrStr { s: &'v str, c: &'v Value },
    /// Anything else: the generic [`CompareOp::eval`].
    General(&'v Value),
}

impl<'v> FilterKernel<'v> {
    fn choose(col_ty: Option<DataType>, value: &'v Value) -> FilterKernel<'v> {
        match (col_ty, value) {
            (Some(DataType::Int), Value::Int(k)) => FilterKernel::IntInt { k: *k, c: value },
            (Some(DataType::Int | DataType::Float), Value::Int(_) | Value::Float(_)) => {
                FilterKernel::Numeric(value)
            }
            (Some(DataType::Str), Value::Str(s)) => FilterKernel::StrStr { s, c: value },
            _ => FilterKernel::General(value),
        }
    }

    /// Evaluate `v op constant` with the specialized loop body.
    #[inline]
    fn matches(&self, op: CompareOp, v: &Value) -> bool {
        match self {
            FilterKernel::IntInt { k, c } => match v {
                Value::Int(x) => ord_matches(op, x.cmp(k)),
                Value::Null => false,
                other => op.eval(other, c),
            },
            FilterKernel::Numeric(c) => match (v, c) {
                (Value::Int(x), Value::Int(k)) => ord_matches(op, x.cmp(k)),
                (Value::Int(x), Value::Float(k)) => ord_matches(op, (*x as f64).total_cmp(k)),
                (Value::Float(x), Value::Int(k)) => ord_matches(op, x.total_cmp(&(*k as f64))),
                (Value::Float(x), Value::Float(k)) => ord_matches(op, x.total_cmp(k)),
                (Value::Null, _) => false,
                (other, c) => op.eval(other, c),
            },
            FilterKernel::StrStr { s, c } => match v {
                Value::Str(x) => ord_matches(op, x.as_str().cmp(s)),
                Value::Null => false,
                other => op.eval(other, c),
            },
            FilterKernel::General(c) => op.eval(v, c),
        }
    }
}

/// Evaluate scan filters column-at-a-time into a selection vector.
/// `None` means "all rows live" (no filters). A predicate on a NULL
/// constant matches nothing ([`CompareOp::eval`] three-valued logic).
///
/// Kernels run on the column's *encoded* form: a dictionary column
/// evaluates the predicate once per distinct value and then tests `u32`
/// codes against the resulting pass set; an RLE column evaluates once
/// per run and accepts or rejects whole runs. Both are exact because
/// encoding groups rows by identical representation and every kernel is
/// a pure function of the value — the selection vector is bit-identical
/// to the plain per-row loop.
fn eval_filters(seg: &ColumnSegment, filters: &[BoundPred], schema: &Schema) -> Option<Vec<u32>> {
    if filters.is_empty() {
        return None;
    }
    let mut sel: Option<Vec<u32>> = None;
    for f in filters {
        let col_ty = schema.columns().get(f.idx).map(|c| c.ty);
        let kernel = FilterKernel::choose(col_ty, &f.value);
        let next = match seg.encoded(f.idx) {
            EncodedCol::Plain(col) => {
                let col = col.as_slice();
                match &sel {
                    None => {
                        let mut v = Vec::new();
                        for (i, val) in col.iter().enumerate() {
                            if kernel.matches(f.op, val) {
                                v.push(i as u32);
                            }
                        }
                        v
                    }
                    Some(prev) => {
                        let mut v = Vec::with_capacity(prev.len());
                        for &i in prev {
                            if kernel.matches(f.op, &col[i as usize]) {
                                v.push(i);
                            }
                        }
                        v
                    }
                }
            }
            EncodedCol::Dict { codes, dict } => {
                let pass: Vec<bool> = dict.iter().map(|v| kernel.matches(f.op, v)).collect();
                match &sel {
                    None => {
                        let mut v = Vec::new();
                        for (i, &code) in codes.iter().enumerate() {
                            if pass[code as usize] {
                                v.push(i as u32);
                            }
                        }
                        v
                    }
                    Some(prev) => {
                        let mut v = Vec::with_capacity(prev.len());
                        for &i in prev {
                            if pass[codes[i as usize] as usize] {
                                v.push(i);
                            }
                        }
                        v
                    }
                }
            }
            EncodedCol::Rle { values, starts } => {
                let pass: Vec<bool> = values.iter().map(|v| kernel.matches(f.op, v)).collect();
                match &sel {
                    None => {
                        let rows = seg.rows() as u32;
                        let mut v = Vec::new();
                        for (run, &start) in starts.iter().enumerate() {
                            if pass[run] {
                                let end = starts.get(run + 1).copied().unwrap_or(rows);
                                v.extend(start..end);
                            }
                        }
                        v
                    }
                    Some(prev) => {
                        let mut v = Vec::with_capacity(prev.len());
                        for &i in prev {
                            if pass[rle_run_of(starts, i)] {
                                v.push(i);
                            }
                        }
                        v
                    }
                }
            }
        };
        if next.is_empty() {
            return Some(next);
        }
        sel = Some(next);
    }
    sel
}

/// Can `filters` provably select zero rows on a page whose per-column
/// summaries are `zones`? Uses only [`Value`]'s total order — the same
/// order [`CompareOp::eval`] and every kernel comparison reduce to — so
/// an excluded page skips decode and filtering with results identical
/// to scanning it.
///
/// The rules, per predicate (`mn`/`mx` are the column's non-null
/// min/max; comparisons against NULL never match, so null counts are
/// irrelevant to exclusion):
/// * NULL constant: matches nothing — every page is excludable.
/// * all-NULL column (`mn` absent): nothing to match.
/// * `Eq`: `c < mn` or `c > mx`; `Ne`: `mn == mx == c`;
///   `Lt`: `mn >= c`; `Le`: `mn > c`; `Gt`: `mx <= c`; `Ge`: `mx < c`.
pub(crate) fn zones_exclude(zones: &[ZoneMap], filters: &[BoundPred]) -> bool {
    filters.iter().any(|f| {
        let Some(zone) = zones.get(f.idx) else { return false };
        if f.value.is_null() {
            return true;
        }
        let (Some(mn), Some(mx)) = (&zone.min, &zone.max) else { return true };
        let c = &f.value;
        match f.op {
            CompareOp::Eq => c.cmp(mn).is_lt() || c.cmp(mx).is_gt(),
            CompareOp::Ne => mn.cmp(c).is_eq() && mx.cmp(c).is_eq(),
            CompareOp::Lt => mn.cmp(c).is_ge(),
            CompareOp::Le => mn.cmp(c).is_gt(),
            CompareOp::Gt => mx.cmp(c).is_le(),
            CompareOp::Ge => mx.cmp(c).is_lt(),
        }
    })
}

fn apply_filters(t: &Tuple, filters: &[BoundPred]) -> bool {
    filters.iter().all(|f| f.matches(t))
}

// ---------------------------------------------------------------------
// Morsel-parallel scans
// ---------------------------------------------------------------------
//
// A parallel scan runs in two phases. Phase A (coordinator, serial):
// walk the heap pages in order through `BufferPool::read_page`, so every
// hit, miss, eviction and CPU charge lands in exactly the serial order —
// virtual-time accounting never sees the thread count — and capture the
// `Arc<Page>` images as work items. Phase B (workers): decode each page
// via the shared `SegCache`, evaluate filters, build the batch, and
// apply an operator-specific `ScanMap`. The ordered merge then feeds the
// mapped results back to the coordinator in page order, so batch
// boundaries, emit order, and per-group accumulation order are all
// bit-identical to the serial loop.

/// Per-scan state shared by every morsel task (captured once behind an
/// `Arc`; workers only need the decoded-segment cache, never the pool).
struct ScanShared {
    schema: Schema,
    filters: Vec<BoundPred>,
    keep: Option<Vec<usize>>,
    seg_cache: Arc<SegCache>,
    small_file: bool,
    cancel: CancelToken,
}

/// Batch-stat deltas a morsel accumulates privately; the coordinator
/// merges them into [`crate::context::BatchStats`] in morsel order.
#[derive(Default, Clone, Copy)]
struct MorselStats {
    rows_scanned: u64,
    rows_selected: u64,
    cols_scanned: u64,
    batches: u64,
    pages_skipped: u64,
}

/// One morsel's output: per-batch mapped results in page order plus the
/// stat deltas.
struct MorselOut<R> {
    results: Vec<R>,
    stats: MorselStats,
}

/// Worker-side transform applied to each live page batch (post filter
/// and projection). Returns the values to hand the coordinator, which
/// re-emits them in page order.
type ScanMap<R> = Arc<dyn Fn(ColumnBatch, &mut MorselStats) -> ExecResult<Vec<R>> + Send + Sync>;

/// Decode, filter and map one morsel of pre-read pages on a worker
/// thread. Mirrors the serial fused-scan loop body exactly, minus the
/// accounting the coordinator already performed in phase A.
fn scan_morsel<R>(
    shared: &ScanShared,
    pages: &[(PageId, Arc<Page>)],
    abort: &AtomicBool,
    map: &dyn Fn(ColumnBatch, &mut MorselStats) -> ExecResult<Vec<R>>,
) -> ExecResult<MorselOut<R>> {
    let mut results = Vec::new();
    let mut stats = MorselStats::default();
    for (pid, page) in pages {
        check_abort(abort)?;
        shared.cancel.check()?;
        stats.rows_scanned += page.live_count() as u64;
        // Zone-map page skipping, checked both before decode (the zone
        // side-cache survives segment eviction, so a warm re-scan skips
        // without decoding) and after (cold cache): `pages_skipped` is a
        // pure function of page data and filters, never of cache state.
        if let Some(zones) = shared.seg_cache.zone_maps(*pid) {
            if zones_exclude(&zones, &shared.filters) {
                stats.pages_skipped += 1;
                continue;
            }
        }
        let seg = shared.seg_cache.get_or_decode(*pid, page, shared.small_file)?;
        if zones_exclude(seg.zones(), &shared.filters) {
            stats.pages_skipped += 1;
            continue;
        }
        let sel = eval_filters(&seg, &shared.filters, &shared.schema);
        let live = sel.as_ref().map_or(seg.rows(), |s| s.len());
        stats.rows_selected += live as u64;
        if live == 0 {
            continue;
        }
        let mut batch = ColumnBatch::from_segment_keep(&seg, shared.keep.as_deref());
        if let Some(sel) = sel {
            batch = batch.with_sel(sel);
        }
        results.extend(map(batch, &mut stats)?);
    }
    Ok(MorselOut { results, stats })
}

/// Gate for the morsel path: enabled by the context's thread count and
/// worth dispatching. Results are identical either way, so this is pure
/// wall-clock policy: a scan shorter than one minimum-size morsel pays
/// more in dispatch overhead (boxing, channel hops, ordered-merge
/// buffering) than a worker saves, so it runs inline (the
/// `batch_columnar_par4` regression was exactly this, per-page tasks
/// over small tables).
fn use_parallel(ctx: &ExecCtx<'_>, pages: u32) -> bool {
    ctx.threads > 1 && pages as usize >= MIN_MORSEL_PAGES
}

/// The parallel counterpart of the fused scan loop: phase-A serial page
/// walk for accounting, worker decode/filter/map, ordered re-emit.
fn parallel_fused_scan<R: Send + 'static>(
    heap: HeapFile,
    schema: Schema,
    filters: &[BoundPred],
    keep: Option<&[usize]>,
    ctx: &mut ExecCtx<'_>,
    map: ScanMap<R>,
    emit: &mut dyn FnMut(R) -> ExecResult<()>,
) -> ExecResult<()> {
    let pages = heap.pages(ctx.pool);
    let mut work: Vec<(PageId, Arc<Page>)> = Vec::with_capacity(pages as usize);
    for page_no in 0..pages {
        ctx.cancel.check()?;
        let pid = PageId::new(heap.file, page_no);
        let page = ctx.pool.read_page(pid, AccessKind::Sequential)?;
        // Same per-page CPU charge as the serial loop (`live_count` is
        // exactly the row count `decode_page` will produce).
        ctx.pool.charge_cpu(page.live_count() as u64);
        work.push((pid, page));
    }
    let shared = Arc::new(ScanShared {
        schema,
        filters: filters.to_vec(),
        keep: keep.map(|k| k.to_vec()),
        seg_cache: ctx.pool.seg_cache(),
        small_file: ctx.pool.seg_cacheable_size(heap.file),
        cancel: ctx.cancel.clone(),
    });
    let threads = effective_workers(ctx.threads);
    let chunk = morsel_size(work.len(), threads);
    // Morsel spans are wall-clock lanes parented on the coordinator's
    // current (operator) span; workers never touch the span stack.
    let tracer = ctx.pool.observer().tracer().clone();
    let span_parent = tracer.current();
    let virt_now = ctx.pool.observer().now_micros();
    let tasks: Vec<MorselTask<MorselOut<R>>> = work
        .chunks(chunk)
        .map(|pages| {
            let pages = pages.to_vec();
            let shared = Arc::clone(&shared);
            let map = Arc::clone(&map);
            let tracer = tracer.clone();
            let task: MorselTask<MorselOut<R>> = Box::new(move |abort| {
                let span = tracer.begin_at(span_parent, SpanKind::Morsel, "scan_morsel", virt_now);
                let out = scan_morsel(&shared, &pages, abort, map.as_ref());
                if let Ok(m) = &out {
                    let (n_pages, rows) = (pages.len(), m.stats.rows_scanned);
                    span.finish_with(virt_now, |a| {
                        a.push(("pages", n_pages.into()));
                        a.push(("rows", rows.into()));
                    });
                }
                out
            });
            task
        })
        .collect();
    let stats = &mut ctx.batch_stats;
    stream_ordered(threads, tasks, &mut |m: MorselOut<R>| {
        stats.rows_scanned += m.stats.rows_scanned;
        stats.rows_selected += m.stats.rows_selected;
        stats.cols_scanned += m.stats.cols_scanned;
        stats.batches += m.stats.batches;
        stats.pages_skipped += m.stats.pages_skipped;
        for r in m.results {
            emit(r)?;
        }
        Ok(())
    })
}

/// Serial-loop twin of [`scan_morsel`]'s per-page front half: read one
/// heap page with sequential accounting, consult zone maps (side-cache
/// first, decoded segment second) and return `None` when no row can
/// pass `filters`. A skipped page is charged exactly like a scanned one
/// — the page access and `charge_cpu(live rows)` — so resource demand
/// is identical to a full scan; only decode and filter work is elided.
fn read_page_zoned(
    heap: HeapFile,
    page_no: u32,
    filters: &[BoundPred],
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<Option<Arc<ColumnSegment>>> {
    let pid = PageId::new(heap.file, page_no);
    let page = ctx.pool.read_page(pid, AccessKind::Sequential)?;
    ctx.pool.charge_cpu(page.live_count() as u64);
    ctx.batch_stats.rows_scanned += page.live_count() as u64;
    let cache = ctx.pool.seg_cache();
    if let Some(zones) = cache.zone_maps(pid) {
        if zones_exclude(&zones, filters) {
            ctx.batch_stats.pages_skipped += 1;
            return Ok(None);
        }
    }
    let seg = cache.get_or_decode(pid, &page, ctx.pool.seg_cacheable_size(heap.file))?;
    if zones_exclude(seg.zones(), filters) {
        ctx.batch_stats.pages_skipped += 1;
        return Ok(None);
    }
    Ok(Some(seg))
}

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

/// The fused scan→filter(→project) loop: one pass over the heap pages
/// forwards each page's cached column vectors zero-copy, with filters
/// evaluated into selection vectors and projection as column selection.
///
/// Accounting matches the row path exactly: one sequential page access
/// and `charge_cpu(page tuples)` per page, whether or not the decoded
/// segment cache serves the columns or zone maps skip the page.
fn fused_seq_scan(
    table: &str,
    filters: &[BoundPred],
    keep: Option<&[usize]>,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
    let heap = t.heap;
    let schema = t.schema.clone();
    if use_parallel(ctx, heap.pages(ctx.pool)) {
        // Workers chunk each page batch exactly as the serial loop
        // would, so the coordinator re-emits an identical batch stream.
        let cap = ctx.batch_size;
        let map: ScanMap<ColumnBatch> = Arc::new(move |batch, stats| {
            stats.cols_scanned += batch.width() as u64;
            let mut chunks = Vec::new();
            stats.batches += batch.emit_chunked(cap, &mut |b| {
                chunks.push(b);
                Ok(())
            })?;
            Ok(chunks)
        });
        parallel_fused_scan(heap, schema, filters, keep, ctx, map, &mut |b| out(b))?;
        ctx.batch_stats.fused_scans += 1;
        return Ok(());
    }
    let mut batches = 0u64;
    for page_no in 0..heap.pages(ctx.pool) {
        ctx.cancel.check()?;
        let Some(seg) = read_page_zoned(heap, page_no, filters, ctx)? else { continue };
        let sel = eval_filters(&seg, filters, &schema);
        let live = sel.as_ref().map_or(seg.rows(), |s| s.len());
        ctx.batch_stats.rows_selected += live as u64;
        if live == 0 {
            continue;
        }
        let mut batch = ColumnBatch::from_segment_keep(&seg, keep);
        if let Some(sel) = sel {
            batch = batch.with_sel(sel);
        }
        ctx.batch_stats.cols_scanned += batch.width() as u64;
        batches += batch.emit_chunked(ctx.batch_size, out)?;
    }
    ctx.batch_stats.batches += batches;
    ctx.batch_stats.fused_scans += 1;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn index_scan_batched(
    table: &str,
    column: &str,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
    filters: &[BoundPred],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
    let width = t.schema.arity();
    let index = catalog.index(table, column).ok_or_else(|| ExecError::UnknownColumn {
        rel: table.into(),
        column: format!("{column} (no index)"),
    })?;
    ctx.cancel.check()?;
    let rids = index.lookup(ctx.pool, as_ref_bound(lo), as_ref_bound(hi))?;
    ctx.pool.charge_cpu(rids.len() as u64);
    // Same page grouping as the row path: sorted rids, one random page
    // access serving all slots of a page.
    let mut by_page: Vec<(PageId, Vec<u16>)> = Vec::new();
    let mut sorted = rids;
    sorted.sort();
    for rid in sorted {
        match by_page.last_mut() {
            Some((pid, slots)) if *pid == rid.page => slots.push(rid.slot),
            _ => by_page.push((rid.page, vec![rid.slot])),
        }
    }
    let mut em = Emitter::new(width, ctx.batch_size, out);
    for (pid, slots) in by_page {
        ctx.cancel.check()?;
        let page = ctx.pool.read_page(pid, AccessKind::Random)?;
        ctx.pool.charge_cpu(slots.len() as u64);
        for slot in slots {
            if let Some(bytes) = page.get(slot as usize)? {
                let tuple = Tuple::decode(bytes)?;
                if apply_filters(&tuple, filters) {
                    em.push_row(tuple.into_values())?;
                }
            }
        }
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    Ok(())
}

/// Hash-join build storage: gathered build rows plus key→row-index
/// buckets, split into one or more partitions by key hash. A serial
/// build uses a single partition (and never hashes); a parallel build
/// uses one partition per worker. A key lives in exactly one partition
/// and partition inserts walk the build input in arrival order, so
/// bucket order — and therefore probe output order — is identical at
/// any partition count.
struct JoinTable {
    parts: Vec<JoinPart>,
}

#[derive(Default)]
struct JoinPart {
    buckets: HashMap<Value, Vec<u32>>,
    rows: Vec<Vec<Value>>,
}

impl JoinTable {
    fn single() -> Self {
        JoinTable { parts: vec![JoinPart::default()] }
    }

    fn part_of(&self, key: &Value) -> &JoinPart {
        match self.parts.len() {
            1 => &self.parts[0],
            n => &self.parts[(key_hash(key) % n as u64) as usize],
        }
    }

    fn insert_serial(&mut self, key: Value, row: Vec<Value>) {
        debug_assert_eq!(self.parts.len(), 1);
        let part = &mut self.parts[0];
        part.buckets.entry(key).or_default().push(part.rows.len() as u32);
        part.rows.push(row);
    }

    fn row_count(&self) -> u64 {
        self.parts.iter().map(|p| p.rows.len() as u64).sum()
    }
}

/// Partition hash for join keys (SipHash with fixed zero keys: stable
/// across runs and thread counts). Partition layout is wall-clock state
/// only, never observable in results or accounting.
fn key_hash(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Build-side pre-digest of one row: key hash, key, gathered row,
/// encoded length (for the build-bytes memory charge).
type BuildDigest = Vec<(u64, Value, Vec<Value>, u32)>;

/// Consume the join's left input into a [`JoinTable`], returning it with
/// the total encoded bytes of the stored rows.
fn build_join_table(
    left: &Plan,
    lkey: usize,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<(JoinTable, u64)> {
    if ctx.threads > 1 {
        if let PlanNode::SeqScan { table, filters } = &left.node {
            let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            if use_parallel(ctx, t.heap.pages(ctx.pool)) {
                let heap = t.heap;
                let schema = t.schema.clone();
                return build_join_table_parallel(heap, schema, filters, lkey, ctx);
            }
        }
    }
    let mut table = JoinTable::single();
    let mut bytes = 0u64;
    run_batched(left, catalog, ctx, &mut |b: ColumnBatch| {
        for row in 0..b.len() {
            let key = b.value(row, lkey);
            if !key.is_null() {
                bytes += b.row_encoded_len(row) as u64;
                table.insert_serial(key.clone(), b.gather_row(row));
            }
        }
        Ok(())
    })?;
    Ok((table, bytes))
}

/// The partitioned parallel build. Phase 1: a morsel scan pre-digests
/// each chunk (hash, key, gathered row, encoded length) on the workers;
/// the ordered merge keeps digests in the serial build's arrival order.
/// Phase 2: one insert task per partition walks every digest in order,
/// keeping only its hash class, so each bucket's row order equals the
/// serial single-table insertion order.
fn build_join_table_parallel(
    heap: HeapFile,
    schema: Schema,
    filters: &[BoundPred],
    lkey: usize,
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<(JoinTable, u64)> {
    let cap = ctx.batch_size;
    let map: ScanMap<BuildDigest> = Arc::new(move |batch, stats| {
        // Chunk exactly as the serial build's fused scan feeding the
        // insert loop would, so `batches`/`cols_scanned` stay identical.
        stats.cols_scanned += batch.width() as u64;
        let mut chunks = Vec::new();
        stats.batches += batch.emit_chunked(cap, &mut |b| {
            let mut d = BuildDigest::new();
            for row in 0..b.len() {
                let key = b.value(row, lkey);
                if !key.is_null() {
                    d.push((
                        key_hash(key),
                        key.clone(),
                        b.gather_row(row),
                        b.row_encoded_len(row) as u32,
                    ));
                }
            }
            chunks.push(d);
            Ok(())
        })?;
        Ok(chunks)
    });
    let mut digests: Vec<BuildDigest> = Vec::new();
    parallel_fused_scan(heap, schema, filters, None, ctx, map, &mut |d| {
        digests.push(d);
        Ok(())
    })?;
    ctx.batch_stats.fused_scans += 1;
    let bytes: u64 = digests.iter().flatten().map(|(_, _, _, len)| *len as u64).sum();
    let parts_n = effective_workers(ctx.threads);
    let tracer = ctx.pool.observer().tracer().clone();
    let span_parent = tracer.current();
    let virt_now = ctx.pool.observer().now_micros();
    if parts_n == 1 {
        // One partition owns every hash class, so the digests can be
        // consumed in place — the shared-`Arc` clone per row below exists
        // only because concurrent partition tasks read the same digests.
        let span = tracer.begin_at(span_parent, SpanKind::Morsel, "join_partition", virt_now);
        let mut part = JoinPart::default();
        for d in digests {
            for (_, key, row, _) in d {
                part.buckets.entry(key).or_default().push(part.rows.len() as u32);
                part.rows.push(row);
            }
        }
        let rows = part.rows.len();
        span.finish_with(virt_now, |a| a.push(("rows", rows.into())));
        return Ok((JoinTable { parts: vec![part] }, bytes));
    }
    let digests = Arc::new(digests);
    let tasks: Vec<MorselTask<JoinPart>> = (0..parts_n)
        .map(|p| {
            let digests = Arc::clone(&digests);
            let tracer = tracer.clone();
            let task: MorselTask<JoinPart> = Box::new(move |_abort| {
                let span =
                    tracer.begin_at(span_parent, SpanKind::Morsel, "join_partition", virt_now);
                let mut part = JoinPart::default();
                for d in digests.iter() {
                    for (h, key, row, _) in d {
                        if (*h % parts_n as u64) as usize == p {
                            part.buckets
                                .entry(key.clone())
                                .or_default()
                                .push(part.rows.len() as u32);
                            part.rows.push(row.clone());
                        }
                    }
                }
                let rows = part.rows.len();
                span.finish_with(virt_now, |a| a.push(("rows", rows.into())));
                Ok(part)
            });
            task
        })
        .collect();
    let mut parts = Vec::with_capacity(parts_n);
    stream_ordered(parts_n, tasks, &mut |p| {
        parts.push(p);
        Ok(())
    })?;
    Ok((JoinTable { parts }, bytes))
}

#[allow(clippy::too_many_arguments)]
fn hash_join_batched(
    left: &Plan,
    right: &Plan,
    lkey: usize,
    rkey: usize,
    residual: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    // Build phase: consume the left input batch-wise. Keys are gathered
    // from the key column only; stored rows are gathered once into a
    // row store indexed by the hash table's buckets.
    let (table, build_bytes) = build_join_table(left, lkey, catalog, ctx)?;
    ctx.pool.charge_cpu(table.row_count());
    ctx.pool.charge_mem(build_bytes);
    // Same hybrid-hash spill model as the row path (see crate::run).
    let pool_bytes = ctx.pool.capacity() as u64 * specdb_storage::PAGE_SIZE as u64;
    let spill_fraction = if ctx.pool.spill_model() && build_bytes > pool_bytes {
        1.0 - pool_bytes as f64 / build_bytes as f64
    } else {
        0.0
    };
    let mut probe_bytes: u64 = 0;
    let width = left.cols.len() + right.cols.len();
    let mut em = Emitter::new(width, ctx.batch_size, out);
    // Probe phase: probe rows arrive in scan order, so match output
    // order is identical to the row path (bucket insertion order). A
    // sequential-scan probe side fuses into the probe loop: keys and
    // residual columns are read straight from the segment's columns and
    // only join *matches* are gathered.
    if let PlanNode::SeqScan { table: rtable, filters: rfilters } = &right.node {
        let rt = catalog.table(rtable).ok_or_else(|| ExecError::UnknownTable(rtable.into()))?;
        let heap = rt.heap;
        let rschema = rt.schema.clone();
        if use_parallel(ctx, heap.pages(ctx.pool)) {
            // Workers probe the shared build table against their pages;
            // the coordinator re-feeds the matched rows through the one
            // emitter in page order, so output batch boundaries equal
            // the serial probe's. (Workers skip all-filtered pages; the
            // serial loop probes them as empty batches — a no-op either
            // way.)
            let shared_table = Arc::new(table);
            let probe_table = Arc::clone(&shared_table);
            let residual_owned = residual.to_vec();
            let map: ScanMap<(Vec<Vec<Value>>, u64)> = Arc::new(move |batch, _stats| {
                let mut rows: Vec<Vec<Value>> = Vec::new();
                let mut bytes = 0u64;
                for row in 0..batch.len() {
                    bytes += batch.row_encoded_len(row) as u64;
                    let key = batch.value(row, rkey);
                    if key.is_null() {
                        continue;
                    }
                    let part = probe_table.part_of(key);
                    if let Some(matches) = part.buckets.get(key) {
                        for &li in matches {
                            let l = &part.rows[li as usize];
                            let pass = residual_owned.iter().all(|&(lc, rc)| {
                                l[lc] == *batch.value(row, rc) && !l[lc].is_null()
                            });
                            if pass {
                                rows.push(l.iter().cloned().chain(batch.gather_row(row)).collect());
                            }
                        }
                    }
                }
                Ok(vec![(rows, bytes)])
            });
            parallel_fused_scan(heap, rschema, rfilters, None, ctx, map, &mut |(rows, bytes)| {
                probe_bytes += bytes;
                for r in rows {
                    em.push_row(r)?;
                }
                Ok(())
            })?;
            ctx.batch_stats.fused_scans += 1;
        } else {
            for page_no in 0..heap.pages(ctx.pool) {
                ctx.cancel.check()?;
                let Some(seg) = read_page_zoned(heap, page_no, rfilters, ctx)? else { continue };
                let sel = eval_filters(&seg, rfilters, &rschema);
                let live = sel.as_ref().map_or(seg.rows(), |s| s.len());
                ctx.batch_stats.rows_selected += live as u64;
                let batch = match sel {
                    Some(sel) => ColumnBatch::from_segment(&seg).with_sel(sel),
                    None => ColumnBatch::from_segment(&seg),
                };
                probe_columnar(&batch, rkey, residual, &table, &mut probe_bytes, &mut em)?;
            }
            ctx.batch_stats.fused_scans += 1;
        }
    } else {
        run_batched(right, catalog, ctx, &mut |b: ColumnBatch| {
            probe_columnar(&b, rkey, residual, &table, &mut probe_bytes, &mut em)
        })?;
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    if spill_fraction > 0.0 {
        let page = specdb_storage::PAGE_SIZE as f64;
        let pages = (spill_fraction * (build_bytes + probe_bytes) as f64 / page).ceil() as u64;
        ctx.pool.charge_io(pages, pages);
    }
    Ok(())
}

/// Probe one batch against the build side, emitting matches.
fn probe_columnar(
    b: &ColumnBatch,
    rkey: usize,
    residual: &[(usize, usize)],
    table: &JoinTable,
    probe_bytes: &mut u64,
    em: &mut Emitter<'_>,
) -> ExecResult<()> {
    for row in 0..b.len() {
        *probe_bytes += b.row_encoded_len(row) as u64;
        let key = b.value(row, rkey);
        if key.is_null() {
            continue;
        }
        let part = table.part_of(key);
        if let Some(matches) = part.buckets.get(key) {
            for &li in matches {
                let l = &part.rows[li as usize];
                let pass = residual.iter().all(|&(lc, rc)| {
                    debug_assert!(lc < l.len());
                    l[lc] == *b.value(row, rc) && !l[lc].is_null()
                });
                if pass {
                    em.push_row(l.iter().cloned().chain(b.gather_row(row)))?;
                }
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn index_nl_join_batched(
    outer: &Plan,
    inner_table: &str,
    inner_column: &str,
    okey: usize,
    inner_filters: &[BoundPred],
    residual: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    let inner = catalog
        .table(inner_table)
        .ok_or_else(|| ExecError::UnknownTable(inner_table.into()))?;
    let heap = inner.heap;
    let inner_width = inner.schema.arity();
    // As on the row path, the outer side is materialized first: index
    // probes need the pool mutably. Batches are kept columnar.
    let outer_batches = collect_batches(outer, catalog, ctx)?;
    let index =
        catalog
            .index(inner_table, inner_column)
            .ok_or_else(|| ExecError::UnknownColumn {
                rel: inner_table.into(),
                column: format!("{inner_column} (no index)"),
            })?;
    let width = outer.cols.len() + inner_width;
    let mut em = Emitter::new(width, ctx.batch_size, out);
    for b in &outer_batches {
        if b.is_empty() {
            continue;
        }
        // One batched index pass per outer batch: the prober decodes each
        // leaf the batch touches at most once and reuses results for
        // duplicate keys. Probes stay in outer-row order (not sorted key
        // order) because the virtual I/O accounting must replay the
        // per-tuple descent sequence exactly; only decode work is saved.
        let mut prober = index.batch_prober();
        ctx.batch_stats.index_probe_batches += 1;
        for row in 0..b.len() {
            ctx.cancel.check()?;
            let key = b.value(row, okey);
            if key.is_null() {
                continue;
            }
            let rids = prober.lookup_eq(ctx.pool, key)?;
            ctx.pool.charge_cpu(1 + rids.len() as u64);
            for rid in rids {
                let inner_tuple = heap.get(ctx.pool, rid)?;
                if !apply_filters(&inner_tuple, inner_filters) {
                    continue;
                }
                let pass = residual.iter().all(|&(oc, ic)| {
                    *b.value(row, oc) == *inner_tuple.get(ic) && !b.value(row, oc).is_null()
                });
                if pass {
                    em.push_row(b.gather_row(row).into_iter().chain(inner_tuple.into_values()))?;
                }
            }
        }
        ctx.batch_stats.index_probe_saved += prober.saved_descents();
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    Ok(())
}

fn nested_loop_batched(
    left: &Plan,
    right: &Plan,
    cond: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    // Materialize the gathered left rows once; they are re-walked for
    // every right row.
    let mut left_rows: Vec<Vec<Value>> = Vec::new();
    run_batched(left, catalog, ctx, &mut |b: ColumnBatch| {
        for row in 0..b.len() {
            left_rows.push(b.gather_row(row));
        }
        Ok(())
    })?;
    let mut right_count: u64 = 0;
    let width = left.cols.len() + right.cols.len();
    let mut em = Emitter::new(width, ctx.batch_size, out);
    run_batched(right, catalog, ctx, &mut |b: ColumnBatch| {
        for row in 0..b.len() {
            right_count += 1;
            for l in &left_rows {
                let pass =
                    cond.iter().all(|&(lc, rc)| l[lc] == *b.value(row, rc) && !l[lc].is_null());
                if pass {
                    em.push_row(l.iter().cloned().chain(b.gather_row(row)))?;
                }
            }
        }
        Ok(())
    })?;
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    // Same post-hoc CPU charge as the row path.
    ctx.pool.charge_cpu(right_count.saturating_mul(left_rows.len() as u64));
    Ok(())
}

fn aggregate_batched(
    input: &Plan,
    group: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(ColumnBatch) -> ExecResult<()>,
) -> ExecResult<()> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut input_rows: u64 = 0;
    // Accumulators read straight from column vectors: group keys gather
    // only the grouping columns, aggregates only their input column.
    let mut feed = |groups: &mut HashMap<Vec<Value>, Vec<Acc>>, b: &ColumnBatch| {
        for row in 0..b.len() {
            input_rows += 1;
            let key: Vec<Value> = group.iter().map(|&c| b.value(row, c).clone()).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|&(f, _)| Acc::new(f)).collect());
            for (acc, &(_, pos)) in accs.iter_mut().zip(aggs) {
                acc.feed(pos.map(|c| b.value(row, c)));
            }
        }
    };
    // Scan→aggregate fusion: a sequential-scan input feeds the
    // accumulators each page's selected rows directly — nothing is
    // gathered except the grouping and aggregate columns.
    if let PlanNode::SeqScan { table, filters } = &input.node {
        let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
        let heap = t.heap;
        let schema = t.schema.clone();
        if use_parallel(ctx, heap.pages(ctx.pool)) {
            // Workers produce each page's filtered batch; the coordinator
            // feeds the (order-insensitive, but kept in page order anyway)
            // accumulators serially.
            let map: ScanMap<ColumnBatch> = Arc::new(|batch, _stats| Ok(vec![batch]));
            parallel_fused_scan(heap, schema, filters, None, ctx, map, &mut |b| {
                feed(&mut groups, &b);
                Ok(())
            })?;
        } else {
            for page_no in 0..heap.pages(ctx.pool) {
                ctx.cancel.check()?;
                let Some(seg) = read_page_zoned(heap, page_no, filters, ctx)? else { continue };
                let sel = eval_filters(&seg, filters, &schema);
                let live = sel.as_ref().map_or(seg.rows(), |s| s.len());
                ctx.batch_stats.rows_selected += live as u64;
                if live == 0 {
                    continue;
                }
                let batch = match sel {
                    Some(sel) => ColumnBatch::from_segment(&seg).with_sel(sel),
                    None => ColumnBatch::from_segment(&seg),
                };
                feed(&mut groups, &batch);
            }
        }
        ctx.batch_stats.fused_scans += 1;
    } else {
        run_batched(input, catalog, ctx, &mut |b: ColumnBatch| {
            feed(&mut groups, &b);
            Ok(())
        })?;
    }
    ctx.pool.charge_cpu(input_rows);
    // Same SQL convention as the row path: global aggregate over an
    // empty input yields one row.
    if groups.is_empty() && group.is_empty() {
        groups.insert(Vec::new(), aggs.iter().map(|&(f, _)| Acc::new(f)).collect());
    }
    let mut rows: Vec<(Vec<Value>, Vec<Acc>)> = groups.into_iter().collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut em = Emitter::new(group.len() + aggs.len(), ctx.batch_size, out);
    for (key, accs) in rows {
        em.push_row(key.into_iter().chain(accs.into_iter().map(Acc::finish)))?;
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CancelToken;
    use crate::run;
    use specdb_catalog::{ColumnDef, Schema, TableStats};
    use specdb_storage::heap::BulkLoader;
    use specdb_storage::{BufferPool, HeapFile};

    fn fixture() -> (BufferPool, Catalog) {
        let mut pool = BufferPool::new(512);
        let mut cat = Catalog::new();
        let emp_heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(emp_heap, &pool);
        for i in 0..3000i64 {
            loader
                .push(
                    &mut pool,
                    &Tuple::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(20 + i % 50)]),
                )
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let emp_stats = TableStats::analyze(&mut pool, emp_heap, 3).unwrap();
        cat.register(
            "emp",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("dept", DataType::Int),
                ColumnDef::new("age", DataType::Int),
            ]),
            emp_heap,
            emp_stats,
            false,
        );
        let dept_heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(dept_heap, &pool);
        for i in 0..10i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Str(format!("d{i}"))]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let dept_stats = TableStats::analyze(&mut pool, dept_heap, 2).unwrap();
        cat.register(
            "dept",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
            ]),
            dept_heap,
            dept_stats,
            false,
        );
        (pool, cat)
    }

    fn scan(table: &str, cols: &[&str], filters: Vec<BoundPred>) -> Plan {
        Plan {
            node: PlanNode::SeqScan { table: table.into(), filters },
            cols: cols.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Run a plan on both paths from identical cold pools and assert
    /// identical tuples, order, and resource demand.
    fn assert_paths_agree(plan: &Plan) {
        let (mut pool_a, cat_a) = fixture();
        let (mut pool_b, cat_b) = fixture();
        pool_a.clear();
        pool_b.clear();
        let snap_a = pool_a.snapshot();
        let snap_b = pool_b.snapshot();
        let mut ctx = ExecCtx::new(&mut pool_a);
        let rows_row = run::run_collect(plan, &cat_a, &mut ctx).unwrap();
        let mut ctx = ExecCtx::new(&mut pool_b);
        let rows_batch = run_collect_batched(plan, &cat_b, &mut ctx).unwrap();
        assert_eq!(rows_row, rows_batch, "tuples and order must be identical");
        let d_row = pool_a.demand_since(snap_a);
        let d_batch = pool_b.demand_since(snap_b);
        assert_eq!(d_row, d_batch, "resource demand must be identical");
    }

    /// Run a plan serially and with four morsel workers from identical
    /// cold pools and assert identical tuples, order, batch stats, and
    /// resource demand — the bit-identity contract of [`crate::parallel`].
    fn assert_parallel_agrees(plan: &Plan) {
        let (mut pool_a, cat_a) = fixture();
        let (mut pool_b, cat_b) = fixture();
        pool_a.clear();
        pool_b.clear();
        let snap_a = pool_a.snapshot();
        let snap_b = pool_b.snapshot();
        let mut ctx = ExecCtx::new(&mut pool_a);
        let rows_serial = run_collect_batched(plan, &cat_a, &mut ctx).unwrap();
        let stats_serial = ctx.batch_stats;
        let mut ctx = ExecCtx::new(&mut pool_b);
        ctx.threads = 4;
        let rows_parallel = run_collect_batched(plan, &cat_b, &mut ctx).unwrap();
        assert_eq!(rows_serial, rows_parallel, "tuples and order must be identical");
        assert_eq!(stats_serial, ctx.batch_stats, "batch stats must be identical");
        assert_eq!(
            pool_a.demand_since(snap_a),
            pool_b.demand_since(snap_b),
            "resource demand must be identical"
        );
    }

    #[test]
    fn morsel_scan_matches_serial() {
        assert_parallel_agrees(&scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 2, op: CompareOp::Lt, value: Value::Int(30) }],
        ));
    }

    #[test]
    fn morsel_projected_scan_matches_serial() {
        let inner = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 1, op: CompareOp::Eq, value: Value::Int(3) }],
        );
        assert_parallel_agrees(&Plan {
            cols: vec!["emp.age".into(), "emp.id".into()],
            node: PlanNode::Project { input: Box::new(inner), keep: vec![2, 0] },
        });
    }

    #[test]
    fn morsel_hash_join_matches_serial() {
        // emp as the build side makes the build itself big enough to
        // take the partitioned parallel path; dept as the probe side
        // stays serial (single page), covering the mixed case too.
        let join = Plan {
            cols: vec![
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
                "dept.id".into(),
                "dept.name".into(),
            ],
            node: PlanNode::HashJoin {
                left: Box::new(scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![])),
                right: Box::new(scan("dept", &["dept.id", "dept.name"], vec![])),
                lkey: 1,
                rkey: 0,
                residual: vec![],
            },
        };
        assert_parallel_agrees(&join);
        // And the reverse orientation: parallel probe over emp.
        let join = Plan {
            cols: vec![
                "dept.id".into(),
                "dept.name".into(),
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
            ],
            node: PlanNode::HashJoin {
                left: Box::new(scan("dept", &["dept.id", "dept.name"], vec![])),
                right: Box::new(scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![])),
                lkey: 0,
                rkey: 1,
                residual: vec![],
            },
        };
        assert_parallel_agrees(&join);
    }

    #[test]
    fn morsel_aggregate_matches_serial() {
        assert_parallel_agrees(&Plan {
            cols: vec!["emp.dept".into(), "count".into(), "avg_age".into()],
            node: PlanNode::Aggregate {
                input: Box::new(scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![])),
                group: vec![1],
                aggs: vec![(AggFunc::Count, None), (AggFunc::Avg, Some(2))],
            },
        });
    }

    #[test]
    fn morsel_batch_boundaries_match_serial() {
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let boundary_sizes = |threads: usize| {
            let (mut pool, cat) = fixture();
            let mut ctx = ExecCtx::new(&mut pool);
            ctx.batch_size = 256;
            ctx.threads = threads;
            let mut sizes = Vec::new();
            run_batched(&plan, &cat, &mut ctx, &mut |b: ColumnBatch| {
                sizes.push(b.len());
                Ok(())
            })
            .unwrap();
            sizes
        };
        assert_eq!(boundary_sizes(1), boundary_sizes(4), "same batch stream at any thread count");
    }

    #[test]
    fn morsel_scan_respects_cancellation() {
        let (mut pool, cat) = fixture();
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = ExecCtx::with_cancel(&mut pool, token);
        ctx.threads = 4;
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let err = run_collect_batched(&plan, &cat, &mut ctx);
        assert!(err.is_err(), "pre-cancelled token must abort the parallel scan");
    }

    #[test]
    fn fused_scan_matches_row_path() {
        let plan = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 2, op: CompareOp::Lt, value: Value::Int(30) }],
        );
        assert_paths_agree(&plan);
    }

    #[test]
    fn fused_scan_project_matches_row_path() {
        let inner = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 1, op: CompareOp::Eq, value: Value::Int(3) }],
        );
        let plan = Plan {
            cols: vec!["emp.age".into(), "emp.id".into()],
            node: PlanNode::Project { input: Box::new(inner), keep: vec![2, 0] },
        };
        assert_paths_agree(&plan);
    }

    #[test]
    fn hash_join_and_aggregate_match_row_path() {
        let left = scan("dept", &["dept.id", "dept.name"], vec![]);
        let right = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let join = Plan {
            cols: vec![
                "dept.id".into(),
                "dept.name".into(),
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
            ],
            node: PlanNode::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                lkey: 0,
                rkey: 1,
                residual: vec![],
            },
        };
        assert_paths_agree(&join);
        let agg = Plan {
            cols: vec!["dept.name".into(), "count".into(), "avg_age".into()],
            node: PlanNode::Aggregate {
                input: Box::new(join),
                group: vec![1],
                aggs: vec![(AggFunc::Count, None), (AggFunc::Avg, Some(4))],
            },
        };
        assert_paths_agree(&agg);
    }

    #[test]
    fn batches_respect_size_and_cover_all_rows() {
        let (mut pool, cat) = fixture();
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let mut ctx = ExecCtx::new(&mut pool);
        ctx.batch_size = 256;
        let mut sizes = Vec::new();
        run_batched(&plan, &cat, &mut ctx, &mut |b: ColumnBatch| {
            sizes.push(b.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 3000);
        assert!(sizes.iter().all(|&s| s > 0 && s <= 256));
        assert_eq!(ctx.batch_stats.batches, sizes.len() as u64);
        assert_eq!(ctx.batch_stats.fused_scans, 1);
        assert_eq!(ctx.batch_stats.rows_scanned, 3000);
        assert_eq!(ctx.batch_stats.rows_selected, 3000);
        assert_eq!(
            ctx.batch_stats.cols_scanned,
            3 * pool_pages(&pool, &cat),
            "three columns per scanned page"
        );
    }

    fn pool_pages(pool: &BufferPool, cat: &Catalog) -> u64 {
        cat.table("emp").unwrap().heap.pages(pool) as u64
    }

    #[test]
    fn selection_vectors_do_not_copy_columns() {
        let (mut pool, cat) = fixture();
        let plan = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 1, op: CompareOp::Eq, value: Value::Int(7) }],
        );
        let heap = cat.table("emp").unwrap().heap;
        pool.mark_hot(heap.file);
        // Warm the segment cache, then check batches share its columns.
        let mut ctx = ExecCtx::new(&mut pool);
        run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        let mut shared = 0usize;
        let mut ctx = ExecCtx::new(&mut pool);
        run_batched(&plan, &cat, &mut ctx, &mut |b: ColumnBatch| {
            // 300 of 3000 rows match; every batch must carry a selection
            // vector over the full page columns rather than copied rows.
            assert!(b.len() < b.rows, "filter must select, not copy");
            shared += 1;
            Ok(())
        })
        .unwrap();
        assert!(shared > 0);
        let density = ctx.batch_stats.rows_selected as f64 / ctx.batch_stats.rows_scanned as f64;
        assert!((density - 0.1).abs() < 0.01, "dept = 7 selects ~10%, got {density}");
    }

    #[test]
    fn index_nl_join_uses_batch_prober_and_matches_row_path() {
        let build = || {
            let (mut pool, mut cat) = fixture();
            cat.build_index(&mut pool, "emp", "dept").unwrap();
            (pool, cat)
        };
        let plan = Plan {
            cols: vec![
                "dept.id".into(),
                "dept.name".into(),
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
            ],
            node: PlanNode::IndexNLJoin {
                outer: Box::new(scan("dept", &["dept.id", "dept.name"], vec![])),
                inner_table: "emp".into(),
                inner_column: "dept".into(),
                okey: 0,
                inner_filters: vec![],
                residual: vec![],
            },
        };
        let (mut pool_a, cat_a) = build();
        let (mut pool_b, cat_b) = build();
        pool_a.clear();
        pool_b.clear();
        let snap_a = pool_a.snapshot();
        let snap_b = pool_b.snapshot();
        let mut ctx = ExecCtx::new(&mut pool_a);
        let rows_row = run::run_collect(&plan, &cat_a, &mut ctx).unwrap();
        let mut ctx = ExecCtx::new(&mut pool_b);
        let rows_batch = run_collect_batched(&plan, &cat_b, &mut ctx).unwrap();
        let stats = ctx.batch_stats;
        assert_eq!(rows_row, rows_batch);
        assert_eq!(pool_a.demand_since(snap_a), pool_b.demand_since(snap_b));
        assert_eq!(stats.index_probe_batches, 1, "10 outer rows = one batch");
    }

    #[test]
    fn repeat_scan_hits_segment_cache_without_changing_accounting() {
        let (mut pool, cat) = fixture();
        let heap = cat.table("dept").unwrap().heap;
        pool.mark_hot(heap.file);
        let plan = scan("dept", &["dept.id", "dept.name"], vec![]);
        let mut ctx = ExecCtx::new(&mut pool);
        let first = run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        let resident = pool.seg_resident();
        assert!(resident > 0, "hot file should populate the segment cache");
        let snap = pool.snapshot();
        let mut ctx = ExecCtx::new(&mut pool);
        let second = run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(first, second);
        let d = pool.demand_since(snap);
        // Accounting still sees the page accesses (as hits, pool is warm).
        assert_eq!(d.hits, heap.pages(&pool) as u64);
        assert_eq!(d.cpu_tuples, 10);
    }

    #[test]
    fn zone_maps_skip_pages_without_changing_results_or_accounting() {
        // emp.id is loaded in sorted order, so every page's id zone is a
        // disjoint range and `id < 100` qualifies only the first page.
        let plan = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 0, op: CompareOp::Lt, value: Value::Int(100) }],
        );
        // Bit-identity with the row oracle (tuples, order, demand) and
        // with the morsel path (including `pages_skipped` stat equality).
        assert_paths_agree(&plan);
        assert_parallel_agrees(&plan);
        let (mut pool, cat) = fixture();
        let pages = pool_pages(&pool, &cat);
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(
            ctx.batch_stats.pages_skipped,
            pages - 1,
            "all pages but the first are provably out of range"
        );
        assert_eq!(ctx.batch_stats.rows_scanned, 3000, "skipped pages still count their rows");
        // A warm re-scan skips identically (the zone side-cache makes it
        // decode-free, but the counter must not depend on cache state).
        let mut ctx = ExecCtx::new(&mut pool);
        let again = run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows, again);
        assert_eq!(ctx.batch_stats.pages_skipped, pages - 1);
    }

    #[test]
    fn encoded_filters_match_plain_filters() {
        // dept (i % 10) dictionary-encodes, age (20 + i % 50) has runs
        // too short to RLE, id is unique: the same plan exercises dict,
        // plain, and zone logic against the row oracle in one pass.
        for (idx, op, value) in [
            (1, CompareOp::Eq, Value::Int(7)),
            (1, CompareOp::Ne, Value::Int(3)),
            (2, CompareOp::Ge, Value::Int(60)),
            (0, CompareOp::Gt, Value::Int(2900)),
        ] {
            let plan =
                scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![BoundPred { idx, op, value }]);
            assert_paths_agree(&plan);
        }
    }

    #[test]
    fn cancellation_aborts_batched_scan() {
        let (mut pool, cat) = fixture();
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = ExecCtx::with_cancel(&mut pool, token);
        let err = run_collect_batched(&plan, &cat, &mut ctx).unwrap_err();
        assert!(err.is_cancelled());
    }
}
