//! Error types for planning and execution.

use specdb_storage::StorageError;
use std::fmt;

/// Errors raised by the query processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist on its relation.
    UnknownColumn {
        /// The relation searched.
        rel: String,
        /// The missing column.
        column: String,
    },
    /// Underlying storage failure (including cancellation).
    Storage(StorageError),
    /// A value of the wrong type was loaded into a column.
    TypeMismatch {
        /// Target table.
        table: String,
        /// Offending column.
        column: String,
    },
    /// The query graph was empty (nothing to execute).
    EmptyQuery,
}

impl ExecError {
    /// True if this error is a cancellation (not a real failure).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ExecError::Storage(StorageError::Cancelled))
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ExecError::UnknownColumn { rel, column } => {
                write!(f, "unknown column '{column}' on '{rel}'")
            }
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::TypeMismatch { table, column } => {
                write!(f, "type mismatch loading {table}.{column}")
            }
            ExecError::EmptyQuery => write!(f, "query graph is empty"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// Result alias for the query processor.
pub type ExecResult<T> = Result<T, ExecError>;
