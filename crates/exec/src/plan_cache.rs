//! Plan and estimate memoization keyed on canonical graph keys.
//!
//! Planning the same query graph repeatedly is the common case in this
//! workspace: the speculator re-scores the same candidate sub-queries on
//! every user edit, and trace replay executes canonically identical
//! final queries many times. Every planning input is a pure function of
//! catalog state (tables, statistics, indexes, histograms, registered
//! views) plus static pool parameters (capacity, spill model) — buffer
//! *residency* is never consulted — so a cached plan or estimate stays
//! exact until a DDL-ish operation changes the catalog.
//!
//! Invalidation is wholesale by **DDL epoch**: [`crate::Database`] bumps
//! the epoch on `create_table`/`load`/`create_index`/`drop_index`/
//! `create_histogram`/`drop_histogram`/`materialize`/`drop_materialized`
//! and on view-mode/match-mode changes, and the bump empties the cache.
//! Entries are therefore never stale, which is what makes cached and
//! uncached replays bit-identical (see `tests/determinism.rs`).

use crate::engine::MatEstimate;
use crate::plan::Plan;
use specdb_query::canonical_key;
use specdb_storage::VirtualTime;
use std::collections::HashMap;
use std::fmt::Write;

/// Per-map entry ceiling; hitting it clears that map (deterministic, and
/// far above what a replay session accumulates between DDL epochs).
const MAX_ENTRIES: usize = 4096;

/// Hit/miss counters, exposed via `Database::plan_cache_stats` so tests
/// and benchmarks can observe invalidation behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the planner/estimator.
    pub misses: u64,
    /// DDL-epoch bumps that emptied the cache.
    pub invalidations: u64,
}

/// Bounded memo table for plans and estimates, invalidated by DDL epoch.
#[derive(Clone, Default)]
pub struct PlanCache {
    enabled: bool,
    epoch: u64,
    plans: HashMap<String, (Plan, Vec<String>)>,
    times: HashMap<String, VirtualTime>,
    mats: HashMap<String, MatEstimate>,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// Empty cache; `enabled = false` makes every lookup miss without
    /// storing anything (the comparison arm for benchmarks and the
    /// determinism test).
    pub fn new(enabled: bool) -> Self {
        PlanCache { enabled, ..Default::default() }
    }

    /// Is memoization active?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle memoization; disabling drops all entries.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.clear();
        }
    }

    /// Current DDL epoch (bumped by every catalog-changing operation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a catalog change: advance the epoch and drop every entry.
    /// The epoch advances even while disabled so external observers (the
    /// incremental manipulation space) can key off it.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        if !self.plans.is_empty() || !self.times.is_empty() || !self.mats.is_empty() {
            self.stats.invalidations += 1;
            self.clear();
        }
    }

    /// Counters since construction.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.plans.len() + self.times.len() + self.mats.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn clear(&mut self) {
        self.plans.clear();
        self.times.clear();
        self.mats.clear();
    }

    /// Cached physical plan and the view names its rewrite used.
    pub fn get_plan(&mut self, key: &str) -> Option<(Plan, Vec<String>)> {
        if !self.enabled {
            return None;
        }
        let hit = self.plans.get(key).cloned();
        self.count(hit.is_some());
        hit
    }

    /// Store a plan (no-op while disabled).
    pub fn put_plan(&mut self, key: String, plan: &Plan, used_views: &[String]) {
        if self.enabled {
            if self.plans.len() >= MAX_ENTRIES {
                self.plans.clear();
            }
            self.plans.insert(key, (plan.clone(), used_views.to_vec()));
        }
    }

    /// Cached time estimate (`est:`/`base:`-prefixed keys).
    pub fn get_time(&mut self, key: &str) -> Option<VirtualTime> {
        if !self.enabled {
            return None;
        }
        let hit = self.times.get(key).copied();
        self.count(hit.is_some());
        hit
    }

    /// Store a time estimate (no-op while disabled).
    pub fn put_time(&mut self, key: String, t: VirtualTime) {
        if self.enabled {
            if self.times.len() >= MAX_ENTRIES {
                self.times.clear();
            }
            self.times.insert(key, t);
        }
    }

    /// Cached materialization estimate.
    pub fn get_mat(&mut self, key: &str) -> Option<MatEstimate> {
        if !self.enabled {
            return None;
        }
        let hit = self.mats.get(key).copied();
        self.count(hit.is_some());
        hit
    }

    /// Store a materialization estimate (no-op while disabled).
    pub fn put_mat(&mut self, key: String, est: MatEstimate) {
        if self.enabled {
            if self.mats.len() >= MAX_ENTRIES {
                self.mats.clear();
            }
            self.mats.insert(key, est);
        }
    }

    fn count(&mut self, hit: bool) {
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }
}

/// Cache key for a full query: the graph's canonical key plus the
/// projection list and aggregate layer (two queries over the same graph
/// can differ in either). View-mode/match-mode/join-order are not part
/// of the key because changing them bumps the DDL epoch (or is fixed at
/// construction, for join order).
pub fn query_key(query: &specdb_query::Query) -> String {
    let mut s = canonical_key(&query.graph);
    for (rel, col) in &query.projections {
        write!(s, "P({rel},{col});").unwrap();
    }
    if let Some(agg) = &query.agg {
        for (rel, col) in &agg.group_by {
            write!(s, "G({rel},{col});").unwrap();
        }
        for a in &agg.aggs {
            write!(s, "A({a});").unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_query::{CompareOp, Predicate, Query, QueryGraph, Selection};

    fn graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("t", Predicate::new("a", CompareOp::Lt, 5i64)));
        g
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = PlanCache::new(false);
        c.put_time("k".into(), VirtualTime::from_secs(1));
        assert_eq!(c.get_time("k"), None);
        assert_eq!(c.stats(), PlanCacheStats::default());
        assert!(c.is_empty());
    }

    #[test]
    fn epoch_bump_empties_and_counts() {
        let mut c = PlanCache::new(true);
        c.put_time("k".into(), VirtualTime::from_secs(1));
        assert!(c.get_time("k").is_some());
        c.bump_epoch();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.get_time("k"), None);
        assert_eq!(c.stats().invalidations, 1);
        // Bumping an empty cache advances the epoch without counting an
        // invalidation.
        c.bump_epoch();
        assert_eq!(c.epoch(), 2);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = PlanCache::new(true);
        assert!(c.get_time("k").is_none());
        c.put_time("k".into(), VirtualTime::from_secs(2));
        assert_eq!(c.get_time("k"), Some(VirtualTime::from_secs(2)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn query_key_separates_projection_and_aggregate_variants() {
        let star = Query::star(graph());
        let proj = Query::star(graph()).project("t", "a");
        assert_ne!(query_key(&star), query_key(&proj));
        assert!(query_key(&star).starts_with(&canonical_key(&graph())));
    }

    #[test]
    fn capacity_clears_rather_than_grows() {
        let mut c = PlanCache::new(true);
        for i in 0..(MAX_ENTRIES + 10) {
            c.put_time(format!("k{i}"), VirtualTime::from_secs(1));
        }
        assert!(c.len() <= MAX_ENTRIES);
    }
}
