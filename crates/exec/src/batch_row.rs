//! Row-major batch execution (the pre-columnar pipeline).
//!
//! This is the first-generation batch pipeline: operators exchange
//! [`Batch`] = `Vec<Tuple>` chunks of up to [`DEFAULT_BATCH_SIZE`]
//! tuples, with scan→filter→{project, probe, aggregate} fusion. The
//! default executor is now the columnar pipeline in [`crate::batch`]
//! (column vectors + selection vectors); this module is retained as
//! [`crate::engine::ExecMode::BatchRow`] so the `executor` bench can
//! report the row-major → columnar progression (`row` / `batch-row` /
//! `batch-columnar`), and as a second differential witness against the
//! row oracle.
//!
//! **Equivalence contract** (same as the columnar path): for any plan,
//! this path produces the same tuples in the same order as
//! [`crate::run::run`], and charges the same virtual-time resource
//! demand. Scans gather row-major tuples from the columnar segment cache
//! ([`specdb_storage::BufferPool::read_page_decoded`]), which performs
//! ordinary `read_page` bookkeeping first.

use crate::context::ExecCtx;
use crate::error::{ExecError, ExecResult};
use crate::plan::{BoundPred, Plan, PlanNode};
use crate::run::{as_ref_bound, Acc};
use specdb_catalog::Catalog;
use specdb_query::AggFunc;
use specdb_storage::{AccessKind, PageId, Tuple, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// A chunk of tuples exchanged between batch operators.
pub type Batch = Vec<Tuple>;

/// Default number of tuples per [`Batch`].
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Accumulates tuples and flushes a [`Batch`] to `out` whenever
/// `cap` tuples are buffered (and once more at the end for the tail).
struct Emitter<'o> {
    buf: Batch,
    cap: usize,
    batches: u64,
    out: &'o mut dyn FnMut(Batch) -> ExecResult<()>,
}

impl<'o> Emitter<'o> {
    fn new(cap: usize, out: &'o mut dyn FnMut(Batch) -> ExecResult<()>) -> Self {
        Emitter { buf: Vec::new(), cap: cap.max(1), batches: 0, out }
    }

    fn push(&mut self, t: Tuple) -> ExecResult<()> {
        self.buf.push(t);
        if self.buf.len() >= self.cap {
            self.flush()
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> ExecResult<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.batches += 1;
        let full = std::mem::take(&mut self.buf);
        (self.out)(full)
    }

    /// Flush the tail and return how many batches were emitted.
    fn finish(mut self) -> ExecResult<u64> {
        self.flush()?;
        Ok(self.batches)
    }
}

/// Execute a plan, invoking `out` for every batch of result tuples.
///
/// Batches are non-empty and hold at most [`ExecCtx::batch_size`]
/// tuples; concatenated they are exactly the row path's output.
pub fn run_batched(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    match &plan.node {
        PlanNode::SeqScan { table, filters } => {
            fused_seq_scan(table, filters, None, catalog, ctx, out)
        }
        // Scan→filter→project fusion: a projection directly above a
        // sequential scan folds into the scan's batch-producing loop.
        PlanNode::Project { input, keep } => match &input.node {
            PlanNode::SeqScan { table, filters } => {
                fused_seq_scan(table, filters, Some(keep), catalog, ctx, out)
            }
            _ => run_batched(input, catalog, ctx, &mut |b: Batch| {
                out(b.into_iter().map(|t| t.project(keep)).collect())
            }),
        },
        PlanNode::IndexScan { table, column, lo, hi, filters } => {
            index_scan_batched(table, column, lo, hi, filters, catalog, ctx, out)
        }
        PlanNode::HashJoin { left, right, lkey, rkey, residual } => {
            hash_join_batched(left, right, *lkey, *rkey, residual, catalog, ctx, out)
        }
        PlanNode::IndexNLJoin {
            outer,
            inner_table,
            inner_column,
            okey,
            inner_filters,
            residual,
        } => index_nl_join_batched(
            outer,
            inner_table,
            inner_column,
            *okey,
            inner_filters,
            residual,
            catalog,
            ctx,
            out,
        ),
        PlanNode::NestedLoop { left, right, cond } => {
            nested_loop_batched(left, right, cond, catalog, ctx, out)
        }
        PlanNode::Aggregate { input, group, aggs } => {
            aggregate_batched(input, group, aggs, catalog, ctx, out)
        }
    }
}

/// Execute a plan on the batch path and collect all results.
pub fn run_collect_batched(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
) -> ExecResult<Vec<Tuple>> {
    let mut rows = Vec::new();
    run_batched(plan, catalog, ctx, &mut |mut b: Batch| {
        rows.append(&mut b);
        Ok(())
    })?;
    Ok(rows)
}

fn apply_filters(t: &Tuple, filters: &[BoundPred]) -> bool {
    filters.iter().all(|f| f.matches(t))
}

/// The fused scan→filter(→project) loop: one pass over the heap pages
/// produces filtered (and optionally projected) batches directly.
///
/// Accounting matches the row path exactly: one sequential page access
/// and `charge_cpu(page tuples)` per page, whether or not the decoded
/// segment cache serves the tuples.
fn fused_seq_scan(
    table: &str,
    filters: &[BoundPred],
    keep: Option<&[usize]>,
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
    let heap = t.heap;
    let mut em = Emitter::new(ctx.batch_size, out);
    for page_no in 0..heap.pages(ctx.pool) {
        ctx.cancel.check()?;
        let tuples = heap.read_page_decoded(ctx.pool, page_no)?;
        ctx.pool.charge_cpu(tuples.len() as u64);
        for tuple in tuples.iter() {
            if apply_filters(tuple, filters) {
                match keep {
                    Some(keep) => em.push(tuple.project(keep))?,
                    None => em.push(tuple.clone())?,
                }
            }
        }
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    ctx.batch_stats.fused_scans += 1;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn index_scan_batched(
    table: &str,
    column: &str,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
    filters: &[BoundPred],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    let _t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
    let index = catalog.index(table, column).ok_or_else(|| ExecError::UnknownColumn {
        rel: table.into(),
        column: format!("{column} (no index)"),
    })?;
    ctx.cancel.check()?;
    let rids = index.lookup(ctx.pool, as_ref_bound(lo), as_ref_bound(hi))?;
    ctx.pool.charge_cpu(rids.len() as u64);
    // Same page grouping as the row path: sorted rids, one random page
    // access serving all slots of a page.
    let mut by_page: Vec<(PageId, Vec<u16>)> = Vec::new();
    let mut sorted = rids;
    sorted.sort();
    for rid in sorted {
        match by_page.last_mut() {
            Some((pid, slots)) if *pid == rid.page => slots.push(rid.slot),
            _ => by_page.push((rid.page, vec![rid.slot])),
        }
    }
    let mut em = Emitter::new(ctx.batch_size, out);
    for (pid, slots) in by_page {
        ctx.cancel.check()?;
        let page = ctx.pool.read_page(pid, AccessKind::Random)?;
        ctx.pool.charge_cpu(slots.len() as u64);
        for slot in slots {
            if let Some(bytes) = page.get(slot as usize)? {
                let tuple = Tuple::decode(bytes)?;
                if apply_filters(&tuple, filters) {
                    em.push(tuple)?;
                }
            }
        }
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn hash_join_batched(
    left: &Plan,
    right: &Plan,
    lkey: usize,
    rkey: usize,
    residual: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    // Build phase: consume the left input batch-wise into a hash table.
    let mut table: HashMap<Value, Vec<Tuple>> = HashMap::new();
    let mut build_bytes: u64 = 0;
    run_batched(left, catalog, ctx, &mut |b: Batch| {
        for t in b {
            let key = t.get(lkey).clone();
            if !key.is_null() {
                build_bytes += t.encoded_len() as u64;
                table.entry(key).or_default().push(t);
            }
        }
        Ok(())
    })?;
    ctx.pool.charge_cpu(table.values().map(|v| v.len() as u64).sum());
    ctx.pool.charge_mem(build_bytes);
    // Same hybrid-hash spill model as the row path (see crate::run).
    let pool_bytes = ctx.pool.capacity() as u64 * specdb_storage::PAGE_SIZE as u64;
    let spill_fraction = if ctx.pool.spill_model() && build_bytes > pool_bytes {
        1.0 - pool_bytes as f64 / build_bytes as f64
    } else {
        0.0
    };
    let mut probe_bytes: u64 = 0;
    // Probe phase: probe rows arrive in scan order, so match output
    // order is identical to the row path (bucket insertion order). A
    // sequential-scan probe side fuses into the probe loop: rows are
    // probed as borrowed segment-cache tuples and only join *matches*
    // are materialized, instead of cloning every probe-side row first.
    let lwidth = left.cols.len();
    let mut em = Emitter::new(ctx.batch_size, out);
    let mut probe = |r: &Tuple, em: &mut Emitter<'_>| -> ExecResult<()> {
        probe_bytes += r.encoded_len() as u64;
        let key = r.get(rkey);
        if key.is_null() {
            return Ok(());
        }
        if let Some(matches) = table.get(key) {
            for l in matches {
                let pass = residual.iter().all(|&(li, ri)| {
                    debug_assert!(li < lwidth);
                    l.get(li) == r.get(ri) && !l.get(li).is_null()
                });
                if pass {
                    em.push(l.concat(r))?;
                }
            }
        }
        Ok(())
    };
    if let PlanNode::SeqScan { table: rtable, filters: rfilters } = &right.node {
        let rt = catalog.table(rtable).ok_or_else(|| ExecError::UnknownTable(rtable.into()))?;
        let heap = rt.heap;
        for page_no in 0..heap.pages(ctx.pool) {
            ctx.cancel.check()?;
            let tuples = heap.read_page_decoded(ctx.pool, page_no)?;
            ctx.pool.charge_cpu(tuples.len() as u64);
            for r in tuples.iter() {
                if apply_filters(r, rfilters) {
                    probe(r, &mut em)?;
                }
            }
        }
        ctx.batch_stats.fused_scans += 1;
    } else {
        run_batched(right, catalog, ctx, &mut |b: Batch| {
            for r in b {
                probe(&r, &mut em)?;
            }
            Ok(())
        })?;
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    if spill_fraction > 0.0 {
        let page = specdb_storage::PAGE_SIZE as f64;
        let pages = (spill_fraction * (build_bytes + probe_bytes) as f64 / page).ceil() as u64;
        ctx.pool.charge_io(pages, pages);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn index_nl_join_batched(
    outer: &Plan,
    inner_table: &str,
    inner_column: &str,
    okey: usize,
    inner_filters: &[BoundPred],
    residual: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    let inner = catalog
        .table(inner_table)
        .ok_or_else(|| ExecError::UnknownTable(inner_table.into()))?;
    let heap = inner.heap;
    // As on the row path, the outer side is materialized first: index
    // probes need the pool mutably.
    let outer_rows = run_collect_batched(outer, catalog, ctx)?;
    let index =
        catalog
            .index(inner_table, inner_column)
            .ok_or_else(|| ExecError::UnknownColumn {
                rel: inner_table.into(),
                column: format!("{inner_column} (no index)"),
            })?;
    let mut em = Emitter::new(ctx.batch_size, out);
    for o in &outer_rows {
        ctx.cancel.check()?;
        let key = o.get(okey);
        if key.is_null() {
            continue;
        }
        let rids = index.lookup_eq(ctx.pool, key)?;
        ctx.pool.charge_cpu(1 + rids.len() as u64);
        for rid in rids {
            let inner_tuple = heap.get(ctx.pool, rid)?;
            if !apply_filters(&inner_tuple, inner_filters) {
                continue;
            }
            let pass = residual
                .iter()
                .all(|&(oi, ii)| o.get(oi) == inner_tuple.get(ii) && !o.get(oi).is_null());
            if pass {
                em.push(o.concat(&inner_tuple))?;
            }
        }
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    Ok(())
}

fn nested_loop_batched(
    left: &Plan,
    right: &Plan,
    cond: &[(usize, usize)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    let left_rows = run_collect_batched(left, catalog, ctx)?;
    let mut right_count: u64 = 0;
    let mut em = Emitter::new(ctx.batch_size, out);
    run_batched(right, catalog, ctx, &mut |b: Batch| {
        for r in b {
            right_count += 1;
            for l in &left_rows {
                let pass =
                    cond.iter().all(|&(li, ri)| l.get(li) == r.get(ri) && !l.get(li).is_null());
                if pass {
                    em.push(l.concat(&r))?;
                }
            }
        }
        Ok(())
    })?;
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    // Same post-hoc CPU charge as the row path.
    ctx.pool.charge_cpu(right_count.saturating_mul(left_rows.len() as u64));
    Ok(())
}

fn aggregate_batched(
    input: &Plan,
    group: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    catalog: &Catalog,
    ctx: &mut ExecCtx<'_>,
    out: &mut dyn FnMut(Batch) -> ExecResult<()>,
) -> ExecResult<()> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut input_rows: u64 = 0;
    let mut feed = |t: &Tuple| {
        input_rows += 1;
        let key: Vec<Value> = group.iter().map(|&i| t.get(i).clone()).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|&(f, _)| Acc::new(f)).collect());
        for (acc, &(_, pos)) in accs.iter_mut().zip(aggs) {
            acc.feed(pos.map(|i| t.get(i)));
        }
    };
    // Scan→aggregate fusion: accumulators only *read* column values, so
    // a sequential-scan input feeds them borrowed segment-cache tuples
    // directly — no tuples are cloned through an intermediate batch.
    if let PlanNode::SeqScan { table, filters } = &input.node {
        let t = catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
        let heap = t.heap;
        for page_no in 0..heap.pages(ctx.pool) {
            ctx.cancel.check()?;
            let tuples = heap.read_page_decoded(ctx.pool, page_no)?;
            ctx.pool.charge_cpu(tuples.len() as u64);
            for tuple in tuples.iter() {
                if apply_filters(tuple, filters) {
                    feed(tuple);
                }
            }
        }
        ctx.batch_stats.fused_scans += 1;
    } else {
        run_batched(input, catalog, ctx, &mut |b: Batch| {
            for t in b {
                feed(&t);
            }
            Ok(())
        })?;
    }
    ctx.pool.charge_cpu(input_rows);
    // Same SQL convention as the row path: global aggregate over an
    // empty input yields one row.
    if groups.is_empty() && group.is_empty() {
        groups.insert(Vec::new(), aggs.iter().map(|&(f, _)| Acc::new(f)).collect());
    }
    let mut rows: Vec<(Vec<Value>, Vec<Acc>)> = groups.into_iter().collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut em = Emitter::new(ctx.batch_size, out);
    for (mut key, accs) in rows {
        key.extend(accs.into_iter().map(Acc::finish));
        em.push(Tuple::new(key))?;
    }
    let batches = em.finish()?;
    ctx.batch_stats.batches += batches;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CancelToken;
    use crate::run;
    use specdb_catalog::{ColumnDef, DataType, Schema, TableStats};
    use specdb_query::CompareOp;
    use specdb_storage::heap::BulkLoader;
    use specdb_storage::{BufferPool, HeapFile};

    fn fixture() -> (BufferPool, Catalog) {
        let mut pool = BufferPool::new(512);
        let mut cat = Catalog::new();
        let emp_heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(emp_heap, &pool);
        for i in 0..3000i64 {
            loader
                .push(
                    &mut pool,
                    &Tuple::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(20 + i % 50)]),
                )
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let emp_stats = TableStats::analyze(&mut pool, emp_heap, 3).unwrap();
        cat.register(
            "emp",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("dept", DataType::Int),
                ColumnDef::new("age", DataType::Int),
            ]),
            emp_heap,
            emp_stats,
            false,
        );
        let dept_heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(dept_heap, &pool);
        for i in 0..10i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Str(format!("d{i}"))]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let dept_stats = TableStats::analyze(&mut pool, dept_heap, 2).unwrap();
        cat.register(
            "dept",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
            ]),
            dept_heap,
            dept_stats,
            false,
        );
        (pool, cat)
    }

    fn scan(table: &str, cols: &[&str], filters: Vec<BoundPred>) -> Plan {
        Plan {
            node: PlanNode::SeqScan { table: table.into(), filters },
            cols: cols.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Run a plan on both paths from identical cold pools and assert
    /// identical tuples, order, and resource demand.
    fn assert_paths_agree(plan: &Plan) {
        let (mut pool_a, cat_a) = fixture();
        let (mut pool_b, cat_b) = fixture();
        pool_a.clear();
        pool_b.clear();
        let snap_a = pool_a.snapshot();
        let snap_b = pool_b.snapshot();
        let mut ctx = ExecCtx::new(&mut pool_a);
        let rows_row = run::run_collect(plan, &cat_a, &mut ctx).unwrap();
        let mut ctx = ExecCtx::new(&mut pool_b);
        let rows_batch = run_collect_batched(plan, &cat_b, &mut ctx).unwrap();
        assert_eq!(rows_row, rows_batch, "tuples and order must be identical");
        let d_row = pool_a.demand_since(snap_a);
        let d_batch = pool_b.demand_since(snap_b);
        assert_eq!(d_row, d_batch, "resource demand must be identical");
    }

    #[test]
    fn fused_scan_matches_row_path() {
        let plan = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 2, op: CompareOp::Lt, value: Value::Int(30) }],
        );
        assert_paths_agree(&plan);
    }

    #[test]
    fn fused_scan_project_matches_row_path() {
        let inner = scan(
            "emp",
            &["emp.id", "emp.dept", "emp.age"],
            vec![BoundPred { idx: 1, op: CompareOp::Eq, value: Value::Int(3) }],
        );
        let plan = Plan {
            cols: vec!["emp.age".into(), "emp.id".into()],
            node: PlanNode::Project { input: Box::new(inner), keep: vec![2, 0] },
        };
        assert_paths_agree(&plan);
    }

    #[test]
    fn hash_join_and_aggregate_match_row_path() {
        let left = scan("dept", &["dept.id", "dept.name"], vec![]);
        let right = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let join = Plan {
            cols: vec![
                "dept.id".into(),
                "dept.name".into(),
                "emp.id".into(),
                "emp.dept".into(),
                "emp.age".into(),
            ],
            node: PlanNode::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                lkey: 0,
                rkey: 1,
                residual: vec![],
            },
        };
        assert_paths_agree(&join);
        let agg = Plan {
            cols: vec!["dept.name".into(), "count".into(), "avg_age".into()],
            node: PlanNode::Aggregate {
                input: Box::new(join),
                group: vec![1],
                aggs: vec![(AggFunc::Count, None), (AggFunc::Avg, Some(4))],
            },
        };
        assert_paths_agree(&agg);
    }

    #[test]
    fn batches_respect_size_and_cover_all_rows() {
        let (mut pool, cat) = fixture();
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let mut ctx = ExecCtx::new(&mut pool);
        ctx.batch_size = 256;
        let mut sizes = Vec::new();
        run_batched(&plan, &cat, &mut ctx, &mut |b: Batch| {
            sizes.push(b.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 3000);
        assert!(sizes.iter().all(|&s| s > 0 && s <= 256));
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 256), "only the tail may be short");
        assert_eq!(ctx.batch_stats.batches, sizes.len() as u64);
        assert_eq!(ctx.batch_stats.fused_scans, 1);
    }

    #[test]
    fn repeat_scan_hits_segment_cache_without_changing_accounting() {
        let (mut pool, cat) = fixture();
        let heap = cat.table("dept").unwrap().heap;
        pool.mark_hot(heap.file);
        let plan = scan("dept", &["dept.id", "dept.name"], vec![]);
        let mut ctx = ExecCtx::new(&mut pool);
        let first = run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        let resident = pool.seg_resident();
        assert!(resident > 0, "hot file should populate the segment cache");
        let snap = pool.snapshot();
        let mut ctx = ExecCtx::new(&mut pool);
        let second = run_collect_batched(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(first, second);
        let d = pool.demand_since(snap);
        // Accounting still sees the page accesses (as hits, pool is warm).
        assert_eq!(d.hits, heap.pages(&pool) as u64);
        assert_eq!(d.cpu_tuples, 10);
    }

    #[test]
    fn cancellation_aborts_batched_scan() {
        let (mut pool, cat) = fixture();
        let plan = scan("emp", &["emp.id", "emp.dept", "emp.age"], vec![]);
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = ExecCtx::with_cancel(&mut pool, token);
        let err = run_collect_batched(&plan, &cat, &mut ctx).unwrap_err();
        assert!(err.is_cancelled());
    }
}
