//! Cost-based plan construction.
//!
//! A deliberately compact System-R-flavoured optimizer sized to the
//! paper's workload (≤ 6-way joins over the TPC-H subset):
//!
//! * **access paths** — for every relation, a sequential scan with
//!   pushed-down filters competes against one index scan per indexed,
//!   range-usable predicate; the estimated-cheapest wins,
//! * **join order** — greedy by default (start from the smallest
//!   estimated input, repeatedly attach the join edge that minimizes the
//!   estimated result), or exhaustive left-deep dynamic programming
//!   (System R style) via [`JoinOrder::Dp`],
//! * **join method** — hash join (smaller side builds) competes against
//!   an index nested-loop join when the inner is a stored table with an
//!   index on the join column,
//! * disconnected graph components are combined with cartesian products
//!   (partial queries are often disconnected mid-formulation).

use crate::error::{ExecError, ExecResult};
use crate::estimate::Estimator;
use crate::plan::{BoundPred, Plan, PlanNode};
use specdb_catalog::Catalog;
use specdb_query::{CompareOp, Join, Query, QueryGraph, Selection};
use specdb_storage::{BufferPool, DiskModel, Value, VirtualTime};
use std::collections::BTreeSet;
use std::ops::Bound;

/// Qualified column name: view columns are already dotted, base columns
/// get their relation prefix.
pub fn qualify(rel: &str, col: &str) -> String {
    if col.contains('.') {
        col.to_string()
    } else {
        format!("{rel}.{col}")
    }
}

/// Join-order search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinOrder {
    /// Greedy smallest-result-first (linear in the number of edges; the
    /// default, adequate for the paper's ≤ 6-way joins).
    #[default]
    Greedy,
    /// Left-deep dynamic programming over relation subsets (System R):
    /// optimal within the left-deep space, exponential table size —
    /// capped at [`DP_MAX_RELATIONS`] relations, beyond which planning
    /// falls back to greedy.
    Dp,
}

/// DP join ordering is attempted up to this many relations per connected
/// component (2^16 subsets is the table-size ceiling).
pub const DP_MAX_RELATIONS: usize = 12;

/// Build the cheapest estimated plan for a query under the current
/// catalog (tables, indexes, histograms — materialized views are handled
/// a level up, in [`crate::rewrite`]).
pub fn plan_query(
    catalog: &Catalog,
    pool: &BufferPool,
    disk: &DiskModel,
    query: &Query,
) -> ExecResult<Plan> {
    plan_query_with(catalog, pool, disk, query, JoinOrder::Greedy)
}

/// [`plan_query`] with an explicit join-order strategy.
pub fn plan_query_with(
    catalog: &Catalog,
    pool: &BufferPool,
    disk: &DiskModel,
    query: &Query,
    join_order: JoinOrder,
) -> ExecResult<Plan> {
    if query.graph.is_empty() {
        return Err(ExecError::EmptyQuery);
    }
    let est = Estimator::new(catalog, pool);
    let mut comp_plans: Vec<Plan> = query
        .graph
        .connected_components()
        .iter()
        .map(|c| match join_order {
            JoinOrder::Greedy => plan_component(catalog, &est, disk, c),
            JoinOrder::Dp if c.rel_count() <= DP_MAX_RELATIONS => {
                plan_component_dp(catalog, &est, disk, c)
            }
            JoinOrder::Dp => plan_component(catalog, &est, disk, c),
        })
        .collect::<ExecResult<Vec<_>>>()?;
    // Combine disconnected components: smallest estimated output first,
    // folded into left-deep cartesian products. Estimate once per plan,
    // not once per comparison.
    let mut keyed: Vec<(f64, Plan)> =
        comp_plans.drain(..).map(|p| (est.estimate(&p).rows, p)).collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut iter = keyed.into_iter().map(|(_, p)| p);
    let mut plan = iter.next().expect("nonempty graph yields at least one component");
    for right in iter {
        let mut cols = plan.cols.clone();
        cols.extend(right.cols.iter().cloned());
        plan = Plan {
            node: PlanNode::NestedLoop {
                left: Box::new(plan),
                right: Box::new(right),
                cond: vec![],
            },
            cols,
        };
    }
    // Aggregate layer (mutually exclusive with a projection list: the
    // SQL front end produces one or the other).
    if let Some(agg) = &query.agg {
        let mut group = Vec::with_capacity(agg.group_by.len());
        let mut cols = Vec::new();
        for (rel, col) in &agg.group_by {
            let q = qualify(rel, col);
            let idx = plan.col_index(&q).ok_or_else(|| ExecError::UnknownColumn {
                rel: rel.clone(),
                column: col.clone(),
            })?;
            group.push(idx);
            cols.push(q);
        }
        let mut aggs = Vec::with_capacity(agg.aggs.len());
        for a in &agg.aggs {
            let pos = match &a.arg {
                None => None,
                Some((rel, col)) => {
                    let q = qualify(rel, col);
                    Some(plan.col_index(&q).ok_or_else(|| ExecError::UnknownColumn {
                        rel: rel.clone(),
                        column: col.clone(),
                    })?)
                }
            };
            cols.push(format!("{a}"));
            aggs.push((a.func, pos));
        }
        return Ok(Plan { node: PlanNode::Aggregate { input: Box::new(plan), group, aggs }, cols });
    }
    // Projection.
    if !query.projections.is_empty() {
        let mut keep = Vec::with_capacity(query.projections.len());
        let mut cols = Vec::with_capacity(query.projections.len());
        for (rel, col) in &query.projections {
            let q = qualify(rel, col);
            let idx = plan.col_index(&q).ok_or_else(|| ExecError::UnknownColumn {
                rel: rel.clone(),
                column: col.clone(),
            })?;
            keep.push(idx);
            cols.push(q);
        }
        plan = Plan { node: PlanNode::Project { input: Box::new(plan), keep }, cols };
    }
    Ok(plan)
}

fn plan_component(
    catalog: &Catalog,
    est: &Estimator<'_>,
    disk: &DiskModel,
    graph: &QueryGraph,
) -> ExecResult<Plan> {
    let rels: Vec<&str> = graph.relations().collect();
    // Best access path per relation.
    let mut access: Vec<(String, Plan)> = rels
        .iter()
        .map(|&r| {
            let sels: Vec<&Selection> = graph.selections_on(r).collect();
            Ok((r.to_string(), access_plan(catalog, est, disk, r, &sels)?))
        })
        .collect::<ExecResult<Vec<_>>>()?;
    // Seed with the smallest estimated output (estimate once per plan).
    let mut keyed: Vec<(f64, (String, Plan))> =
        access.drain(..).map(|a| (est.estimate(&a.1).rows, a)).collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut access: Vec<(String, Plan)> = keyed.into_iter().map(|(_, a)| a).collect();
    let (seed_rel, seed_plan) = access.remove(0);
    let mut joined: BTreeSet<String> = BTreeSet::new();
    joined.insert(seed_rel);
    let mut plan = seed_plan;
    while !access.is_empty() {
        // Candidate next relations: connected to the joined set by an edge.
        let mut best: Option<(usize, Plan, f64)> = None;
        for (i, (rel, acc)) in access.iter().enumerate() {
            let edges: Vec<&Join> = graph
                .joins()
                .filter(|j| {
                    (joined.contains(&j.left) && j.right == *rel)
                        || (joined.contains(&j.right) && j.left == *rel)
                })
                .collect();
            if edges.is_empty() {
                continue;
            }
            let candidate = join_candidate(catalog, est, disk, graph, &plan, rel, acc, &edges)?;
            let rows = est.estimate(&candidate).rows;
            if best.as_ref().map(|(_, _, r)| rows < *r).unwrap_or(true) {
                best = Some((i, candidate, rows));
            }
        }
        match best {
            Some((i, candidate, _)) => {
                let (rel, _) = access.remove(i);
                joined.insert(rel);
                plan = candidate;
            }
            None => {
                // Should not happen inside a connected component, but fall
                // back to a cartesian with the smallest remaining input.
                let (rel, acc) = access.remove(0);
                joined.insert(rel);
                let mut cols = plan.cols.clone();
                cols.extend(acc.cols.iter().cloned());
                plan = Plan {
                    node: PlanNode::NestedLoop {
                        left: Box::new(plan),
                        right: Box::new(acc),
                        cond: vec![],
                    },
                    cols,
                };
            }
        }
    }
    Ok(plan)
}

/// Left-deep dynamic programming join ordering (System R): for every
/// connected subset of the component's relations, keep the cheapest
/// left-deep plan; extend subsets one connected relation at a time.
fn plan_component_dp(
    catalog: &Catalog,
    est: &Estimator<'_>,
    disk: &DiskModel,
    graph: &QueryGraph,
) -> ExecResult<Plan> {
    let rels: Vec<String> = graph.relations().map(str::to_string).collect();
    let n = rels.len();
    debug_assert!(n <= DP_MAX_RELATIONS);
    let idx_of = |rel: &str| rels.iter().position(|r| r == rel).expect("relation in component");
    // Access plans (singletons).
    let mut table: std::collections::HashMap<u32, (Plan, VirtualTime)> =
        std::collections::HashMap::new();
    for (i, rel) in rels.iter().enumerate() {
        let sels: Vec<&Selection> = graph.selections_on(rel).collect();
        let plan = access_plan(catalog, est, disk, rel, &sels)?;
        let cost = est.estimate(&plan).time(disk);
        table.insert(1 << i, (plan, cost));
    }
    // Grow subsets in cardinality order.
    for size in 1..n {
        let masks: Vec<u32> =
            table.keys().copied().filter(|m| m.count_ones() as usize == size).collect();
        for mask in masks {
            let (plan, _) = table[&mask].clone();
            let in_set = |rel: &str| mask & (1 << idx_of(rel)) != 0;
            // Candidate extensions: relations connected to the subset.
            let mut candidates: BTreeSet<&str> = BTreeSet::new();
            for j in graph.joins() {
                match (in_set(&j.left), in_set(&j.right)) {
                    (true, false) => {
                        candidates.insert(&j.right);
                    }
                    (false, true) => {
                        candidates.insert(&j.left);
                    }
                    _ => {}
                }
            }
            for rel in candidates {
                let bit = 1u32 << idx_of(rel);
                let next_mask = mask | bit;
                let edges: Vec<&Join> = graph
                    .joins()
                    .filter(|j| {
                        (in_set(&j.left) && j.right == rel) || (in_set(&j.right) && j.left == rel)
                    })
                    .collect();
                let sels: Vec<&Selection> = graph.selections_on(rel).collect();
                let access = access_plan(catalog, est, disk, rel, &sels)?;
                let candidate =
                    join_candidate(catalog, est, disk, graph, &plan, rel, &access, &edges)?;
                let cost = est.estimate(&candidate).time(disk);
                match table.get(&next_mask) {
                    Some((_, best)) if *best <= cost => {}
                    _ => {
                        table.insert(next_mask, (candidate, cost));
                    }
                }
            }
        }
    }
    let full = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
    table.remove(&full).map(|(p, _)| p).ok_or(ExecError::EmptyQuery)
}

/// Best access path for one relation given its selections.
fn access_plan(
    catalog: &Catalog,
    est: &Estimator<'_>,
    disk: &DiskModel,
    rel: &str,
    sels: &[&Selection],
) -> ExecResult<Plan> {
    let table = catalog.table(rel).ok_or_else(|| ExecError::UnknownTable(rel.into()))?;
    let cols: Vec<String> = table.schema.columns().iter().map(|c| qualify(rel, &c.name)).collect();
    let bind = |s: &Selection| -> ExecResult<BoundPred> {
        let idx = table.schema.index_of(&s.pred.column).ok_or_else(|| {
            ExecError::UnknownColumn { rel: rel.into(), column: s.pred.column.clone() }
        })?;
        Ok(BoundPred { idx, op: s.pred.op, value: s.pred.value.clone() })
    };
    let all_filters: Vec<BoundPred> =
        sels.iter().map(|s| bind(s)).collect::<ExecResult<Vec<_>>>()?;
    let seq = Plan {
        node: PlanNode::SeqScan { table: rel.into(), filters: all_filters.clone() },
        cols: cols.clone(),
    };
    let mut best = seq;
    let mut best_time = est.estimate(&best).time(disk);
    // One index-scan candidate per indexed, range-usable predicate.
    for (i, s) in sels.iter().enumerate() {
        if s.pred.op == CompareOp::Ne {
            continue;
        }
        if catalog.index(rel, &s.pred.column).is_none() {
            continue;
        }
        let (lo, hi) = range_bounds(&s.pred.op, &s.pred.value);
        let residual: Vec<BoundPred> = sels
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, s)| bind(s))
            .collect::<ExecResult<Vec<_>>>()?;
        let cand = Plan {
            node: PlanNode::IndexScan {
                table: rel.into(),
                column: s.pred.column.clone(),
                lo,
                hi,
                filters: residual,
            },
            cols: cols.clone(),
        };
        let t = est.estimate(&cand).time(disk);
        if t < best_time {
            best = cand;
            best_time = t;
        }
    }
    Ok(best)
}

fn range_bounds(op: &CompareOp, v: &Value) -> (Bound<Value>, Bound<Value>) {
    match op {
        CompareOp::Eq => (Bound::Included(v.clone()), Bound::Included(v.clone())),
        CompareOp::Lt => (Bound::Unbounded, Bound::Excluded(v.clone())),
        CompareOp::Le => (Bound::Unbounded, Bound::Included(v.clone())),
        CompareOp::Gt => (Bound::Excluded(v.clone()), Bound::Unbounded),
        CompareOp::Ge => (Bound::Included(v.clone()), Bound::Unbounded),
        CompareOp::Ne => (Bound::Unbounded, Bound::Unbounded),
    }
}

/// Build the best join of `plan` (already covering `joined` relations)
/// with relation `rel`, connected by `edges` (first edge is the primary
/// key condition, the rest become residual equality checks).
#[allow(clippy::too_many_arguments)]
fn join_candidate(
    catalog: &Catalog,
    est: &Estimator<'_>,
    disk: &DiskModel,
    graph: &QueryGraph,
    plan: &Plan,
    rel: &str,
    access: &Plan,
    edges: &[&Join],
) -> ExecResult<Plan> {
    // Resolve each edge into (outer position, inner qualified name).
    let resolve = |j: &Join| -> ExecResult<(usize, String)> {
        let (ocol_rel, ocol, icol) = if j.left == rel {
            (&j.right, &j.rcol, qualify(rel, &j.lcol))
        } else {
            (&j.left, &j.lcol, qualify(rel, &j.rcol))
        };
        let oq = qualify(ocol_rel, ocol);
        let opos = plan.col_index(&oq).ok_or_else(|| ExecError::UnknownColumn {
            rel: ocol_rel.clone(),
            column: ocol.clone(),
        })?;
        Ok((opos, icol))
    };
    let resolved: Vec<(usize, String)> =
        edges.iter().map(|j| resolve(j)).collect::<ExecResult<Vec<_>>>()?;
    let inner_pos = |q: &str| -> ExecResult<usize> {
        access
            .col_index(q)
            .ok_or_else(|| ExecError::UnknownColumn { rel: rel.into(), column: q.into() })
    };

    let mut out_cols = plan.cols.clone();
    out_cols.extend(access.cols.iter().cloned());

    // Hash join: build on the smaller estimated side.
    let plan_rows = est.estimate(plan).rows;
    let access_rows = est.estimate(access).rows;
    let (okey, ikey_name) = &resolved[0];
    let ikey = inner_pos(ikey_name)?;
    let residual: Vec<(usize, usize)> = resolved[1..]
        .iter()
        .map(|(o, iname)| Ok((*o, inner_pos(iname)?)))
        .collect::<ExecResult<Vec<_>>>()?;
    let hash = if plan_rows <= access_rows {
        Plan {
            node: PlanNode::HashJoin {
                left: Box::new(plan.clone()),
                right: Box::new(access.clone()),
                lkey: *okey,
                rkey: ikey,
                residual: residual.clone(),
            },
            cols: out_cols.clone(),
        }
    } else {
        // Build on the access side: swap operands; output order becomes
        // access ++ plan, so swap the column list too.
        let mut cols = access.cols.clone();
        cols.extend(plan.cols.iter().cloned());
        Plan {
            node: PlanNode::HashJoin {
                left: Box::new(access.clone()),
                right: Box::new(plan.clone()),
                lkey: ikey,
                rkey: *okey,
                residual: residual.iter().map(|&(o, i)| (i, o)).collect(),
            },
            cols,
        }
    };
    let mut best = hash;
    let best_time = est.estimate(&best).time(disk);

    // Index nested-loop candidate: inner must be a stored table with an
    // index on the (unqualified) join column; inner filters re-bound to
    // stored positions.
    if let Some(table) = catalog.table(rel) {
        let inner_col = edges[0].other(rel).map(|_| {
            if edges[0].left == rel {
                edges[0].lcol.clone()
            } else {
                edges[0].rcol.clone()
            }
        });
        if let Some(inner_col) = inner_col {
            if catalog.index(rel, &inner_col).is_some() {
                let inner_filters: Vec<BoundPred> = graph
                    .selections_on(rel)
                    .map(|s| {
                        let idx = table.schema.index_of(&s.pred.column).ok_or_else(|| {
                            ExecError::UnknownColumn {
                                rel: rel.into(),
                                column: s.pred.column.clone(),
                            }
                        })?;
                        Ok(BoundPred { idx, op: s.pred.op, value: s.pred.value.clone() })
                    })
                    .collect::<ExecResult<Vec<_>>>()?;
                let inner_residual: Vec<(usize, usize)> = resolved[1..]
                    .iter()
                    .map(|(o, iname)| {
                        // Residual inner positions are in the stored schema.
                        let plain = iname.rsplit('.').next().unwrap_or(iname);
                        let idx = table
                            .schema
                            .index_of(iname)
                            .or_else(|| table.schema.index_of(plain))
                            .ok_or_else(|| ExecError::UnknownColumn {
                                rel: rel.into(),
                                column: iname.clone(),
                            })?;
                        Ok((*o, idx))
                    })
                    .collect::<ExecResult<Vec<_>>>()?;
                let cand = Plan {
                    node: PlanNode::IndexNLJoin {
                        outer: Box::new(plan.clone()),
                        inner_table: rel.into(),
                        inner_column: inner_col,
                        okey: *okey,
                        inner_filters,
                        residual: inner_residual,
                    },
                    cols: out_cols,
                };
                let t = est.estimate(&cand).time(disk);
                if t < best_time {
                    best = cand;
                }
            }
        }
    }
    Ok(best)
}

/// Estimated execution time of the best plan for `query` (the
/// `cost(q, m)` the speculator's cost model consumes).
pub fn estimate_query_time(
    catalog: &Catalog,
    pool: &BufferPool,
    disk: &DiskModel,
    query: &Query,
) -> ExecResult<VirtualTime> {
    let plan = plan_query(catalog, pool, disk, query)?;
    Ok(Estimator::new(catalog, pool).estimate(&plan).time(disk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecCtx;
    use crate::run::run_collect;
    use specdb_catalog::{ColumnDef, DataType, Schema, TableStats};
    use specdb_query::{Predicate, Selection};
    use specdb_storage::heap::BulkLoader;
    use specdb_storage::{HeapFile, Tuple};

    fn fixture() -> (BufferPool, Catalog) {
        let mut pool = BufferPool::new(1024);
        let mut cat = Catalog::new();
        // orders(id, cust, total), customer(id, region)
        let orders = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(orders, &pool);
        for i in 0..3000i64 {
            loader
                .push(
                    &mut pool,
                    &Tuple::new(vec![Value::Int(i), Value::Int(i % 100), Value::Int(i % 500)]),
                )
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let stats = TableStats::analyze(&mut pool, orders, 3).unwrap();
        cat.register(
            "orders",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("cust", DataType::Int),
                ColumnDef::new("total", DataType::Int),
            ]),
            orders,
            stats,
            false,
        );
        let cust = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(cust, &pool);
        for i in 0..100i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let stats = TableStats::analyze(&mut pool, cust, 2).unwrap();
        cat.register(
            "customer",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("region", DataType::Int),
            ]),
            cust,
            stats,
            false,
        );
        (pool, cat)
    }

    fn join_query() -> Query {
        let mut g = QueryGraph::new();
        g.add_join(Join::new("orders", "cust", "customer", "id"));
        g.add_selection(Selection::new("customer", Predicate::new("region", CompareOp::Eq, 2i64)));
        Query::star(g)
    }

    #[test]
    fn plans_and_runs_join_query() {
        let (mut pool, cat) = fixture();
        let disk = DiskModel::default();
        let plan = plan_query(&cat, &pool, &disk, &join_query()).unwrap();
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        // region 2 → 20 customers → 30 orders each = 600 rows.
        assert_eq!(rows.len(), 600);
        assert_eq!(rows[0].arity(), 5);
    }

    #[test]
    fn projection_trims_output() {
        let (mut pool, cat) = fixture();
        let disk = DiskModel::default();
        let q = join_query().project("orders", "id");
        let plan = plan_query(&cat, &pool, &disk, &q).unwrap();
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 600);
        assert!(rows.iter().all(|r| r.arity() == 1));
        assert_eq!(plan.cols, vec!["orders.id".to_string()]);
    }

    #[test]
    fn index_access_path_chosen_when_selective() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "orders", "id").unwrap();
        let disk = DiskModel::default();
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("orders", Predicate::new("id", CompareOp::Eq, 7i64)));
        let plan = plan_query(&cat, &pool, &disk, &Query::star(g)).unwrap();
        assert!(
            matches!(plan.node, PlanNode::IndexScan { .. }),
            "expected index scan, got: {}",
            plan.explain()
        );
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn seq_scan_chosen_when_unselective() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "orders", "id").unwrap();
        let disk = DiskModel::default();
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("orders", Predicate::new("id", CompareOp::Ge, 0i64)));
        let plan = plan_query(&cat, &pool, &disk, &Query::star(g)).unwrap();
        assert!(
            matches!(plan.node, PlanNode::SeqScan { .. }),
            "full-range predicate should seq scan: {}",
            plan.explain()
        );
        let mut ctx = ExecCtx::new(&mut pool);
        assert_eq!(run_collect(&plan, &cat, &mut ctx).unwrap().len(), 3000);
    }

    #[test]
    fn disconnected_graph_gets_cartesian() {
        let (mut pool, cat) = fixture();
        let disk = DiskModel::default();
        let mut g = QueryGraph::new();
        g.add_relation("orders");
        g.add_relation("customer");
        // No join edge: cartesian product.
        let plan = plan_query(&cat, &pool, &disk, &Query::star(g)).unwrap();
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 3000 * 100);
    }

    #[test]
    fn empty_graph_rejected() {
        let (pool, cat) = fixture();
        let disk = DiskModel::default();
        assert!(matches!(
            plan_query(&cat, &pool, &disk, &Query::star(QueryGraph::new())),
            Err(ExecError::EmptyQuery)
        ));
    }

    #[test]
    fn unknown_relation_and_column_rejected() {
        let (pool, cat) = fixture();
        let disk = DiskModel::default();
        let mut g = QueryGraph::new();
        g.add_relation("ghost");
        assert!(matches!(
            plan_query(&cat, &pool, &disk, &Query::star(g)),
            Err(ExecError::UnknownTable(_))
        ));
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("orders", Predicate::new("nope", CompareOp::Eq, 1i64)));
        assert!(matches!(
            plan_query(&cat, &pool, &disk, &Query::star(g)),
            Err(ExecError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn estimate_query_time_positive() {
        let (pool, cat) = fixture();
        let disk = DiskModel::default();
        let t = estimate_query_time(&cat, &pool, &disk, &join_query()).unwrap();
        assert!(t > VirtualTime::ZERO);
    }

    #[test]
    fn dp_matches_greedy_answers_and_never_costs_more() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "orders", "cust").unwrap();
        cat.build_index(&mut pool, "customer", "id").unwrap();
        let disk = DiskModel::default();
        let q = join_query();
        let greedy = plan_query_with(&cat, &pool, &disk, &q, JoinOrder::Greedy).unwrap();
        let dp = plan_query_with(&cat, &pool, &disk, &q, JoinOrder::Dp).unwrap();
        let est = Estimator::new(&cat, &pool);
        let (tg, td) = (est.estimate(&greedy).time(&disk), est.estimate(&dp).time(&disk));
        assert!(td <= tg, "DP {td} must not exceed greedy {tg}");
        let mut ctx = ExecCtx::new(&mut pool);
        let a = run_collect(&greedy, &cat, &mut ctx).unwrap().len();
        let b = run_collect(&dp, &cat, &mut ctx).unwrap().len();
        assert_eq!(a, b, "plans must agree on the answer");
    }

    #[test]
    fn dp_handles_single_relation_and_disconnected() {
        let (mut pool, cat) = fixture();
        let disk = DiskModel::default();
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("orders", Predicate::new("total", CompareOp::Lt, 10i64)));
        let p = plan_query_with(&cat, &pool, &disk, &Query::star(g), JoinOrder::Dp).unwrap();
        let mut ctx = ExecCtx::new(&mut pool);
        assert!(!run_collect(&p, &cat, &mut ctx).unwrap().is_empty());
        // Disconnected: cartesian fold still applies across components.
        let mut g = QueryGraph::new();
        g.add_relation("orders");
        g.add_relation("customer");
        let p = plan_query_with(&cat, &pool, &disk, &Query::star(g), JoinOrder::Dp).unwrap();
        let mut ctx = ExecCtx::new(&mut pool);
        assert_eq!(run_collect(&p, &cat, &mut ctx).unwrap().len(), 3000 * 100);
    }

    #[test]
    fn index_nl_join_used_for_selective_outer() {
        let (mut pool, mut cat) = fixture();
        cat.build_index(&mut pool, "orders", "cust").unwrap();
        let disk = DiskModel::default();
        let mut g = QueryGraph::new();
        g.add_join(Join::new("orders", "cust", "customer", "id"));
        g.add_selection(Selection::new("customer", Predicate::new("id", CompareOp::Eq, 3i64)));
        let plan = plan_query(&cat, &pool, &disk, &Query::star(g)).unwrap();
        let mut ctx = ExecCtx::new(&mut pool);
        let rows = run_collect(&plan, &cat, &mut ctx).unwrap();
        assert_eq!(rows.len(), 30, "30 orders for customer 3");
    }
}
