//! Materialized-view registry and sub-graph rewriting.
//!
//! Speculative *query materialization* stores the result of a sub-query
//! `qm`; when the final query `q` arrives with `qm ⊆ q`, the sub-graph
//! `qm` is replaced by a scan of the stored result. The paper's two
//! flavours map to [`crate::engine::ViewMode`]:
//!
//! * **query rewriting** — the replacement is forced (what the paper's
//!   prototype used against Oracle 8i, and the source of its occasional
//!   penalties when the materialized relation lacks a useful index),
//! * **query materialization** — the optimizer costs the rewritten and
//!   original forms and keeps the cheaper (classic matview matching).
//!
//! Stored view tables name their columns with base-qualified names
//! (`"R.a"`), so a rewritten graph — whose selections and joins against
//! the view reference those dotted names — plans and executes through
//! the ordinary optimizer with no special cases.

use crate::optimizer::qualify;
use specdb_query::{canonical_key, Join, Query, QueryGraph, Selection};
use specdb_storage::Value;
use std::collections::HashMap;

/// A registered materialized view.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// Catalog table holding the materialized rows (`mv_<digest>`).
    pub name: String,
    /// Definition over base relations.
    pub graph: QueryGraph,
}

impl ViewDef {
    /// Number of atomic parts (used to prefer larger rewrites).
    pub fn weight(&self) -> usize {
        self.graph.rel_count() + self.graph.selection_count() + 2 * self.graph.join_count()
    }
}

/// Registry of materialized views keyed by canonical graph key.
#[derive(Debug, Default, Clone)]
pub struct ViewRegistry {
    by_key: HashMap<String, ViewDef>,
}

impl ViewRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a view (replaces any previous view of the same graph).
    pub fn register(&mut self, def: ViewDef) {
        self.by_key.insert(canonical_key(&def.graph), def);
    }

    /// [`ViewRegistry::register`] with the defining graph's canonical key
    /// already rendered — callers that computed the key for other
    /// bookkeeping (the engine's `materialize`) avoid re-walking the
    /// graph. `key` must equal `canonical_key(&def.graph)`.
    pub fn register_with_key(&mut self, key: String, def: ViewDef) {
        debug_assert_eq!(key, canonical_key(&def.graph));
        self.by_key.insert(key, def);
    }

    /// Look up a view by its defining graph.
    pub fn get(&self, graph: &QueryGraph) -> Option<&ViewDef> {
        self.by_key.get(&canonical_key(graph))
    }

    /// [`ViewRegistry::get`] for a pre-rendered canonical key.
    pub fn get_by_key(&self, key: &str) -> Option<&ViewDef> {
        self.by_key.get(key)
    }

    /// Remove a view by table name; returns it if present.
    pub fn remove_by_name(&mut self, name: &str) -> Option<ViewDef> {
        let key = self.by_key.iter().find(|(_, v)| v.name == name).map(|(k, _)| k.clone())?;
        self.by_key.remove(&key)
    }

    /// All registered views.
    pub fn iter(&self) -> impl Iterator<Item = &ViewDef> {
        self.by_key.values()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True if no views are registered.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Views applicable to a query graph: the view's graph must be a
    /// sub-graph, and every join edge of the query between two replaced
    /// relations must itself be part of the view (otherwise the rewrite
    /// would need a self-join on the view, which the conjunctive planner
    /// does not express).
    pub fn applicable<'a>(&'a self, graph: &'a QueryGraph) -> impl Iterator<Item = &'a ViewDef> {
        self.applicable_with(graph, MatchMode::Exact)
    }

    /// Views applicable under a [`MatchMode`]. With
    /// [`MatchMode::Subsume`], a view whose selections are *implied* by
    /// the query's (e.g. the view kept `age < 30`, the query asks
    /// `age < 20`) also qualifies; [`apply_view`] then keeps the query's
    /// stronger predicates as residual filters over the view.
    pub fn applicable_with<'a>(
        &'a self,
        graph: &'a QueryGraph,
        mode: MatchMode,
    ) -> impl Iterator<Item = &'a ViewDef> {
        self.by_key.values().filter(move |v| {
            !v.graph.is_empty() && view_matches(&v.graph, graph, mode) && {
                graph.joins().all(|j| {
                    let both_inside =
                        v.graph.has_relation(&j.left) && v.graph.has_relation(&j.right);
                    !both_inside || v.graph.joins().any(|vj| vj == j)
                })
            }
        })
    }

    /// Views whose defining graph is contained in `graph` — used by the
    /// paper's garbage-collection heuristic ("the result of a
    /// manipulation persists as long as the current partial query
    /// indicates it will be useful").
    pub fn supported_by<'a>(&'a self, graph: &'a QueryGraph) -> impl Iterator<Item = &'a ViewDef> {
        self.supported_by_with(graph, MatchMode::Exact)
    }

    /// GC support under a [`MatchMode`] (with subsumption, a view stays
    /// alive while the partial query's predicates still imply its own).
    pub fn supported_by_with<'a>(
        &'a self,
        graph: &'a QueryGraph,
        mode: MatchMode,
    ) -> impl Iterator<Item = &'a ViewDef> {
        self.by_key.values().filter(move |v| view_matches(&v.graph, graph, mode))
    }

    /// Canonical keys of views whose defining graph is still contained
    /// in `graph` under `mode` — the lease set a serving session holds
    /// on the shared artifact cache. Sorted for deterministic iteration.
    pub fn supported_keys(&self, graph: &QueryGraph, mode: MatchMode) -> Vec<String> {
        let mut keys: Vec<String> = self
            .by_key
            .iter()
            .filter(|(_, v)| view_matches(&v.graph, graph, mode))
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }
}

/// How view definitions are matched against query graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// The paper's matching: the view graph must be a sub-graph of the
    /// query graph, predicate constants and all.
    #[default]
    Exact,
    /// Extension: view selections may be *implied* by query selections
    /// (predicate subsumption); relations and joins still match exactly.
    Subsume,
}

/// Does `view` answer `query` under `mode`? (Relations and joins must be
/// contained either way; selections differ by mode.)
fn view_matches(view: &QueryGraph, query: &QueryGraph, mode: MatchMode) -> bool {
    match mode {
        MatchMode::Exact => query.contains(view),
        MatchMode::Subsume => {
            view.relations().all(|r| query.has_relation(r))
                && view.joins().all(|vj| query.joins().any(|qj| qj == vj))
                && view
                    .selections()
                    .all(|vs| query.selections_on(&vs.rel).any(|qs| qs.pred.implies(&vs.pred)))
        }
    }
}

/// Rewrite `query` to use `view`, which must be applicable (see
/// [`ViewRegistry::applicable`]). Returns the rewritten query whose graph
/// references the view's table as an ordinary relation.
pub fn apply_view(query: &Query, view: &ViewDef) -> Query {
    let replaced: Vec<&str> = view.graph.relations().collect();
    let is_replaced = |r: &str| replaced.contains(&r);
    let mut graph = QueryGraph::new();
    graph.add_relation(view.name.clone());
    for r in query.graph.relations() {
        if !is_replaced(r) {
            graph.add_relation(r);
        }
    }
    // Selections: the view's own are pre-applied; others on replaced
    // relations retarget to the view's qualified columns.
    for s in query.graph.selections() {
        if view.graph.selections().any(|vs| vs == s) {
            continue;
        }
        if is_replaced(&s.rel) {
            graph.add_selection(Selection::new(
                view.name.clone(),
                specdb_query::Predicate {
                    column: qualify(&s.rel, &s.pred.column),
                    op: s.pred.op,
                    value: s.pred.value.clone(),
                },
            ));
        } else {
            graph.add_selection(s.clone());
        }
    }
    // Joins: the view's own disappear; edges crossing the boundary
    // retarget their replaced endpoint to the view.
    for j in query.graph.joins() {
        if view.graph.joins().any(|vj| vj == j) {
            continue;
        }
        let (lrel, lcol) = if is_replaced(&j.left) {
            (view.name.clone(), qualify(&j.left, &j.lcol))
        } else {
            (j.left.clone(), j.lcol.clone())
        };
        let (rrel, rcol) = if is_replaced(&j.right) {
            (view.name.clone(), qualify(&j.right, &j.rcol))
        } else {
            (j.right.clone(), j.rcol.clone())
        };
        graph.add_join(Join::new(lrel, lcol, rrel, rcol));
    }
    // Projections retarget similarly.
    let retarget = |rel: &str, col: &str| -> (String, String) {
        if is_replaced(rel) {
            (view.name.clone(), qualify(rel, col))
        } else {
            (rel.to_string(), col.to_string())
        }
    };
    let projections = query.projections.iter().map(|(rel, col)| retarget(rel, col)).collect();
    // The aggregate layer sits on top of the core: its column references
    // retarget exactly like projections.
    let agg = query.agg.as_ref().map(|a| specdb_query::AggSpec {
        group_by: a.group_by.iter().map(|(r, c)| retarget(r, c)).collect(),
        aggs: a
            .aggs
            .iter()
            .map(|ag| specdb_query::Aggregate {
                func: ag.func,
                arg: ag.arg.as_ref().map(|(r, c)| retarget(r, c)),
            })
            .collect(),
    });
    Query { graph, projections, agg }
}

/// Greedily rewrite with the largest applicable views until none apply.
/// This is the paper's *query rewriting*: materialized sub-queries are
/// always replaced. Returns the rewritten query and the names of the
/// views used (empty when nothing applied).
pub fn rewrite_greedy(query: &Query, registry: &ViewRegistry) -> (Query, Vec<String>) {
    rewrite_greedy_with(query, registry, MatchMode::Exact)
}

/// [`rewrite_greedy`] under an explicit [`MatchMode`].
pub fn rewrite_greedy_with(
    query: &Query,
    registry: &ViewRegistry,
    mode: MatchMode,
) -> (Query, Vec<String>) {
    let mut current = query.clone();
    let mut used = Vec::new();
    loop {
        let best = registry
            .applicable_with(&current.graph, mode)
            .max_by_key(|v| v.weight())
            .cloned();
        match best {
            Some(v) => {
                current = apply_view(&current, &v);
                used.push(v.name);
            }
            None => break,
        }
    }
    (current, used)
}

/// Candidate rewritings for cost-based selection: the original, each
/// single applicable view, and the greedy full rewrite.
pub fn rewrite_candidates(query: &Query, registry: &ViewRegistry) -> Vec<(Query, Vec<String>)> {
    rewrite_candidates_with(query, registry, MatchMode::Exact)
}

/// [`rewrite_candidates`] under an explicit [`MatchMode`].
pub fn rewrite_candidates_with(
    query: &Query,
    registry: &ViewRegistry,
    mode: MatchMode,
) -> Vec<(Query, Vec<String>)> {
    let mut out = vec![(query.clone(), Vec::new())];
    for v in registry.applicable_with(&query.graph, mode) {
        out.push((apply_view(query, v), vec![v.name.clone()]));
    }
    let (greedy, used) = rewrite_greedy_with(query, registry, mode);
    if used.len() > 1 {
        out.push((greedy, used));
    }
    out
}

/// Helper: make a `Predicate` value printable in tests.
#[doc(hidden)]
pub fn _debug_value(v: &Value) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_query::{CompareOp, Predicate};

    fn sel(rel: &str, col: &str, op: CompareOp, v: i64) -> Selection {
        Selection::new(rel, Predicate::new(col, op, v))
    }

    /// σ(R.c>10)(R) ⋈a S ⋈b W with σ(W.d<2000), paper Figure 2.
    fn figure2_query() -> Query {
        let mut g = QueryGraph::new();
        g.add_join(Join::new("R", "a", "S", "a"));
        g.add_join(Join::new("S", "b", "W", "b"));
        g.add_selection(sel("R", "c", CompareOp::Gt, 10));
        g.add_selection(sel("W", "d", CompareOp::Lt, 2000));
        Query::star(g)
    }

    fn view_sigma_r() -> ViewDef {
        let mut g = QueryGraph::new();
        g.add_selection(sel("R", "c", CompareOp::Gt, 10));
        ViewDef { name: "mv_sigr".into(), graph: g }
    }

    fn view_rs_join() -> ViewDef {
        let mut g = QueryGraph::new();
        g.add_join(Join::new("R", "a", "S", "a"));
        g.add_selection(sel("R", "c", CompareOp::Gt, 10));
        ViewDef { name: "mv_rs".into(), graph: g }
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r());
        assert_eq!(reg.len(), 1);
        assert!(reg.get(&view_sigma_r().graph).is_some());
        assert!(reg.remove_by_name("mv_sigr").is_some());
        assert!(reg.is_empty());
    }

    #[test]
    fn keyed_register_and_lookup_agree_with_graph_paths() {
        let mut reg = ViewRegistry::new();
        let v = view_sigma_r();
        let key = canonical_key(&v.graph);
        reg.register_with_key(key.clone(), v.clone());
        assert_eq!(reg.get_by_key(&key).unwrap().name, "mv_sigr");
        assert_eq!(reg.get(&v.graph).unwrap().name, "mv_sigr");
        assert!(reg.get_by_key("R(nope);").is_none());
    }

    #[test]
    fn applicable_respects_containment() {
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r());
        let q = figure2_query();
        assert_eq!(reg.applicable(&q.graph).count(), 1);
        // A view with a different constant is not contained.
        let mut g = QueryGraph::new();
        g.add_selection(sel("R", "c", CompareOp::Gt, 99));
        reg.register(ViewDef { name: "mv_other".into(), graph: g });
        assert_eq!(reg.applicable(&q.graph).count(), 1);
    }

    #[test]
    fn apply_selection_view() {
        let q = figure2_query();
        let rewritten = apply_view(&q, &view_sigma_r());
        assert!(rewritten.graph.has_relation("mv_sigr"));
        assert!(!rewritten.graph.has_relation("R"));
        // R's selection is pre-applied; W's survives untouched.
        assert_eq!(rewritten.graph.selection_count(), 1);
        assert_eq!(rewritten.graph.selections().next().unwrap().rel, "W");
        // The R-S join crosses the boundary and retargets.
        let joins: Vec<_> = rewritten.graph.joins().collect();
        assert_eq!(joins.len(), 2);
        assert!(joins
            .iter()
            .any(|j| j.touches("mv_sigr") && j.other("mv_sigr").unwrap().0 == "R.a"));
    }

    #[test]
    fn apply_join_view() {
        let q = figure2_query();
        let rewritten = apply_view(&q, &view_rs_join());
        assert!(rewritten.graph.has_relation("mv_rs"));
        assert!(!rewritten.graph.has_relation("R"));
        assert!(!rewritten.graph.has_relation("S"));
        assert!(rewritten.graph.has_relation("W"));
        assert_eq!(rewritten.graph.join_count(), 1);
        let j = rewritten.graph.joins().next().unwrap();
        assert!(j.touches("mv_rs") && j.touches("W"));
        assert_eq!(j.other("W").unwrap().2, "S.b");
    }

    #[test]
    fn projections_retarget() {
        let q = figure2_query().project("R", "c").project("W", "d");
        let rewritten = apply_view(&q, &view_sigma_r());
        assert_eq!(
            rewritten.projections,
            vec![("mv_sigr".to_string(), "R.c".to_string()), ("W".to_string(), "d".to_string())]
        );
    }

    #[test]
    fn greedy_prefers_larger_view() {
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r());
        reg.register(view_rs_join());
        let (rewritten, used) = rewrite_greedy(&figure2_query(), &reg);
        assert_eq!(used, vec!["mv_rs".to_string()]);
        assert!(rewritten.graph.has_relation("mv_rs"));
        // After the join view applies, the selection view's R is gone, so
        // it cannot also apply.
        assert!(!rewritten.graph.has_relation("mv_sigr"));
    }

    #[test]
    fn join_between_replaced_rels_blocks_view() {
        // Query has two join edges between R and S; a view covering only
        // one of them must not be applicable.
        let mut g = QueryGraph::new();
        g.add_join(Join::new("R", "a", "S", "a"));
        g.add_join(Join::new("R", "x", "S", "y"));
        let q = Query::star(g);
        let mut vg = QueryGraph::new();
        vg.add_join(Join::new("R", "a", "S", "a"));
        let mut reg = ViewRegistry::new();
        reg.register(ViewDef { name: "mv_partial".into(), graph: vg });
        assert_eq!(reg.applicable(&q.graph).count(), 0);
    }

    #[test]
    fn rewrite_candidates_include_original() {
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r());
        let cands = rewrite_candidates(&figure2_query(), &reg);
        assert_eq!(cands.len(), 2);
        assert!(cands[0].1.is_empty());
        assert_eq!(cands[1].1, vec!["mv_sigr".to_string()]);
    }

    #[test]
    fn subsumption_matches_weaker_view() {
        // View kept R.c > 10; the query asks R.c > 50 (stronger).
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r()); // σ(R.c > 10)
        let mut g = QueryGraph::new();
        g.add_selection(sel("R", "c", CompareOp::Gt, 50));
        assert_eq!(reg.applicable_with(&g, MatchMode::Exact).count(), 0);
        assert_eq!(reg.applicable_with(&g, MatchMode::Subsume).count(), 1);
        // The rewritten query keeps the stronger predicate as a residual
        // over the view's qualified column.
        let (rewritten, used) = rewrite_greedy_with(&Query::star(g), &reg, MatchMode::Subsume);
        assert_eq!(used.len(), 1);
        assert!(rewritten.graph.has_relation("mv_sigr"));
        let residuals: Vec<_> = rewritten.graph.selections().collect();
        assert_eq!(residuals.len(), 1);
        assert_eq!(residuals[0].rel, "mv_sigr");
        assert_eq!(residuals[0].pred.column, "R.c");
        assert_eq!(residuals[0].pred.op, CompareOp::Gt);
    }

    #[test]
    fn subsumption_rejects_stronger_view() {
        // View kept R.c > 50; the query asks R.c > 10 — the view is
        // missing rows and must NOT match in either mode.
        let mut vg = QueryGraph::new();
        vg.add_selection(sel("R", "c", CompareOp::Gt, 50));
        let mut reg = ViewRegistry::new();
        reg.register(ViewDef { name: "mv_strong".into(), graph: vg });
        let mut g = QueryGraph::new();
        g.add_selection(sel("R", "c", CompareOp::Gt, 10));
        assert_eq!(reg.applicable_with(&g, MatchMode::Exact).count(), 0);
        assert_eq!(reg.applicable_with(&g, MatchMode::Subsume).count(), 0);
    }

    #[test]
    fn subsumption_requires_exact_joins() {
        let mut reg = ViewRegistry::new();
        reg.register(view_rs_join()); // R ⋈a S with σ(R.c>10)
                                      // Same selection (stronger), but a different join column.
        let mut g = QueryGraph::new();
        g.add_join(Join::new("R", "z", "S", "z"));
        g.add_selection(sel("R", "c", CompareOp::Gt, 99));
        assert_eq!(reg.applicable_with(&g, MatchMode::Subsume).count(), 0);
    }

    #[test]
    fn subsumption_gc_keeps_still_useful_views() {
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r()); // σ(R.c > 10)
        let mut g = QueryGraph::new();
        g.add_selection(sel("R", "c", CompareOp::Gt, 60));
        assert_eq!(reg.supported_by_with(&g, MatchMode::Exact).count(), 0);
        assert_eq!(reg.supported_by_with(&g, MatchMode::Subsume).count(), 1);
    }

    #[test]
    fn supported_by_tracks_gc_heuristic() {
        let mut reg = ViewRegistry::new();
        reg.register(view_sigma_r());
        let q = figure2_query();
        assert_eq!(reg.supported_by(&q.graph).count(), 1);
        // Partial query loses the predicate: the view is no longer supported.
        let mut g2 = q.graph.clone();
        g2.remove_selection(&sel("R", "c", CompareOp::Gt, 10));
        assert_eq!(reg.supported_by(&g2).count(), 0);
    }
}
