#![warn(missing_docs)]
//! Query processor: the DBMS the speculation subsystem prepares.
//!
//! The paper ran against Oracle 8i; this crate is the from-scratch
//! equivalent sized to the paper's workload (conjunctive queries over a
//! TPC-H subset):
//!
//! * [`context`] — execution context and cancellation tokens (speculative
//!   manipulations are cancellable mid-flight, paper Section 3.1),
//! * [`plan`] — physical plan trees with bound predicates,
//! * [`run`] — the push-based row-at-a-time executor for plans,
//! * [`batch`] — the columnar batch executor (the default path):
//!   operators exchange [`batch::ColumnBatch`]es of `Arc`-shared column
//!   vectors with selection vectors; scans forward cached column
//!   segments zero-copy and fuse filter/project,
//! * [`batch_row`] — the legacy row-major batch pipeline
//!   (`Vec<Tuple>` chunks), kept as a bench arm and second
//!   differential witness,
//! * [`estimate`] — cardinality/cost estimation from catalog statistics
//!   and histograms,
//! * [`optimizer`] — access-path selection and greedy join ordering,
//! * [`rewrite`] — the materialized-view registry and sub-graph
//!   rewriting (the mechanism speculative materializations plug into),
//! * [`engine`] — [`Database`]: the public facade binding storage,
//!   catalog, optimizer and executor together, measuring every
//!   operation's virtual elapsed time.

pub mod batch;
pub mod batch_row;
pub mod context;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod optimizer;
pub mod parallel;
pub mod plan;
pub mod plan_cache;
pub mod rewrite;
pub mod run;

pub use batch::{run_batched, run_collect_batched, ColumnBatch, DEFAULT_BATCH_SIZE};
pub use batch_row::Batch;
pub use context::{BatchStats, CancelToken, ExecCtx};
pub use engine::{
    threads_from_env, Database, DatabaseConfig, ExecMode, MaterializeOutcome, OpOutcome,
    QueryOutput, ViewMode,
};
pub use error::{ExecError, ExecResult};
pub use estimate::{CostEstimate, Estimator};
pub use optimizer::JoinOrder;
pub use parallel::effective_workers;
pub use plan::{BoundPred, Plan, PlanNode};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use rewrite::{MatchMode, ViewDef, ViewRegistry};
