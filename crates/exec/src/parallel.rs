//! Morsel-driven parallel execution: the worker pool and the ordered
//! fan-out driver.
//!
//! The columnar executor splits large table scans into fixed-size
//! *morsels* (runs of heap pages) and dispatches them to a process-wide
//! worker pool. Two properties make the parallel path safe to enable
//! anywhere the serial path runs:
//!
//! 1. **Deterministic merge.** `stream_ordered` delivers morsel
//!    results to the coordinator strictly in submission order, whatever
//!    order workers finish in, buffering at most one scheduling window
//!    of out-of-order results. Combined with the coordinator performing
//!    all virtual-time accounting serially (see
//!    [`crate::batch`]'s phase-A page walk), results and
//!    [`specdb_storage::ResourceDemand`] are bit-identical to the
//!    serial executor at any thread count.
//! 2. **No stragglers.** The driver never returns while a submitted
//!    morsel is still running: on error or cancellation it raises an
//!    abort flag (checked by workers at page granularity) and drains
//!    every in-flight task before returning, so callers regain truly
//!    exclusive use of the engine state they lent out via `Arc`.
//!
//! Workers are plain threads owning a job queue each (a vendored
//! `crossbeam` channel); the pool grows on demand and is shared by every
//! query, including speculative manipulations running through
//! [`crate::engine::Database::materialize`]. Worker panics are caught,
//! forwarded to the coordinator, and re-raised there after the drain.

use crate::error::ExecResult;
use crossbeam::channel;
use parking_lot::Mutex;
use specdb_storage::StorageError;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A unit of work a worker runs: receives the driver's abort flag
/// (raised when a sibling morsel failed — workers should bail out at the
/// next page boundary) and returns the morsel's result.
pub(crate) type MorselTask<T> = Box<dyn FnOnce(&AtomicBool) -> ExecResult<T> + Send + 'static>;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide morsel worker pool. Workers are spawned lazily up
/// to the highest thread count any query has asked for and then live for
/// the process lifetime, each draining its own job queue.
pub(crate) struct WorkerPool {
    senders: Mutex<Vec<channel::Sender<Job>>>,
    /// Round-robin cursor for fire-and-forget [`WorkerPool::spawn`] jobs.
    next_spawn: AtomicUsize,
}

impl WorkerPool {
    /// The shared pool instance.
    pub(crate) fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool {
            senders: Mutex::new(Vec::new()),
            next_spawn: AtomicUsize::new(0),
        })
    }

    /// Grow the pool to at least `n` workers.
    fn ensure(&self, n: usize) {
        let mut senders = self.senders.lock();
        while senders.len() < n {
            let (tx, rx) = channel::unbounded::<Job>();
            let id = senders.len();
            std::thread::Builder::new()
                .name(format!("specdb-morsel-{id}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn morsel worker");
            senders.push(tx);
        }
    }

    /// Enqueue a job on worker `worker % pool size`.
    fn submit(&self, worker: usize, job: Job) {
        let senders = self.senders.lock();
        assert!(senders[worker % senders.len()].send(job).is_ok(), "morsel worker alive");
    }

    /// Fire-and-forget a background job on the pool (round-robin worker
    /// choice). Used by speculative prefetch: the caller never waits for
    /// — or observes — the job's completion, so it must only touch state
    /// that tolerates racing with foreground queries (the segment cache).
    pub(crate) fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.ensure(1);
        let worker = self.next_spawn.fetch_add(1, Ordering::Relaxed);
        self.submit(worker, Box::new(job));
    }
}

/// Minimum pages per dispatched morsel: below this, per-task overhead
/// (boxing, channel hops, ordered-merge buffering) outweighs the decode
/// and filter work a worker does per page.
pub(crate) const MIN_MORSEL_PAGES: usize = 8;

/// Pages per morsel for a scan of `items` pages on `threads` workers:
/// aim for a few morsels per worker (so finish-order skew cannot idle
/// the pool), but never shrink a task below [`MIN_MORSEL_PAGES`] — tiny
/// per-page tasks spend more on dispatch than on work (the
/// `batch_columnar_par4` regression).
pub(crate) fn morsel_size(items: usize, threads: usize) -> usize {
    let target = threads.max(1) * 4;
    items.div_ceil(target).clamp(MIN_MORSEL_PAGES, 32)
}

/// Workers actually dispatched for a `threads`-thread scan: never more
/// than the host can run in parallel. Oversubscribing a small host
/// multiplies context-switch cost without buying any concurrency (the
/// `batch_columnar_par4` regression was partly this: four workers
/// time-slicing one core), but the count never drops below one — an
/// explicit thread request always exercises the full morsel path
/// (dispatch, ordered merge, morsel spans), results being bit-identical
/// at any worker count.
pub fn effective_workers(threads: usize) -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    let cores = *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    threads.min(cores).max(1)
}

/// Run `tasks` on the worker pool, delivering results to `emit` strictly
/// in task order (task `i` goes to worker `i % threads`, keeping the
/// dispatch deterministic too).
///
/// At most `2 * threads` tasks are in flight or buffered at once. The
/// first failure — a task error, an `emit` error, or a worker panic —
/// raises the shared abort flag, stops further submissions, and is
/// reported to the caller only after every in-flight task has finished,
/// so no worker still touches shared state when this returns. Errors
/// surface in task order: a morsel's failure is reported only after all
/// earlier morsels' results were emitted, exactly as a serial loop
/// would. Panics are re-raised on the calling thread.
pub(crate) fn stream_ordered<T: Send + 'static>(
    threads: usize,
    tasks: Vec<MorselTask<T>>,
    emit: &mut dyn FnMut(T) -> ExecResult<()>,
) -> ExecResult<()> {
    let threads = threads.max(1);
    if threads == 1 {
        // One effective worker: a pool round-trip per morsel buys no
        // concurrency, only channel hops and context switches (the
        // single-core share of the `batch_columnar_par4` regression).
        // Run the same tasks inline — identical chunking, spans, abort
        // checks, and emit order, minus the handoff.
        let abort = AtomicBool::new(false);
        for task in tasks {
            emit(task(&abort)?)?;
        }
        return Ok(());
    }
    let pool = WorkerPool::global();
    pool.ensure(threads);
    let abort = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::unbounded::<(usize, std::thread::Result<ExecResult<T>>)>();
    let total = tasks.len();
    let window = threads * 2;
    let mut task_iter = tasks.into_iter().enumerate();
    let mut submitted = 0usize;
    let mut done = 0usize;
    let mut next_emit = 0usize;
    let mut buffered: BTreeMap<usize, ExecResult<T>> = BTreeMap::new();
    let mut result: ExecResult<()> = Ok(());
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    loop {
        while result.is_ok()
            && panic_payload.is_none()
            && submitted < total
            && submitted - done < window
        {
            let (i, task) = task_iter.next().expect("submitted < total");
            let tx = tx.clone();
            let abort = Arc::clone(&abort);
            pool.submit(
                i % threads,
                Box::new(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| task(&abort)));
                    let _ = tx.send((i, r));
                }),
            );
            submitted += 1;
        }
        if done == submitted {
            break;
        }
        let (i, r) = rx.recv().expect("morsel workers never drop results");
        done += 1;
        match r {
            Err(p) => {
                abort.store(true, Ordering::Relaxed);
                panic_payload.get_or_insert(p);
            }
            Ok(r) => {
                buffered.insert(i, r);
            }
        }
        while buffered.first_key_value().map(|(&k, _)| k) == Some(next_emit) {
            let r = buffered.remove(&next_emit).expect("key just observed");
            next_emit += 1;
            if result.is_err() || panic_payload.is_some() {
                continue; // draining; results past the failure are dropped
            }
            let step = r.and_then(&mut *emit);
            if let Err(e) = step {
                abort.store(true, Ordering::Relaxed);
                result = Err(e);
            }
        }
    }
    if let Some(p) = panic_payload {
        resume_unwind(p);
    }
    result
}

/// Convenience for workers: the abort-flag check every morsel performs
/// at page granularity, reported as a cancellation (the driver already
/// holds the originating error; this one is discarded in the drain).
#[inline]
pub(crate) fn check_abort(abort: &AtomicBool) -> ExecResult<()> {
    if abort.load(Ordering::Relaxed) {
        Err(StorageError::Cancelled.into())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecError;
    use std::sync::atomic::AtomicUsize;

    fn counting_tasks(n: usize, ran: &Arc<AtomicUsize>) -> Vec<MorselTask<usize>> {
        (0..n)
            .map(|i| {
                let ran = Arc::clone(ran);
                let task: MorselTask<usize> = Box::new(move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    // Finish intentionally out of submission order.
                    std::thread::sleep(std::time::Duration::from_micros(((n - i) * 50) as u64));
                    Ok(i)
                });
                task
            })
            .collect()
    }

    #[test]
    fn results_arrive_in_task_order() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut seen = Vec::new();
        stream_ordered(4, counting_tasks(20, &ran), &mut |i| {
            seen.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn task_error_surfaces_after_earlier_results() {
        let tasks: Vec<MorselTask<usize>> = (0..8)
            .map(|i| {
                let task: MorselTask<usize> = Box::new(move |_| {
                    if i == 3 {
                        Err(ExecError::UnknownTable("boom".into()))
                    } else {
                        Ok(i)
                    }
                });
                task
            })
            .collect();
        let mut seen = Vec::new();
        let err = stream_ordered(4, tasks, &mut |i| {
            seen.push(i);
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::UnknownTable(_)));
        assert_eq!(seen, vec![0, 1, 2], "all results before the failure, none after");
    }

    #[test]
    fn emit_error_stops_the_stream() {
        // Tasks 0 and 1 finish instantly; every later task parks on the
        // abort flag, so nothing beyond the scheduling window can
        // complete (and thereby admit further submissions) before the
        // emit failure raises the flag.
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<MorselTask<usize>> = (0..16)
            .map(|i| {
                let ran = Arc::clone(&ran);
                let task: MorselTask<usize> = Box::new(move |abort| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    while i > 1 && !abort.load(Ordering::Relaxed) {
                        std::thread::sleep(std::time::Duration::from_micros(20));
                    }
                    Ok(i)
                });
                task
            })
            .collect();
        let err = stream_ordered(2, tasks, &mut |i| {
            if i == 1 {
                Err(ExecError::UnknownTable("emit".into()))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::UnknownTable(_)));
        // Initial window of 4 plus one admission per fast completion.
        assert!(ran.load(Ordering::Relaxed) <= 6);
    }

    #[test]
    fn abort_flag_reaches_later_tasks() {
        let aborted_seen = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<MorselTask<usize>> = (0..6)
            .map(|i| {
                let aborted_seen = Arc::clone(&aborted_seen);
                let task: MorselTask<usize> = Box::new(move |abort| {
                    if i == 0 {
                        return Err(ExecError::UnknownTable("first".into()));
                    }
                    // Later tasks poll the flag like a scan polls per page.
                    for _ in 0..1000 {
                        if abort.load(Ordering::Relaxed) {
                            aborted_seen.fetch_add(1, Ordering::Relaxed);
                            return check_abort(abort).map(|_| i);
                        }
                        std::thread::sleep(std::time::Duration::from_micros(20));
                    }
                    Ok(i)
                });
                task
            })
            .collect();
        let err = stream_ordered(2, tasks, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, ExecError::UnknownTable(_)));
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let tasks: Vec<MorselTask<()>> = (0..4)
            .map(|i| {
                let task: MorselTask<()> = Box::new(move |_| {
                    assert!(i != 2, "morsel blew up");
                    Ok(())
                });
                task
            })
            .collect();
        let r = catch_unwind(AssertUnwindSafe(|| stream_ordered(2, tasks, &mut |_| Ok(()))));
        assert!(r.is_err(), "panic must cross the pool boundary");
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        stream_ordered(4, Vec::<MorselTask<()>>::new(), &mut |_| panic!("nothing to emit"))
            .unwrap();
    }

    #[test]
    fn morsel_sizing_scales_with_input() {
        assert_eq!(morsel_size(1, 4), 8, "never below the dispatch-overhead floor");
        assert_eq!(morsel_size(16, 4), 8);
        assert_eq!(morsel_size(64, 4), 8);
        assert_eq!(morsel_size(100_000, 4), 32, "capped so tasks stay cancellable");
        assert_eq!(morsel_size(10, 1), 8);
    }

    #[test]
    fn spawned_jobs_run_in_the_background() {
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let ran = Arc::clone(&ran);
            WorkerPool::global().spawn(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..500 {
            if ran.load(Ordering::Relaxed) == 4 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("spawned jobs never ran");
    }
}
