//! Cardinality and cost estimation.
//!
//! The optimizer and — crucially — the paper's speculative cost model
//! (Theorem 3.1) both need `cost(q, m)` estimates computed from catalog
//! statistics. Estimates use histograms when the column has one (which
//! is exactly what the *histogram creation* manipulation buys) and fall
//! back to System-R-style heuristics otherwise: `1/distinct` for
//! equality, linear interpolation between min and max for ranges, `1/3`
//! when nothing is known.
//!
//! Estimated cost is expressed as a [`CostEstimate`] with the same
//! components as a measured [`ResourceDemand`], so the one
//! [`specdb_storage::DiskModel`] converts both estimated and measured
//! work into virtual time.

use crate::plan::{BoundPred, Plan, PlanNode};
use specdb_catalog::Catalog;
use specdb_query::CompareOp;
use specdb_storage::{BufferPool, DiskModel, PageId, ResourceDemand, Value, VirtualTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Bound;

/// Estimated output cardinality and resource demand of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated sequential page reads.
    pub seq_pages: f64,
    /// Estimated random page reads.
    pub rand_pages: f64,
    /// Estimated tuples of CPU work.
    pub cpu: f64,
    /// Estimated page writes (spill traffic).
    pub write_pages: f64,
    /// Estimated bytes of operator working memory (hash-join build sides).
    /// Charged to [`ResourceDemand::mem_bytes`]; the disk model assigns it
    /// no time, but the speculator sees build-side footprint.
    pub mem_bytes: f64,
}

impl CostEstimate {
    /// The zero estimate.
    pub fn zero() -> Self {
        CostEstimate {
            rows: 0.0,
            seq_pages: 0.0,
            rand_pages: 0.0,
            cpu: 0.0,
            write_pages: 0.0,
            mem_bytes: 0.0,
        }
    }

    /// Convert to a resource demand (for the disk model).
    pub fn demand(&self) -> ResourceDemand {
        ResourceDemand {
            seq_reads: self.seq_pages.max(0.0).round() as u64,
            rand_reads: self.rand_pages.max(0.0).round() as u64,
            writes: self.write_pages.max(0.0).round() as u64,
            hits: 0,
            cpu_tuples: self.cpu.max(0.0).round() as u64,
            mem_bytes: self.mem_bytes.max(0.0).round() as u64,
        }
    }

    /// Estimated virtual time under a disk model.
    pub fn time(&self, disk: &DiskModel) -> VirtualTime {
        disk.time(&self.demand())
    }

    /// Add another estimate's resource components (not its rows).
    fn absorb(&mut self, other: &CostEstimate) {
        self.seq_pages += other.seq_pages;
        self.rand_pages += other.rand_pages;
        self.cpu += other.cpu;
        self.write_pages += other.write_pages;
        self.mem_bytes += other.mem_bytes;
    }
}

/// Statistics-driven estimator over a catalog snapshot.
///
/// An instance lives for one optimization pass over one catalog state, so
/// it memoizes per-(table, predicate) selectivities and per-subplan cost
/// estimates without any invalidation scheme: the greedy/DP join-order
/// search re-visits the same scan and join subplans many times, and
/// without the memo that re-walk is exponential in join count.
pub struct Estimator<'a> {
    catalog: &'a Catalog,
    pool: &'a BufferPool,
    sel_memo: RefCell<HashMap<String, f64>>,
    est_memo: RefCell<HashMap<String, CostEstimate>>,
}

impl<'a> Estimator<'a> {
    /// Construct over the current catalog and pool.
    pub fn new(catalog: &'a Catalog, pool: &'a BufferPool) -> Self {
        Estimator {
            catalog,
            pool,
            sel_memo: RefCell::new(HashMap::new()),
            est_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Selectivity of `table.column op value` (memoized per instance).
    pub fn selectivity(&self, table: &str, column: &str, op: CompareOp, value: &Value) -> f64 {
        let key = format!("{table}|{column}|{}|{value}", op.sql());
        if let Some(&s) = self.sel_memo.borrow().get(&key) {
            return s;
        }
        let s = self.selectivity_uncached(table, column, op, value);
        self.sel_memo.borrow_mut().insert(key, s);
        s
    }

    fn selectivity_uncached(&self, table: &str, column: &str, op: CompareOp, value: &Value) -> f64 {
        if let Some(h) = self.catalog.histogram(table, column) {
            return match op {
                CompareOp::Eq => h.fraction_eq(value),
                CompareOp::Ne => 1.0 - h.fraction_eq(value),
                CompareOp::Lt => h.fraction_lt(value),
                CompareOp::Le => h.fraction_le(value),
                CompareOp::Gt => 1.0 - h.fraction_le(value),
                CompareOp::Ge => 1.0 - h.fraction_lt(value),
            }
            .clamp(0.0, 1.0);
        }
        // Fall back to basic column stats.
        let stats = self
            .catalog
            .table(table)
            .and_then(|t| t.schema.index_of(column).map(|i| t.stats.column(i).clone()));
        let Some(stats) = stats else { return 0.33 };
        match op {
            CompareOp::Eq => 1.0 / stats.distinct.max(1) as f64,
            CompareOp::Ne => 1.0 - 1.0 / stats.distinct.max(1) as f64,
            _ => {
                let (Some(min), Some(max)) = (&stats.min, &stats.max) else {
                    return 0.33;
                };
                let (lo, hi, x) = (min.as_numeric(), max.as_numeric(), value.as_numeric());
                if hi <= lo || !x.is_finite() {
                    return 0.33;
                }
                let frac_below = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                match op {
                    CompareOp::Lt | CompareOp::Le => frac_below,
                    CompareOp::Gt | CompareOp::Ge => 1.0 - frac_below,
                    _ => unreachable!(),
                }
            }
        }
        .clamp(0.0, 1.0)
    }

    /// Combined selectivity of a conjunction of bound predicates on a table.
    fn filters_selectivity(&self, table: &str, filters: &[BoundPred]) -> f64 {
        let Some(t) = self.catalog.table(table) else { return 1.0 };
        filters
            .iter()
            .map(|f| {
                let col = t.schema.columns().get(f.idx).map(|c| c.name.as_str()).unwrap_or("");
                self.selectivity(table, col, f.op, &f.value)
            })
            .product()
    }

    /// Join selectivity for an equi-join between two *columns* with the
    /// given distinct counts, `1 / max(d1, d2)` (System R).
    pub fn join_selectivity_from_distinct(&self, d1: u64, d2: u64) -> f64 {
        1.0 / d1.max(d2).max(1) as f64
    }

    /// Distinct count of a stored table's column (1 if unknown).
    pub fn distinct(&self, table: &str, column: &str) -> u64 {
        self.catalog
            .table(table)
            .and_then(|t| t.schema.index_of(column).map(|i| t.stats.column(i).distinct))
            .unwrap_or(1)
            .max(1)
    }

    /// Range selectivity for index-scan bounds on a column.
    fn bounds_selectivity(
        &self,
        table: &str,
        column: &str,
        lo: &Bound<Value>,
        hi: &Bound<Value>,
    ) -> f64 {
        let below_hi = match hi {
            Bound::Unbounded => 1.0,
            Bound::Included(v) => self.selectivity(table, column, CompareOp::Le, v),
            Bound::Excluded(v) => self.selectivity(table, column, CompareOp::Lt, v),
        };
        let below_lo = match lo {
            Bound::Unbounded => 0.0,
            Bound::Included(v) => self.selectivity(table, column, CompareOp::Lt, v),
            Bound::Excluded(v) => self.selectivity(table, column, CompareOp::Le, v),
        };
        (below_hi - below_lo).clamp(0.0, 1.0)
    }

    /// Recursively estimate a plan (memoized per instance: the join-order
    /// search estimates the same subplans repeatedly).
    pub fn estimate(&self, plan: &Plan) -> CostEstimate {
        // Plan trees are pure data with a complete `Debug` rendering, so
        // the rendering doubles as a structural memo key; `cols.len()`
        // joins it because the hash-join width heuristic reads it.
        let key = format!("{}|{:?}", plan.cols.len(), plan.node);
        if let Some(&e) = self.est_memo.borrow().get(&key) {
            return e;
        }
        let e = self.estimate_uncached(plan);
        self.est_memo.borrow_mut().insert(key, e);
        e
    }

    fn estimate_uncached(&self, plan: &Plan) -> CostEstimate {
        match &plan.node {
            PlanNode::SeqScan { table, filters } => {
                let (rows, pages) = self.table_size(table);
                let sel = self.filters_selectivity(table, filters);
                CostEstimate {
                    rows: rows * sel,
                    seq_pages: pages,
                    rand_pages: 0.0,
                    cpu: rows,
                    write_pages: 0.0,
                    mem_bytes: 0.0,
                }
            }
            PlanNode::IndexScan { table, column, lo, hi, filters } => {
                let (rows, pages) = self.table_size(table);
                let range_sel = self.bounds_selectivity(table, column, lo, hi);
                let matched = rows * range_sel;
                let leaf_pages = match self.catalog.index(table, column) {
                    Some(idx) => idx.probe_pages(self.pool, matched.round() as u64) as f64,
                    None => 1.0 + matched / 200.0,
                };
                // Unclustered fetches: distinct data pages touched.
                let fetch_pages = matched.min(pages);
                let residual_sel = self.filters_selectivity(table, filters);
                CostEstimate {
                    rows: matched * residual_sel,
                    seq_pages: (leaf_pages - 1.0).max(0.0),
                    rand_pages: 1.0 + fetch_pages,
                    cpu: 2.0 * matched,
                    write_pages: 0.0,
                    mem_bytes: 0.0,
                }
            }
            PlanNode::HashJoin { left, right, lkey, rkey, residual } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                let sel = self.key_join_selectivity(left, *lkey, right, *rkey);
                let res_sel = 0.1f64.powi(residual.len() as i32).max(1e-9);
                // Hybrid hash spill estimate: the overflow fraction of
                // both inputs pays one extra write+read pass.
                let width = 2.0 + 12.0 * plan.cols.len() as f64;
                let build_bytes = l.rows * width;
                let pool_bytes = (self.pool.capacity() * specdb_storage::PAGE_SIZE) as f64;
                let spill_fraction = if self.pool.spill_model() && build_bytes > pool_bytes {
                    1.0 - pool_bytes / build_bytes
                } else {
                    0.0
                };
                let spill_pages =
                    spill_fraction * (l.rows + r.rows) * width / specdb_storage::PAGE_SIZE as f64;
                let mut est = CostEstimate {
                    rows: (l.rows * r.rows * sel * res_sel).max(0.0),
                    seq_pages: spill_pages,
                    rand_pages: 0.0,
                    cpu: l.rows + r.rows,
                    write_pages: spill_pages,
                    mem_bytes: build_bytes,
                };
                est.absorb(&l);
                est.absorb(&r);
                est
            }
            PlanNode::IndexNLJoin { outer, inner_table, inner_column, residual, .. } => {
                let o = self.estimate(outer);
                let (irows, ipages) = self.table_size(inner_table);
                let d_inner = self.distinct(inner_table, inner_column);
                let matched_per_probe = irows / d_inner as f64;
                let probes = o.rows;
                let res_sel = 0.1f64.powi(residual.len() as i32).max(1e-9);
                // Probe I/O is cache-aware: an inner table that fits the
                // buffer pool is read at most once (subsequent probes
                // hit); a larger inner pays random fetches per probe,
                // bounded by a few passes over the table.
                let pool_pages = self.pool.capacity() as f64;
                let fetch = if ipages <= pool_pages * 0.8 {
                    ipages.min(probes * (1.0 + matched_per_probe))
                } else {
                    (probes * (1.0 + matched_per_probe)).min(3.0 * ipages + probes)
                };
                let mut est = CostEstimate {
                    rows: probes * matched_per_probe * res_sel,
                    seq_pages: 0.0,
                    rand_pages: fetch,
                    cpu: probes * (1.0 + matched_per_probe),
                    write_pages: 0.0,
                    mem_bytes: 0.0,
                };
                est.absorb(&o);
                est
            }
            PlanNode::NestedLoop { left, right, cond } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                let sel = if cond.is_empty() { 1.0 } else { 0.1f64.powi(cond.len() as i32) };
                let mut est = CostEstimate {
                    rows: l.rows * r.rows * sel,
                    seq_pages: 0.0,
                    rand_pages: 0.0,
                    cpu: l.rows * r.rows,
                    write_pages: 0.0,
                    mem_bytes: 0.0,
                };
                est.absorb(&l);
                est.absorb(&r);
                est
            }
            PlanNode::Project { input, .. } => {
                let i = self.estimate(input);
                CostEstimate { rows: i.rows, cpu: i.cpu + i.rows, ..i }
            }
            PlanNode::Aggregate { input, group, .. } => {
                let i = self.estimate(input);
                // Output rows bounded by input rows; assume ~1/10 of input
                // rows per grouping column as a coarse group-count guess.
                let rows = if group.is_empty() {
                    1.0
                } else {
                    (i.rows / 10.0_f64.powi(group.len() as i32)).clamp(1.0, i.rows)
                };
                CostEstimate { rows, cpu: i.cpu + i.rows, ..i }
            }
        }
    }

    /// `(rows, pages)` of a stored table (zero if unknown).
    pub fn table_size(&self, table: &str) -> (f64, f64) {
        match self.catalog.table(table) {
            Some(t) => (t.stats.rows as f64, t.stats.pages as f64),
            None => (0.0, 0.0),
        }
    }

    /// Pages of `table` whose retained zone maps already prove no row
    /// can pass `filters` — the pages a fused scan will skip decoding
    /// (`exec.pages_skipped`).
    ///
    /// Planning/observability metadata only: a skipped page still
    /// charges its read and per-row CPU (zone skipping elides wall-clock
    /// decode, not demand), so this deliberately does **not** feed the
    /// demand numbers [`Estimator::estimate`] returns — those stay
    /// faithful to what execution will charge. Only zones *confirmed* by
    /// deterministic readers count ([`SegCache::confirmed_zone_maps`]);
    /// asynchronous prefetch can never make two identical optimization
    /// passes disagree.
    ///
    /// [`SegCache::confirmed_zone_maps`]: specdb_storage::SegCache::confirmed_zone_maps
    pub fn zone_skippable_pages(&self, table: &str, filters: &[BoundPred]) -> u32 {
        if filters.is_empty() {
            return 0;
        }
        let Some(t) = self.catalog.table(table) else { return 0 };
        let cache = self.pool.seg_cache();
        let mut skippable = 0u32;
        for page_no in 0..t.heap.pages(self.pool) {
            let pid = PageId::new(t.heap.file, page_no);
            if let Some(zones) = cache.confirmed_zone_maps(pid) {
                if crate::batch::zones_exclude(&zones, filters) {
                    skippable += 1;
                }
            }
        }
        skippable
    }

    /// Join selectivity between two plan outputs on given key positions:
    /// resolve each key back to a stored column when the input is a scan,
    /// to use its distinct count; otherwise assume 1/10 of rows distinct.
    fn key_join_selectivity(&self, left: &Plan, lkey: usize, right: &Plan, rkey: usize) -> f64 {
        let d = |p: &Plan, key: usize| -> u64 {
            match &p.node {
                PlanNode::SeqScan { table, .. } | PlanNode::IndexScan { table, .. } => self
                    .catalog
                    .table(table)
                    .map(|t| t.stats.columns.get(key).map(|c| c.distinct).unwrap_or(1))
                    .unwrap_or(1),
                _ => (self.estimate(p).rows / 10.0).max(1.0) as u64,
            }
        };
        self.join_selectivity_from_distinct(d(left, lkey), d(right, rkey))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_catalog::{ColumnDef, DataType, Schema, TableStats};
    use specdb_storage::heap::BulkLoader;
    use specdb_storage::{HeapFile, Tuple};

    fn fixture() -> (BufferPool, Catalog) {
        let mut pool = BufferPool::new(256);
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(heap, &pool);
        for i in 0..2000i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Int(i % 20)]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let stats = TableStats::analyze(&mut pool, heap, 2).unwrap();
        cat.register(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
            ]),
            heap,
            stats,
            false,
        );
        (pool, cat)
    }

    #[test]
    fn stats_fallback_selectivity() {
        let (pool, cat) = fixture();
        let e = Estimator::new(&cat, &pool);
        // Equality on grp: 20 distinct → 0.05.
        let s = e.selectivity("t", "grp", CompareOp::Eq, &Value::Int(3));
        assert!((s - 0.05).abs() < 0.01, "{s}");
        // Range on id: interpolation.
        let s = e.selectivity("t", "id", CompareOp::Lt, &Value::Int(500));
        assert!((s - 0.25).abs() < 0.05, "{s}");
    }

    #[test]
    fn histogram_improves_estimates() {
        let (mut pool, mut cat) = fixture();
        cat.build_histogram(&mut pool, "t", "id").unwrap();
        let e = Estimator::new(&cat, &pool);
        let s = e.selectivity("t", "id", CompareOp::Lt, &Value::Int(500));
        assert!((s - 0.25).abs() < 0.02, "{s}");
    }

    #[test]
    fn seq_scan_estimate_matches_stats() {
        let (pool, cat) = fixture();
        let e = Estimator::new(&cat, &pool);
        let plan = Plan {
            node: PlanNode::SeqScan { table: "t".into(), filters: vec![] },
            cols: vec!["t.id".into(), "t.grp".into()],
        };
        let est = e.estimate(&plan);
        assert!((est.rows - 2000.0).abs() < 1.0);
        assert_eq!(est.seq_pages, cat.table("t").unwrap().stats.pages as f64);
    }

    #[test]
    fn index_scan_cheaper_when_selective() {
        // A 9-page table legitimately favours a sequential scan even for
        // point lookups (1-2 random I/Os ≈ 16 ms vs 5 ms of scanning), so
        // this test uses a table large enough for the index to matter.
        let mut pool = BufferPool::new(2048);
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(heap, &pool);
        for i in 0..50_000i64 {
            loader
                .push(&mut pool, &Tuple::new(vec![Value::Int(i), Value::Int(i % 20)]))
                .unwrap();
        }
        loader.finish(&mut pool).unwrap();
        let stats = TableStats::analyze(&mut pool, heap, 2).unwrap();
        cat.register(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
            ]),
            heap,
            stats,
            false,
        );
        cat.build_index(&mut pool, "t", "id").unwrap();
        let e = Estimator::new(&cat, &pool);
        // Point lookup: one matched row. Random reads cost ~20× a
        // sequential page, so equality is where the index clearly wins
        // even on this small table.
        let seq = Plan {
            node: PlanNode::SeqScan {
                table: "t".into(),
                filters: vec![BoundPred { idx: 0, op: CompareOp::Eq, value: Value::Int(10) }],
            },
            cols: vec!["t.id".into(), "t.grp".into()],
        };
        let idx = Plan {
            node: PlanNode::IndexScan {
                table: "t".into(),
                column: "id".into(),
                lo: Bound::Included(Value::Int(10)),
                hi: Bound::Included(Value::Int(10)),
                filters: vec![],
            },
            cols: vec!["t.id".into(), "t.grp".into()],
        };
        let disk = DiskModel::default();
        let t_seq = e.estimate(&seq).time(&disk);
        let t_idx = e.estimate(&idx).time(&disk);
        assert!(t_idx < t_seq, "index {t_idx} should beat seq {t_seq} for a point lookup");
    }

    #[test]
    fn unknown_table_estimates_zero() {
        let (pool, cat) = fixture();
        let e = Estimator::new(&cat, &pool);
        assert_eq!(e.table_size("nope"), (0.0, 0.0));
        assert_eq!(e.selectivity("nope", "x", CompareOp::Eq, &Value::Int(1)), 0.33);
    }

    #[test]
    fn zone_skippable_pages_counts_confirmed_exclusions() {
        let (pool, cat) = fixture();
        let e = Estimator::new(&cat, &pool);
        let filters = vec![BoundPred { idx: 0, op: CompareOp::Lt, value: Value::Int(100) }];
        // Cold cache: no confirmed zones, so nothing is provably skippable.
        assert_eq!(e.zone_skippable_pages("t", &filters), 0);
        // Warm and confirm zones the way a scan would.
        let heap = cat.table("t").unwrap().heap;
        let cache = pool.seg_cache();
        let pages = heap.pages(&pool);
        for page_no in 0..pages {
            let pid = PageId::new(heap.file, page_no);
            let page = pool.peek_page(pid).unwrap();
            cache.get_or_decode(pid, &page, pool.seg_cacheable_size(heap.file)).unwrap();
        }
        // id is sorted 0..2000, so only the first page can hold id < 100.
        assert_eq!(e.zone_skippable_pages("t", &filters), pages - 1);
        assert_eq!(e.zone_skippable_pages("t", &[]), 0);
        assert_eq!(e.zone_skippable_pages("nope", &filters), 0);
    }

    #[test]
    fn estimate_clamps_selectivity() {
        let (pool, cat) = fixture();
        let e = Estimator::new(&cat, &pool);
        // Out-of-range constant: Lt far below min → ~0.
        let s = e.selectivity("t", "id", CompareOp::Lt, &Value::Int(-1000));
        assert!(s <= 0.001);
        let s = e.selectivity("t", "id", CompareOp::Ge, &Value::Int(-1000));
        assert!(s >= 0.999);
    }
}
