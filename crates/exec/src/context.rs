//! Execution context and cancellation.
//!
//! The paper's speculation conventions (Section 3.1) require that an
//! in-flight manipulation can be cancelled when the user edits away its
//! supporting query parts or presses GO. [`CancelToken`] is a cheap,
//! clonable flag the executor checks once per page of work; execution
//! aborts with [`specdb_storage::StorageError::Cancelled`].

use specdb_storage::{BufferPool, StorageError, StorageResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cancellation flag shared between the issuing thread and the executor.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; the executor notices at the next page boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Error out if cancelled.
    pub fn check(&self) -> StorageResult<()> {
        if self.is_cancelled() {
            Err(StorageError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Counters accumulated by the batch executor during one execution.
///
/// Zero when the row-at-a-time path ran. The engine publishes these as
/// the `exec.*` batch metrics after each query (`exec.batches`,
/// `exec.fused_scans`, `exec.cols_scanned`, `exec.sel_vec_density`,
/// `exec.index_probe_batches`, `exec.index_probe_saved_descents`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches emitted by batch-producing operators.
    pub batches: u64,
    /// Scan loops that fused filtering (and projection) into batch
    /// production instead of running them as separate operators.
    pub fused_scans: u64,
    /// Column vectors carried by scan-produced batches — with projection
    /// pushed into the scan this counts only the columns a query touches,
    /// not the table width (columnar path only).
    pub cols_scanned: u64,
    /// Rows decoded by sequential scans before filtering.
    pub rows_scanned: u64,
    /// Rows surviving scan filters into selection vectors.
    pub rows_selected: u64,
    /// Outer batches probed through a batched index pass in
    /// index-nested-loop joins (columnar path only).
    pub index_probe_batches: u64,
    /// Index descents served from a batch prober's per-batch memo instead
    /// of decoding leaf pages again.
    pub index_probe_saved: u64,
    /// Pages whose zone maps proved no row could pass the scan filters,
    /// so the fused scan skipped decoding (and filtering) them entirely.
    /// The page's I/O and per-row CPU are still charged — zone skipping
    /// is a wall-clock optimisation that leaves demand accounting and
    /// results bit-identical to a full scan.
    pub pages_skipped: u64,
}

/// Mutable state threaded through plan execution.
pub struct ExecCtx<'a> {
    /// The buffer pool (I/O accounting flows through it).
    pub pool: &'a mut BufferPool,
    /// Cancellation flag.
    pub cancel: CancelToken,
    /// Maximum logical rows per batch on the batch paths (columnar
    /// [`crate::batch::ColumnBatch`]es and legacy row-major
    /// [`crate::batch_row::Batch`]es).
    pub batch_size: usize,
    /// Batch-pipeline counters (written by [`crate::batch::run_batched`]
    /// and [`crate::batch_row::run_batched`]).
    pub batch_stats: BatchStats,
    /// Worker threads for morsel-driven scans on the columnar path
    /// (see [`crate::parallel`]). `1` (the default) runs every operator
    /// serially; higher counts split sequential scans into page morsels
    /// dispatched to the shared worker pool. Results and virtual-time
    /// accounting are identical at any value.
    pub threads: usize,
}

impl<'a> ExecCtx<'a> {
    /// Context with no cancellation.
    pub fn new(pool: &'a mut BufferPool) -> Self {
        Self::with_cancel(pool, CancelToken::new())
    }

    /// Context with a shared cancellation token.
    pub fn with_cancel(pool: &'a mut BufferPool, cancel: CancelToken) -> Self {
        ExecCtx {
            pool,
            cancel,
            batch_size: crate::batch::DEFAULT_BATCH_SIZE,
            batch_stats: BatchStats::default(),
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clean_and_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        assert_eq!(t.check(), Err(StorageError::Cancelled));
    }
}
