//! Execution context and cancellation.
//!
//! The paper's speculation conventions (Section 3.1) require that an
//! in-flight manipulation can be cancelled when the user edits away its
//! supporting query parts or presses GO. [`CancelToken`] is a cheap,
//! clonable flag the executor checks once per page of work; execution
//! aborts with [`specdb_storage::StorageError::Cancelled`].

use specdb_storage::{BufferPool, StorageError, StorageResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cancellation flag shared between the issuing thread and the executor.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; the executor notices at the next page boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Error out if cancelled.
    pub fn check(&self) -> StorageResult<()> {
        if self.is_cancelled() {
            Err(StorageError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Mutable state threaded through plan execution.
pub struct ExecCtx<'a> {
    /// The buffer pool (I/O accounting flows through it).
    pub pool: &'a mut BufferPool,
    /// Cancellation flag.
    pub cancel: CancelToken,
}

impl<'a> ExecCtx<'a> {
    /// Context with no cancellation.
    pub fn new(pool: &'a mut BufferPool) -> Self {
        ExecCtx { pool, cancel: CancelToken::new() }
    }

    /// Context with a shared cancellation token.
    pub fn with_cancel(pool: &'a mut BufferPool, cancel: CancelToken) -> Self {
        ExecCtx { pool, cancel }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clean_and_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        assert_eq!(t.check(), Err(StorageError::Cancelled));
    }
}
