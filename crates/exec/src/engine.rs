//! The `Database` engine facade.
//!
//! Binds storage, catalog, optimizer, executor, and the materialized-view
//! registry into the one object the rest of the workspace (and a library
//! user) talks to. Every operation that touches data returns its measured
//! [`ResourceDemand`] and the virtual elapsed time the
//! [`DiskModel`] assigns to it — the raw material for all of
//! the paper's timing experiments.

use crate::batch;
use crate::batch_row;
use crate::context::{BatchStats, CancelToken, ExecCtx};
use crate::error::{ExecError, ExecResult};
use crate::estimate::Estimator;
use crate::optimizer::{self, qualify, JoinOrder};
use crate::plan::Plan;
use crate::plan_cache::{query_key, PlanCache, PlanCacheStats};
use crate::rewrite::{
    rewrite_candidates_with, rewrite_greedy_with, MatchMode, ViewDef, ViewRegistry,
};
use crate::run;
use parking_lot::Mutex;
use specdb_catalog::{Catalog, ColumnDef, Schema, TableStats};
use specdb_obs::Observer;
use specdb_query::{canonical_key, ColumnResolver, Query, QueryGraph};
use specdb_storage::{
    BufferPool, DiskModel, HeapFile, ResourceDemand, Tuple, VirtualTime, PAGE_SIZE,
};

/// How materialized views participate in final-query planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewMode {
    /// The optimizer costs rewritten and original forms and keeps the
    /// cheaper (the paper's *query materialization*).
    CostBased,
    /// Materialized sub-queries are always substituted (the paper's
    /// *query rewriting*, used in its experiments).
    #[default]
    Forced,
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Buffer pool size in pages.
    pub buffer_pages: usize,
    /// Virtual-time disk model.
    pub disk: DiskModel,
    /// View participation mode.
    pub view_mode: ViewMode,
    /// View matching mode (exact, per the paper, or predicate
    /// subsumption — see [`MatchMode`]).
    pub match_mode: MatchMode,
    /// Join-order search strategy.
    pub join_order: JoinOrder,
    /// Model hybrid hash-join spills when builds exceed the buffer pool.
    pub spill_model: bool,
    /// Memoize plans and estimates per canonical graph key, invalidated
    /// by DDL epoch (see [`crate::plan_cache`]). On by default; the
    /// decision-loop benchmark disables it for its comparison arm.
    pub plan_cache: bool,
    /// Which executor pipeline plans run on (see [`ExecMode`]). Columnar
    /// by default; results and virtual-time accounting are identical
    /// across all modes, only wall-clock differs. The executor benchmark
    /// switches modes for its comparison arms.
    pub exec_mode: ExecMode,
    /// Worker threads for morsel-driven scans on the columnar pipeline
    /// (see [`crate::parallel`]). Defaults to the `SPECDB_THREADS`
    /// environment variable, or `1` (fully serial) when unset. Results
    /// and virtual-time accounting are bit-identical at any value; only
    /// wall-clock changes.
    pub threads: usize,
    /// Encode cached column segments (dictionary/RLE with zone maps —
    /// see [`specdb_storage::column`]). Defaults to the
    /// `SPECDB_ENCODING` environment variable (on unless set to
    /// `0`/`off`/`false`/`no`). Results and virtual-time accounting are
    /// bit-identical on or off; encoding trades decode CPU for cache
    /// capacity and code-width kernels.
    pub encoding: bool,
}

/// Which executor pipeline the engine runs plans on.
///
/// All three modes are bit-identical in results, order, and
/// virtual-time resource accounting (enforced by `tests/batch_exec.rs`
/// and the in-crate differential tests); they differ only in wall-clock
/// speed. The `executor` bench reports the progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Row-at-a-time oracle ([`crate::run`]).
    Row,
    /// Legacy row-major batch pipeline ([`crate::batch_row`]):
    /// `Vec<Tuple>` chunks with fused scan loops.
    BatchRow,
    /// Columnar batch pipeline ([`crate::batch`]): `Arc`-shared column
    /// vectors with selection vectors (the default).
    #[default]
    Columnar,
}

impl ExecMode {
    /// Stable lowercase label (bench arms, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Row => "row",
            ExecMode::BatchRow => "batch-row",
            ExecMode::Columnar => "batch-columnar",
        }
    }
}

impl DatabaseConfig {
    /// Config with a pool of `pages` pages and default disk model.
    pub fn with_buffer_pages(pages: usize) -> Self {
        DatabaseConfig {
            buffer_pages: pages,
            disk: DiskModel::default(),
            view_mode: ViewMode::Forced,
            match_mode: MatchMode::Exact,
            join_order: JoinOrder::Greedy,
            spill_model: true,
            plan_cache: true,
            exec_mode: ExecMode::Columnar,
            threads: threads_from_env(),
            encoding: specdb_storage::encoding_from_env(),
        }
    }

    /// Config with a pool sized in bytes.
    pub fn with_buffer_bytes(bytes: usize) -> Self {
        Self::with_buffer_pages((bytes / PAGE_SIZE).max(1))
    }

    /// Replace the disk model.
    pub fn disk(mut self, disk: DiskModel) -> Self {
        self.disk = disk;
        self
    }

    /// Replace the view mode.
    pub fn view_mode(mut self, mode: ViewMode) -> Self {
        self.view_mode = mode;
        self
    }

    /// Replace the view matching mode.
    pub fn match_mode(mut self, mode: MatchMode) -> Self {
        self.match_mode = mode;
        self
    }

    /// Replace the join-order strategy.
    pub fn join_order(mut self, jo: JoinOrder) -> Self {
        self.join_order = jo;
        self
    }

    /// Toggle spill modelling (see [`specdb_storage::BufferPool::set_spill_model`]).
    pub fn spill_model(mut self, on: bool) -> Self {
        self.spill_model = on;
        self
    }

    /// Toggle plan/estimate memoization (see [`crate::plan_cache`]).
    pub fn plan_cache(mut self, on: bool) -> Self {
        self.plan_cache = on;
        self
    }

    /// Toggle batch execution: `true` is the columnar pipeline, `false`
    /// the row oracle. Shorthand for [`DatabaseConfig::exec_mode`].
    pub fn batch_exec(mut self, on: bool) -> Self {
        self.exec_mode = if on { ExecMode::Columnar } else { ExecMode::Row };
        self
    }

    /// Select the executor pipeline (see [`ExecMode`]).
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Set the morsel worker thread count (clamped to at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Toggle segment encoding (see [`DatabaseConfig::encoding`]).
    pub fn encoding(mut self, on: bool) -> Self {
        self.encoding = on;
        self
    }
}

/// Parse a `SPECDB_THREADS`-style value: a positive integer, anything
/// else (including `0`) is rejected.
fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The default morsel worker thread count: `SPECDB_THREADS` when set to
/// a positive integer, else `1` (fully serial).
pub fn threads_from_env() -> usize {
    std::env::var("SPECDB_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_threads)
        .unwrap_or(1)
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        Self::with_buffer_pages(4096) // 32 MB at 8 KB pages, the paper's pool
    }
}

/// Result of a query execution.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result rows (empty if executed with `collect = false`).
    pub rows: Vec<Tuple>,
    /// Number of result rows (always populated).
    pub row_count: u64,
    /// Qualified output column names.
    pub cols: Vec<String>,
    /// Measured resource demand.
    pub demand: ResourceDemand,
    /// Virtual elapsed time under the engine's disk model.
    pub elapsed: VirtualTime,
    /// EXPLAIN-style plan rendering.
    pub plan: String,
    /// Names of materialized views the executed plan used.
    pub used_views: Vec<String>,
}

/// Result of a DDL-ish operation (index/histogram creation, load).
#[derive(Debug, Clone, Copy)]
pub struct OpOutcome {
    /// Measured resource demand.
    pub demand: ResourceDemand,
    /// Virtual elapsed time.
    pub elapsed: VirtualTime,
}

/// Result of a materialization.
#[derive(Debug, Clone)]
pub struct MaterializeOutcome {
    /// Catalog table name holding the result (`mv_<digest>`).
    pub table: String,
    /// Result rows.
    pub rows: u64,
    /// Result pages.
    pub pages: u64,
    /// Measured resource demand of the build.
    pub demand: ResourceDemand,
    /// Virtual elapsed time of the build.
    pub elapsed: VirtualTime,
    /// True if the view already existed and no work was done.
    pub already_existed: bool,
}

/// Calibration factor applied to [`MatEstimate::build`]. The raw
/// demand-based prediction runs ~2x hot against measured virtual build
/// times (the analytic model charges full write+CPU cost for work the
/// bulk loader amortises); scaling it down brings mean |relative error|
/// on the tiny dataset from ~107% to ~37%, inside the 50% bound asserted
/// by `tests/calibration.rs`. A static constant (not residency- or
/// history-dependent) so estimates stay deterministic.
pub const BUILD_TIME_SCALE: f64 = 0.46;

/// Optimizer-estimated consequences of materializing a sub-query.
#[derive(Debug, Clone, Copy)]
pub struct MatEstimate {
    /// Estimated build time (compute + write).
    pub build: VirtualTime,
    /// Estimated time to scan the materialized result afterwards.
    pub scan_result: VirtualTime,
    /// Estimated time to compute the sub-query from the current state
    /// (this is `cost(qm, m∅)` in the paper's cost model).
    pub compute_now: VirtualTime,
    /// Estimated result rows.
    pub rows: f64,
    /// Estimated result pages.
    pub pages: f64,
}

/// The database engine.
///
/// Cloning duplicates catalog/view metadata and shares page images via
/// `Arc`; the experiment harness uses this to replay every trace against
/// an identical starting state.
pub struct Database {
    pool: BufferPool,
    catalog: Catalog,
    views: ViewRegistry,
    disk: DiskModel,
    view_mode: ViewMode,
    match_mode: MatchMode,
    join_order: JoinOrder,
    staged: std::collections::HashMap<String, u32>,
    exec_mode: ExecMode,
    threads: usize,
    /// Plan/estimate memo. A mutex (never contended: each memo access is
    /// a short critical section on the engine's own thread) because
    /// estimate paths take `&self` and `Database` is shared across
    /// threads (`Send + Sync`).
    plan_cache: Mutex<PlanCache>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            pool: self.pool.clone(),
            catalog: self.catalog.clone(),
            views: self.views.clone(),
            disk: self.disk.clone(),
            view_mode: self.view_mode,
            match_mode: self.match_mode,
            join_order: self.join_order,
            staged: self.staged.clone(),
            exec_mode: self.exec_mode,
            threads: self.threads,
            plan_cache: Mutex::new(self.plan_cache.lock().clone()),
        }
    }
}

impl Database {
    /// Create an empty database.
    pub fn new(config: DatabaseConfig) -> Self {
        let mut pool = BufferPool::new(config.buffer_pages);
        pool.set_spill_model(config.spill_model);
        pool.set_encoding(config.encoding);
        Database {
            pool,
            catalog: Catalog::new(),
            views: ViewRegistry::new(),
            disk: config.disk,
            view_mode: config.view_mode,
            match_mode: config.match_mode,
            join_order: config.join_order,
            staged: std::collections::HashMap::new(),
            exec_mode: config.exec_mode,
            threads: config.threads.max(1),
            plan_cache: Mutex::new(PlanCache::new(config.plan_cache)),
        }
    }

    /// Set the morsel worker thread count at runtime (clamped to at
    /// least 1). Safe at any point: results and accounting are
    /// bit-identical at any value (see [`crate::parallel`]).
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// The morsel worker thread count queries run with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Toggle segment encoding at runtime. Already-decoded segments are
    /// dropped so the cache re-decodes in the new format; results and
    /// accounting are bit-identical either way (only decode cost and
    /// cache capacity change).
    pub fn set_encoding(&mut self, on: bool) {
        self.pool.set_encoding(on);
    }

    /// True when cached column segments store encoded (dictionary/RLE)
    /// columns rather than plain vectors.
    pub fn encoding(&self) -> bool {
        self.pool.encoding()
    }

    /// Warm the segment cache for `tables`' heap pages through the
    /// background worker pool — the speculator calls this when it picks
    /// a manipulation, so a predicted query's segments are decoded
    /// before GO. Purely a wall-clock optimisation: prefetch bypasses
    /// page-read accounting ([`BufferPool::peek_page`]) and is
    /// version-fenced against concurrent writes, so deterministic replay
    /// is untouched whether or not (or how fast) the warm-up runs.
    /// Returns the number of pages enqueued; `segcache.prefetch_issued`
    /// and the kind-split `segcache.prefetch_useful.manip` /
    /// `segcache.prefetch_useful.predict` counters record the outcome.
    pub fn prefetch_tables(&self, tables: &[String]) -> u64 {
        self.prefetch_tables_kind(tables, specdb_storage::PrefetchKind::Manipulation)
    }

    /// [`Database::prefetch_tables`] with an explicit [`PrefetchKind`]
    /// label, so warm-ups issued for predicted completed queries are
    /// accounted separately from one-step manipulation warm-ups.
    ///
    /// [`PrefetchKind`]: specdb_storage::PrefetchKind
    pub fn prefetch_tables_kind(
        &self,
        tables: &[String],
        kind: specdb_storage::PrefetchKind,
    ) -> u64 {
        /// Upper bound on pages enqueued per decision, so a huge
        /// predicted scan cannot swamp the workers (or the cache) before
        /// GO.
        const PREFETCH_CAP_PAGES: usize = 512;
        let cache = self.pool.seg_cache();
        let version = cache.version();
        let mut work: Vec<(specdb_storage::PageId, std::sync::Arc<specdb_storage::Page>, bool)> =
            Vec::new();
        'tables: for name in tables {
            let Some(t) = self.catalog.table(name) else { continue };
            let heap = t.heap;
            let small = self.pool.seg_cacheable_size(heap.file);
            for page_no in 0..heap.pages(&self.pool) {
                let pid = specdb_storage::PageId::new(heap.file, page_no);
                if cache.contains(pid) {
                    continue;
                }
                let Some(page) = self.pool.peek_page(pid) else { continue };
                work.push((pid, page, small));
                if work.len() >= PREFETCH_CAP_PAGES {
                    break 'tables;
                }
            }
        }
        if work.is_empty() {
            return 0;
        }
        let enqueued = work.len() as u64;
        crate::parallel::WorkerPool::global().spawn(move || {
            for (pid, page, small) in work {
                cache.prefetch(pid, &page, small, version, kind);
            }
        });
        enqueued
    }

    /// Toggle batch execution at runtime: `true` is the columnar
    /// pipeline, `false` the row oracle. Safe at any point: all
    /// pipelines produce bit-identical results and accounting.
    pub fn set_batch_exec(&mut self, on: bool) {
        self.exec_mode = if on { ExecMode::Columnar } else { ExecMode::Row };
    }

    /// True when plans execute on a batch pipeline (row-major or columnar).
    pub fn batch_exec_enabled(&self) -> bool {
        self.exec_mode != ExecMode::Row
    }

    /// Select the executor pipeline at runtime (see [`ExecMode`]).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The executor pipeline plans currently run on.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Pin `table`'s heap in the decoded segment cache (the
    /// memory-resident fast path), regardless of its size. Batch-path
    /// scans of a pinned table skip per-tuple decoding once warm; I/O
    /// accounting is unchanged. Materialized views are pinned
    /// automatically by [`Database::materialize`].
    pub fn cache_table_segments(&mut self, table: &str) -> ExecResult<()> {
        let heap = self
            .catalog
            .table(table)
            .ok_or_else(|| ExecError::UnknownTable(table.into()))?
            .heap;
        self.pool.mark_hot(heap.file);
        Ok(())
    }

    /// Undo [`Database::cache_table_segments`], dropping the table's
    /// decoded segments.
    pub fn uncache_table_segments(&mut self, table: &str) -> ExecResult<()> {
        let heap = self
            .catalog
            .table(table)
            .ok_or_else(|| ExecError::UnknownTable(table.into()))?
            .heap;
        self.pool.unmark_hot(heap.file);
        Ok(())
    }

    /// Current DDL epoch: advances on every catalog-shape change
    /// (load, index/histogram create+drop, materialize/drop, view-mode
    /// changes). The incremental manipulation space keys its delta state
    /// off this counter.
    pub fn ddl_epoch(&self) -> u64 {
        self.plan_cache.lock().epoch()
    }

    /// Toggle plan/estimate memoization at runtime (disabling clears it).
    pub fn set_plan_cache(&mut self, on: bool) {
        self.plan_cache.get_mut().set_enabled(on);
    }

    /// True when plan/estimate memoization is active.
    pub fn plan_cache_enabled(&self) -> bool {
        self.plan_cache.lock().enabled()
    }

    /// Hit/miss/invalidation counters for the plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.lock().stats()
    }

    /// Advance the DDL epoch, dropping every cached plan and estimate.
    fn bump_ddl_epoch(&mut self) {
        self.plan_cache.get_mut().bump_epoch();
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The buffer pool (read-only).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Attach an observer: page/disk traffic is counted by the pool,
    /// and the engine emits per-query and plan-choice events.
    pub fn set_observer(&mut self, observer: Observer) {
        self.pool.set_observer(observer);
    }

    /// The observer attached to this database (disabled by default).
    pub fn observer(&self) -> &Observer {
        self.pool.observer()
    }

    /// The view registry (read-only).
    pub fn views(&self) -> &ViewRegistry {
        &self.views
    }

    /// The disk model.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// Current view mode.
    pub fn view_mode(&self) -> ViewMode {
        self.view_mode
    }

    /// Change the view mode.
    pub fn set_view_mode(&mut self, mode: ViewMode) {
        if self.view_mode != mode {
            self.view_mode = mode;
            self.bump_ddl_epoch();
        }
    }

    /// Current view matching mode.
    pub fn match_mode(&self) -> MatchMode {
        self.match_mode
    }

    /// Change the view matching mode.
    pub fn set_match_mode(&mut self, mode: MatchMode) {
        if self.match_mode != mode {
            self.match_mode = mode;
            self.bump_ddl_epoch();
        }
    }

    /// Evict all unpinned pages (cold restart, used between trace replays).
    pub fn clear_buffer(&mut self) {
        self.pool.clear();
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> ExecResult<()> {
        let heap = HeapFile::create(&mut self.pool);
        let arity = schema.arity();
        self.catalog.register(name, schema, heap, TableStats::empty(arity), false);
        self.bump_ddl_epoch();
        Ok(())
    }

    /// Bulk-load rows into a table and re-analyze its statistics.
    /// Values are type-checked against the schema.
    pub fn load(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> ExecResult<OpOutcome> {
        let snap = self.pool.snapshot();
        let (heap, schema) = {
            let t = self.catalog.table(name).ok_or_else(|| ExecError::UnknownTable(name.into()))?;
            (t.heap, t.schema.clone())
        };
        let mut loader = specdb_storage::heap::BulkLoader::new(heap, &self.pool);
        for row in rows {
            for (i, v) in row.values().iter().enumerate() {
                let col = schema.columns().get(i).ok_or_else(|| ExecError::TypeMismatch {
                    table: name.into(),
                    column: format!("arity {} > {}", row.arity(), schema.arity()),
                })?;
                if !col.ty.admits(v) {
                    return Err(ExecError::TypeMismatch {
                        table: name.into(),
                        column: col.name.clone(),
                    });
                }
            }
            loader.push(&mut self.pool, &row)?;
        }
        loader.finish(&mut self.pool)?;
        let stats = TableStats::analyze(&mut self.pool, heap, schema.arity())?;
        let arity = schema.arity();
        // Re-register with fresh stats (same heap, same schema).
        let is_mat = self.catalog.table(name).map(|t| t.is_materialized).unwrap_or(false);
        let _ = arity;
        self.catalog.register(name, schema, heap, stats, is_mat);
        self.bump_ddl_epoch();
        Ok(self.outcome_since(snap))
    }

    /// Create an index on `table.column` (a speculative manipulation).
    pub fn create_index(&mut self, table: &str, column: &str) -> ExecResult<OpOutcome> {
        self.require_column(table, column)?;
        let snap = self.pool.snapshot();
        self.catalog.build_index(&mut self.pool, table, column)?;
        self.bump_ddl_epoch();
        Ok(self.outcome_since(snap))
    }

    /// Create a histogram on `table.column` (a speculative manipulation).
    pub fn create_histogram(&mut self, table: &str, column: &str) -> ExecResult<OpOutcome> {
        self.require_column(table, column)?;
        let snap = self.pool.snapshot();
        self.catalog.build_histogram(&mut self.pool, table, column)?;
        self.bump_ddl_epoch();
        Ok(self.outcome_since(snap))
    }

    /// Stage (pre-fetch and pin) the first `pages` pages of a table —
    /// the paper's *data staging* manipulation, which its prototype could
    /// not implement over a closed DBMS but this engine supports
    /// natively. Pages stay pinned until [`Database::unstage`]. At most a
    /// quarter of the buffer pool is ever pinned per call.
    pub fn stage(&mut self, table: &str, pages: u32) -> ExecResult<OpOutcome> {
        let heap = self
            .catalog
            .table(table)
            .ok_or_else(|| ExecError::UnknownTable(table.into()))?
            .heap;
        let snap = self.pool.snapshot();
        // Cap *total* staged pins at a quarter of the pool so staging can
        // never starve the executor of evictable frames.
        let already: u32 = self.staged.values().sum();
        let cap = (self.pool.capacity() as u32 / 4).saturating_sub(already);
        let n = pages.min(heap.pages(&self.pool)).min(cap);
        for page_no in 0..n {
            self.pool.pin_with(
                specdb_storage::PageId::new(heap.file, page_no),
                specdb_storage::AccessKind::Sequential,
            )?;
        }
        self.staged.insert(table.to_string(), n);
        Ok(self.outcome_since(snap))
    }

    /// Unpin a previously staged table (cancellation rollback / GC).
    pub fn unstage(&mut self, table: &str) {
        if let Some((_, n)) = self.staged.remove_entry(table) {
            if let Some(t) = self.catalog.table(table) {
                let file = t.heap.file;
                for page_no in 0..n {
                    self.pool.unpin(specdb_storage::PageId::new(file, page_no));
                }
            }
        }
    }

    /// True if the table currently has staged pages.
    pub fn is_staged(&self, table: &str) -> bool {
        self.staged.contains_key(table)
    }

    /// Currently staged tables.
    pub fn staged_tables(&self) -> Vec<String> {
        self.staged.keys().cloned().collect()
    }

    /// Staged tables no longer present in `graph` (GC candidates,
    /// symmetric to [`Database::unsupported_views`]).
    pub fn unsupported_staged(&self, graph: &specdb_query::QueryGraph) -> Vec<String> {
        self.staged.keys().filter(|t| !graph.has_relation(t)).cloned().collect()
    }

    /// Remove an index (cancellation rollback). Unknown names are a no-op.
    pub fn drop_index(&mut self, table: &str, column: &str) {
        if self.has_index(table, column) {
            self.catalog.drop_index(&mut self.pool, table, column);
            self.bump_ddl_epoch();
        }
    }

    /// Remove a histogram (cancellation rollback). Unknown names are a no-op.
    pub fn drop_histogram(&mut self, table: &str, column: &str) {
        if self.has_histogram(table, column) {
            self.catalog.drop_histogram(table, column);
            self.bump_ddl_epoch();
        }
    }

    /// True if an index exists on `table.column`.
    pub fn has_index(&self, table: &str, column: &str) -> bool {
        self.catalog.index(table, column).is_some()
    }

    /// True if a histogram exists on `table.column`.
    pub fn has_histogram(&self, table: &str, column: &str) -> bool {
        self.catalog.histogram(table, column).is_some()
    }

    /// Execute a query, collecting its rows.
    pub fn execute(&mut self, query: &Query) -> ExecResult<QueryOutput> {
        self.execute_inner(query, CancelToken::new(), true)
    }

    /// Execute a query, discarding rows (keeps `row_count`); used by the
    /// experiment harness where only timing matters.
    pub fn execute_discard(&mut self, query: &Query) -> ExecResult<QueryOutput> {
        self.execute_inner(query, CancelToken::new(), false)
    }

    /// Execute with a cancellation token (live speculative runtime).
    pub fn execute_cancellable(
        &mut self,
        query: &Query,
        cancel: CancelToken,
    ) -> ExecResult<QueryOutput> {
        self.execute_inner(query, cancel, true)
    }

    fn execute_inner(
        &mut self,
        query: &Query,
        cancel: CancelToken,
        collect: bool,
    ) -> ExecResult<QueryOutput> {
        let tracer = self.pool.observer().tracer().clone();
        let virt_start = self.pool.observer().now_micros();
        let span = tracer.begin(specdb_obs::SpanKind::Execute, "query", virt_start);
        let key = query_key(query);
        let mut plan_cache_hit = true;
        let (plan, used_views) = match self.plan_cache.get_mut().get_plan(&key) {
            Some(hit) => hit,
            None => {
                plan_cache_hit = false;
                // Wall-clock cost of the rewrite search; recorded as
                // `lat.salvage_rewrite_us` when a subsumption (non-exact)
                // view match salvages the query. Observational only —
                // virtual accounting never sees it.
                let t_rewrite = std::time::Instant::now();
                let (chosen, used_views) = self.choose_rewrite(query)?;
                if self.match_mode == MatchMode::Subsume && !used_views.is_empty() {
                    let qkey = canonical_key(&query.graph);
                    let salvaged = used_views.iter().any(|name| {
                        self.views
                            .iter()
                            .any(|v| &v.name == name && canonical_key(&v.graph) != qkey)
                    });
                    if salvaged {
                        self.pool
                            .observer()
                            .metrics()
                            .histogram("lat.salvage_rewrite_us")
                            .record(t_rewrite.elapsed().as_micros() as f64);
                    }
                }
                let plan = optimizer::plan_query_with(
                    &self.catalog,
                    &self.pool,
                    &self.disk,
                    &chosen,
                    self.join_order,
                )?;
                self.plan_cache.get_mut().put_plan(key, &plan, &used_views);
                (plan, used_views)
            }
        };
        let snap = self.pool.snapshot();
        let mut rows = Vec::new();
        let mut row_count = 0u64;
        let batch_stats;
        {
            let mut ctx = ExecCtx::with_cancel(&mut self.pool, cancel);
            ctx.threads = self.threads;
            match self.exec_mode {
                ExecMode::Columnar => {
                    batch::run_batched(&plan, &self.catalog, &mut ctx, &mut |b| {
                        row_count += b.len() as u64;
                        if collect {
                            b.to_tuples(&mut rows);
                        }
                        Ok(())
                    })?;
                }
                ExecMode::BatchRow => {
                    batch_row::run_batched(&plan, &self.catalog, &mut ctx, &mut |b| {
                        row_count += b.len() as u64;
                        if collect {
                            rows.extend(b);
                        }
                        Ok(())
                    })?;
                }
                ExecMode::Row => {
                    run::run(&plan, &self.catalog, &mut ctx, &mut |t| {
                        row_count += 1;
                        if collect {
                            rows.push(t);
                        }
                        Ok(())
                    })?;
                }
            }
            batch_stats = ctx.batch_stats;
        }
        let demand = self.pool.demand_since(snap);
        let elapsed = self.disk.time(&demand);
        self.emit_query_events(&plan, row_count, elapsed, &used_views, batch_stats);
        // The query's virtual extent is [now, now + its modelled cost]:
        // the replay loop advances the clock *after* execution.
        span.finish_with(virt_start + elapsed.as_micros(), |a| {
            a.push(("rows", row_count.into()));
            a.push(("plan_cache_hit", plan_cache_hit.into()));
            a.push(("batches", batch_stats.batches.into()));
            a.push(("cost_secs", elapsed.as_secs_f64().into()));
            if !used_views.is_empty() {
                a.push(("used_views", used_views.join(",").into()));
            }
        });
        Ok(QueryOutput {
            rows,
            row_count,
            cols: plan.cols.clone(),
            demand,
            elapsed,
            plan: plan.explain(),
            used_views,
        })
    }

    /// Publish per-query observability: a `QueryFinished` event, one
    /// `PlanChosen` event per base-relation access, and counters.
    fn emit_query_events(
        &self,
        plan: &Plan,
        row_count: u64,
        elapsed: VirtualTime,
        used_views: &[String],
        batch_stats: BatchStats,
    ) {
        let observer = self.pool.observer();
        let metrics = observer.metrics();
        metrics.counter("exec.queries").incr();
        if batch_stats != BatchStats::default() {
            metrics.counter("exec.batches").add(batch_stats.batches);
            metrics.counter("exec.fused_scans").add(batch_stats.fused_scans);
            metrics.counter("exec.cols_scanned").add(batch_stats.cols_scanned);
            if batch_stats.rows_scanned > 0 {
                metrics
                    .gauge("exec.sel_vec_density")
                    .set(batch_stats.rows_selected as f64 / batch_stats.rows_scanned as f64);
            }
            if batch_stats.index_probe_batches > 0 {
                metrics.counter("exec.index_probe_batches").add(batch_stats.index_probe_batches);
                metrics
                    .counter("exec.index_probe_saved_descents")
                    .add(batch_stats.index_probe_saved);
            }
            if batch_stats.pages_skipped > 0 {
                metrics.counter("exec.pages_skipped").add(batch_stats.pages_skipped);
            }
        }
        if !used_views.is_empty() {
            metrics.counter("exec.queries.view_rewritten").incr();
        }
        if observer.wants(specdb_obs::EventKind::PlanChosen) {
            plan.visit_accesses(&mut |table, access| {
                observer.emit(specdb_obs::Event::PlanChosen {
                    table: table.to_string(),
                    access: access.to_string(),
                });
            });
        }
        if metrics.is_enabled() {
            plan.visit_accesses(&mut |_, access| {
                metrics.counter(&format!("exec.plan.{access}")).incr();
            });
        }
        if observer.wants(specdb_obs::EventKind::QueryFinished) {
            observer.emit(specdb_obs::Event::QueryFinished {
                rows: row_count,
                cost_secs: elapsed.as_secs_f64(),
                used_views: used_views.to_vec(),
            });
        }
    }

    /// Pick the rewriting the current [`ViewMode`] dictates.
    fn choose_rewrite(&self, query: &Query) -> ExecResult<(Query, Vec<String>)> {
        if self.views.is_empty() {
            return Ok((query.clone(), Vec::new()));
        }
        match self.view_mode {
            ViewMode::Forced => Ok(rewrite_greedy_with(query, &self.views, self.match_mode)),
            ViewMode::CostBased => {
                // Conservative view matching: a rewriting must beat the
                // original plan's estimate by a clear margin before the
                // optimizer abandons base access paths — estimates carry
                // error, and a wrong switch onto an unindexed view is far
                // costlier than a missed marginal win (the paper's §6
                // penalty analysis).
                const SWITCH_MARGIN: f64 = 0.95;
                let mut candidates =
                    rewrite_candidates_with(query, &self.views, self.match_mode).into_iter();
                let (orig_q, orig_used) =
                    candidates.next().expect("candidates always include the original");
                let orig_t =
                    optimizer::estimate_query_time(&self.catalog, &self.pool, &self.disk, &orig_q)?;
                let mut best = (orig_q, orig_used, orig_t);
                let threshold =
                    VirtualTime::from_micros((orig_t.as_micros() as f64 * SWITCH_MARGIN) as u64);
                for (cand, used) in candidates {
                    let t = optimizer::estimate_query_time(
                        &self.catalog,
                        &self.pool,
                        &self.disk,
                        &cand,
                    )?;
                    if t < threshold && t < best.2 {
                        best = (cand, used, t);
                    }
                }
                Ok((best.0, best.1))
            }
        }
    }

    /// Materialize a sub-query's result as a new relation and register it
    /// as a view (the paper's *query materialization* manipulation). The
    /// build may itself use existing materializations (the enumeration
    /// example in the paper's Section 3.5). Cancellation leaves no trace.
    pub fn materialize(
        &mut self,
        graph: &QueryGraph,
        cancel: CancelToken,
    ) -> ExecResult<MaterializeOutcome> {
        let graph_key = canonical_key(graph);
        if let Some(existing) = self.views.get_by_key(&graph_key) {
            let t = self
                .catalog
                .table(&existing.name)
                .ok_or_else(|| ExecError::UnknownTable(existing.name.clone()))?;
            return Ok(MaterializeOutcome {
                table: existing.name.clone(),
                rows: t.stats.rows,
                pages: t.stats.pages,
                demand: ResourceDemand::default(),
                elapsed: VirtualTime::ZERO,
                already_existed: true,
            });
        }
        // Target schema: qualified columns of the graph's base relations,
        // in the graph's (sorted) relation order.
        let mut columns: Vec<ColumnDef> = Vec::new();
        for rel in graph.relations() {
            let t = self.catalog.table(rel).ok_or_else(|| ExecError::UnknownTable(rel.into()))?;
            for c in t.schema.columns() {
                columns.push(ColumnDef::new(qualify(rel, &c.name), c.ty));
            }
        }
        let schema = Schema::new(columns);
        let query = Query::star(graph.clone());
        // Choose the cheapest build plan (views may help the build even
        // in Forced mode — the paper reuses completed materializations).
        let (chosen, _) = match self.view_mode {
            ViewMode::Forced => rewrite_greedy_with(&query, &self.views, self.match_mode),
            ViewMode::CostBased => self.choose_rewrite(&query)?,
        };
        let plan = optimizer::plan_query_with(
            &self.catalog,
            &self.pool,
            &self.disk,
            &chosen,
            self.join_order,
        )?;
        // Reorder plan output into the canonical schema order.
        let keep: Vec<usize> = schema
            .columns()
            .iter()
            .map(|c| {
                plan.col_index(&c.name).ok_or_else(|| ExecError::UnknownColumn {
                    rel: "materialization".into(),
                    column: c.name.clone(),
                })
            })
            .collect::<ExecResult<Vec<_>>>()?;
        let snap = self.pool.snapshot();
        // The executor exclusively borrows the pool, so the result is
        // staged in memory and written afterwards. Result sizes are
        // bounded by the (scaled) dataset sizes the experiments use.
        let mut staged: Vec<Tuple> = Vec::new();
        {
            let mut ctx = ExecCtx::with_cancel(&mut self.pool, cancel.clone());
            ctx.threads = self.threads;
            match self.exec_mode {
                ExecMode::Columnar => {
                    batch::run_batched(&plan, &self.catalog, &mut ctx, &mut |b| {
                        b.project(&keep).to_tuples(&mut staged);
                        Ok(())
                    })?;
                }
                ExecMode::BatchRow => {
                    batch_row::run_batched(&plan, &self.catalog, &mut ctx, &mut |b| {
                        for t in b {
                            staged.push(t.project(&keep));
                        }
                        Ok(())
                    })?;
                }
                ExecMode::Row => {
                    run::run(&plan, &self.catalog, &mut ctx, &mut |t| {
                        staged.push(t.project(&keep));
                        Ok(())
                    })?;
                }
            }
        }
        let heap = HeapFile::create(&mut self.pool);
        let mut loader = specdb_storage::heap::BulkLoader::new(heap, &self.pool);
        for (i, t) in staged.iter().enumerate() {
            if i % 1024 == 0 {
                if let Err(e) = cancel.check() {
                    heap.destroy(&mut self.pool);
                    return Err(e.into());
                }
            }
            loader.push(&mut self.pool, t)?;
        }
        let rows = loader.finish(&mut self.pool)?;
        let pages = heap.pages(&self.pool) as u64;
        let name = format!("mv_{}", specdb_query::short_digest_of_key(&graph_key));
        let stats = TableStats::analyze(&mut self.pool, heap, schema.arity())?;
        self.catalog.register(&name, schema, heap, stats, true);
        // Materialized speculation results are exactly the hot re-read
        // case the decoded segment cache exists for: pin them so the
        // final query's re-execution skips the page-decode path.
        self.pool.mark_hot(heap.file);
        self.views
            .register_with_key(graph_key, ViewDef { name: name.clone(), graph: graph.clone() });
        self.bump_ddl_epoch();
        let demand = self.pool.demand_since(snap);
        Ok(MaterializeOutcome {
            table: name,
            rows,
            pages,
            demand,
            elapsed: self.disk.time(&demand),
            already_existed: false,
        })
    }

    /// Drop a materialized view and its storage. Unknown names are a no-op.
    pub fn drop_materialized(&mut self, name: &str) {
        if self.views.remove_by_name(name).is_some() {
            self.catalog.drop_table(&mut self.pool, name);
            self.bump_ddl_epoch();
        }
    }

    /// Canonical keys of registered views the given partial query still
    /// supports under the configured [`MatchMode`] — the lease set a
    /// serving session holds on the shared artifact cache.
    pub fn supported_view_keys(&self, graph: &QueryGraph) -> Vec<String> {
        self.views.supported_keys(graph, self.match_mode)
    }

    /// Names of views *not* supported by `graph` (candidates for the
    /// paper's garbage-collection heuristic).
    pub fn unsupported_views(&self, graph: &QueryGraph) -> Vec<String> {
        let supported: std::collections::HashSet<&str> = self
            .views
            .supported_by_with(graph, self.match_mode)
            .map(|v| v.name.as_str())
            .collect();
        self.views
            .iter()
            .filter(|v| !supported.contains(v.name.as_str()))
            .map(|v| v.name.clone())
            .collect()
    }

    /// True if a view over exactly this graph exists.
    pub fn has_view(&self, graph: &QueryGraph) -> bool {
        self.views.get(graph).is_some()
    }

    /// [`Database::has_view`] for a pre-rendered canonical key — lets
    /// callers that cache keys (the incremental manipulation space) skip
    /// re-rendering the graph.
    pub fn has_view_key(&self, key: &str) -> bool {
        self.views.get_by_key(key).is_some()
    }

    /// Optimizer estimate of the best execution time for `query` under
    /// the current state (`cost(q, m∅)` relative to hypothetical
    /// manipulations).
    pub fn estimate_query_time(&self, query: &Query) -> ExecResult<VirtualTime> {
        let key = format!("est:{}", query_key(query));
        if let Some(t) = self.plan_cache.lock().get_time(&key) {
            return Ok(t);
        }
        let (chosen, _) = self.choose_rewrite(query)?;
        let t = optimizer::estimate_query_time(&self.catalog, &self.pool, &self.disk, &chosen)?;
        self.plan_cache.lock().put_time(key, t);
        Ok(t)
    }

    /// Optimizer estimate for `query` with view rewriting disabled —
    /// the counterfactual "what would this cost against base tables",
    /// used to calibrate the speculator's predicted per-query benefit.
    pub fn estimate_query_time_base(&self, query: &Query) -> ExecResult<VirtualTime> {
        let key = format!("base:{}", query_key(query));
        if let Some(t) = self.plan_cache.lock().get_time(&key) {
            return Ok(t);
        }
        let t = optimizer::estimate_query_time(&self.catalog, &self.pool, &self.disk, query)?;
        self.plan_cache.lock().put_time(key, t);
        Ok(t)
    }

    /// Optimizer estimates for materializing `graph` now.
    pub fn estimate_materialization(&self, graph: &QueryGraph) -> ExecResult<MatEstimate> {
        let tracer = self.pool.observer().tracer().clone();
        let virt_now = self.pool.observer().now_micros();
        let key = format!("mat:{}", canonical_key(graph));
        if let Some(hit) = self.plan_cache.lock().get_mat(&key) {
            if tracer.is_enabled() {
                let span = tracer.begin(specdb_obs::SpanKind::Estimate, "estimate_mat", virt_now);
                span.finish_with(virt_now, |a| a.push(("plan_cache_hit", true.into())));
            }
            return Ok(hit);
        }
        // Estimates are free on the virtual clock; the span still shows
        // their wall cost (optimizer work) under the decide span.
        let span = tracer.begin(specdb_obs::SpanKind::Estimate, "estimate_mat", virt_now);
        let query = Query::star(graph.clone());
        let (chosen, _) = self.choose_rewrite(&query)?;
        let plan = optimizer::plan_query_with(
            &self.catalog,
            &self.pool,
            &self.disk,
            &chosen,
            self.join_order,
        )?;
        let est = Estimator::new(&self.catalog, &self.pool).estimate(&plan);
        let width: usize = graph
            .relations()
            .filter_map(|r| self.catalog.table(r))
            .map(|t| t.schema.estimated_tuple_bytes())
            .sum();
        let pages = (est.rows * width as f64 / PAGE_SIZE as f64).ceil().max(1.0);
        let mut build_demand = est.demand();
        build_demand.writes = pages as u64;
        build_demand.cpu_tuples += est.rows as u64;
        let raw_build = self.disk.time(&build_demand);
        let out = MatEstimate {
            build: VirtualTime::from_micros(
                (raw_build.as_micros() as f64 * BUILD_TIME_SCALE) as u64,
            ),
            scan_result: self.disk.scan_time(pages as u64, est.rows as u64),
            compute_now: est.time(&self.disk),
            rows: est.rows,
            pages,
        };
        self.plan_cache.lock().put_mat(key, out);
        span.finish_with(virt_now, |a| {
            a.push(("plan_cache_hit", false.into()));
            a.push(("est_rows", out.rows.into()));
            a.push(("build_secs", out.build.as_secs_f64().into()));
        });
        Ok(out)
    }

    /// Canonical key of a graph (exposed for bookkeeping layers).
    pub fn graph_key(graph: &QueryGraph) -> String {
        canonical_key(graph)
    }

    fn require_column(&self, table: &str, column: &str) -> ExecResult<()> {
        let t = self.catalog.table(table).ok_or_else(|| ExecError::UnknownTable(table.into()))?;
        if t.schema.index_of(column).is_none() {
            return Err(ExecError::UnknownColumn { rel: table.into(), column: column.into() });
        }
        Ok(())
    }

    fn outcome_since(&self, snap: specdb_storage::IoSnapshot) -> OpOutcome {
        let demand = self.pool.demand_since(snap);
        OpOutcome { demand, elapsed: self.disk.time(&demand) }
    }
}

impl ColumnResolver for Database {
    fn resolve_column(&self, tables: &[String], column: &str) -> Option<String> {
        let mut found = None;
        for t in tables {
            if let Some(table) = self.catalog.table(t) {
                if table.schema.index_of(column).is_some() {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(t.clone());
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_catalog::DataType;
    use specdb_query::{parse_sql, CompareOp, Join, Predicate, Selection};
    use specdb_storage::Value;

    fn emp_db() -> Database {
        let mut db = Database::new(DatabaseConfig::with_buffer_pages(512));
        db.create_table(
            "employee",
            Schema::new(vec![
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("age", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
            ]),
        )
        .unwrap();
        let rows = (0..2000i64).map(|i| {
            Tuple::new(vec![
                Value::Str(format!("emp{i}")),
                Value::Int(20 + i % 40),
                Value::Int(30_000 + (i * 13) % 50_000),
            ])
        });
        db.load("employee", rows).unwrap();
        db
    }

    fn age_query(limit: i64) -> Query {
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, limit)));
        Query::star(g).project("employee", "name")
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None, "zero workers is not a thing");
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
    }

    #[test]
    fn parallel_execution_matches_serial_at_engine_level() {
        let mut serial = emp_db();
        let mut parallel = emp_db();
        parallel.set_threads(4);
        assert_eq!(parallel.threads(), 4);
        for q in [age_query(30), age_query(45)] {
            serial.clear_buffer();
            parallel.clear_buffer();
            let a = serial.execute(&q).unwrap();
            let b = parallel.execute(&q).unwrap();
            assert_eq!(a.rows, b.rows, "identical rows in identical order");
            assert_eq!(a.demand, b.demand, "identical resource demand");
            assert_eq!(a.elapsed, b.elapsed, "identical virtual time");
        }
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let mut db = Database::new(DatabaseConfig::with_buffer_pages(16).threads(0));
        assert_eq!(db.threads(), 1);
        db.set_threads(0);
        assert_eq!(db.threads(), 1);
    }

    #[test]
    fn paper_intro_flow() {
        // The introduction's example: materialize σ(age<30)(employee)
        // during think time, then the final query runs on the view.
        let mut db = emp_db();
        let q = age_query(30);
        db.clear_buffer();
        let normal = db.execute(&q).unwrap();
        db.clear_buffer();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let mat = db.materialize(&sub, CancelToken::new()).unwrap();
        assert!(!mat.already_existed);
        assert!(mat.rows > 0);
        db.clear_buffer();
        let spec = db.execute(&q).unwrap();
        assert_eq!(spec.row_count, normal.row_count);
        assert_eq!(spec.used_views, vec![mat.table.clone()]);
        assert!(
            spec.demand.disk_reads() < normal.demand.disk_reads(),
            "rewritten query must read fewer pages ({} vs {})",
            spec.demand.disk_reads(),
            normal.demand.disk_reads()
        );
        assert!(spec.elapsed < normal.elapsed);
    }

    #[test]
    fn sql_round_trip_execution() {
        let mut db = emp_db();
        let q = parse_sql(&db, "SELECT name FROM employee WHERE age < 25").unwrap();
        let out = db.execute(&q).unwrap();
        assert_eq!(out.row_count, 2000 / 40 * 5);
        assert!(out.rows.iter().all(|r| r.arity() == 1));
    }

    #[test]
    fn materialize_is_idempotent() {
        let mut db = emp_db();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let first = db.materialize(&sub, CancelToken::new()).unwrap();
        let second = db.materialize(&sub, CancelToken::new()).unwrap();
        assert!(!first.already_existed);
        assert!(second.already_existed);
        assert_eq!(first.table, second.table);
        assert_eq!(second.elapsed, VirtualTime::ZERO);
    }

    #[test]
    fn cancelled_materialization_leaves_no_trace() {
        let mut db = emp_db();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let token = CancelToken::new();
        token.cancel();
        let err = db.materialize(&sub, token).unwrap_err();
        assert!(err.is_cancelled());
        assert!(!db.has_view(&sub));
        assert_eq!(db.views().len(), 0);
    }

    #[test]
    fn drop_materialized_frees_everything() {
        let mut db = emp_db();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let mat = db.materialize(&sub, CancelToken::new()).unwrap();
        db.drop_materialized(&mat.table);
        assert!(!db.has_view(&sub));
        assert!(db.catalog().table(&mat.table).is_none());
        // The query still runs (against the base table).
        let out = db.execute(&age_query(30)).unwrap();
        assert!(out.used_views.is_empty());
        assert!(out.row_count > 0);
    }

    #[test]
    fn gc_candidates_follow_partial_query() {
        let mut db = emp_db();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        db.materialize(&sub, CancelToken::new()).unwrap();
        // Partial query still containing the predicate: no GC candidates.
        assert!(db.unsupported_views(&sub).is_empty());
        // Partial query without it: the view is condemned.
        let empty = QueryGraph::relation("employee");
        assert_eq!(db.unsupported_views(&empty).len(), 1);
    }

    #[test]
    fn type_mismatch_on_load() {
        let mut db = Database::new(DatabaseConfig::with_buffer_pages(16));
        db.create_table("t", Schema::new(vec![ColumnDef::new("a", DataType::Int)]))
            .unwrap();
        let err = db.load("t", vec![Tuple::new(vec![Value::Str("oops".into())])]).unwrap_err();
        assert!(matches!(err, ExecError::TypeMismatch { .. }));
    }

    #[test]
    fn estimates_track_reality_directionally() {
        let mut db = emp_db();
        let cheap = db.estimate_query_time(&age_query(21)).unwrap();
        let expensive = db.estimate_query_time(&age_query(60)).unwrap();
        assert!(cheap <= expensive);
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let est = db.estimate_materialization(&sub).unwrap();
        assert!(est.rows > 0.0);
        assert!(est.scan_result < est.compute_now, "scanning the view must beat recomputing");
        let real = db.materialize(&sub, CancelToken::new()).unwrap();
        let ratio = est.rows / real.rows as f64;
        assert!((0.2..5.0).contains(&ratio), "estimate {} vs real {}", est.rows, real.rows);
    }

    #[test]
    fn forced_vs_cost_based_modes() {
        // Build a view that is *worse* than the base access path (the
        // paper's penalty case): index on age makes the base fast, the
        // view must be scanned.
        let mut db = emp_db();
        db.create_index("employee", "age").unwrap();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 58)));
        db.materialize(&sub, CancelToken::new()).unwrap();
        // Narrow final query: index would fetch few rows; forced rewrite
        // scans the big view.
        let mut g = QueryGraph::new();
        g.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 58)));
        g.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 21)));
        let q = Query::star(g);
        db.set_view_mode(ViewMode::Forced);
        let forced = db.execute(&q).unwrap();
        assert!(!forced.used_views.is_empty(), "forced mode must use the view");
        db.set_view_mode(ViewMode::CostBased);
        let cost_based = db.execute(&q).unwrap();
        assert_eq!(cost_based.row_count, forced.row_count);
    }

    #[test]
    fn index_and_histogram_manipulations_report_cost() {
        let mut db = emp_db();
        let idx = db.create_index("employee", "salary").unwrap();
        assert!(idx.elapsed > VirtualTime::ZERO);
        assert!(idx.demand.writes > 0, "index build writes leaf pages");
        let h = db.create_histogram("employee", "age").unwrap();
        assert!(h.elapsed > VirtualTime::ZERO);
        assert!(db.has_index("employee", "salary"));
        assert!(db.has_histogram("employee", "age"));
        assert!(db.create_index("employee", "ghost").is_err());
    }

    #[test]
    fn staging_pins_and_speeds_scans() {
        let mut db = emp_db();
        db.clear_buffer();
        let pages = db.catalog().table("employee").unwrap().stats.pages as u32;
        let out = db.stage("employee", pages).unwrap();
        assert!(db.is_staged("employee"));
        assert!(out.demand.seq_reads > 0, "staging reads the pages");
        // A scan right after an unrelated buffer flood still hits the
        // pinned pages.
        db.clear_buffer(); // clear() keeps pinned frames
        let q = age_query(60);
        let warm = db.execute_discard(&q).unwrap();
        assert_eq!(warm.demand.disk_reads(), 0, "staged pages must stay resident");
        db.unstage("employee");
        assert!(!db.is_staged("employee"));
        db.clear_buffer();
        let cold = db.execute_discard(&q).unwrap();
        assert!(cold.demand.disk_reads() > 0, "after unstage the scan is cold again");
    }

    #[test]
    fn staging_caps_at_quarter_pool() {
        let mut db = emp_db(); // 512-page pool
        db.stage("employee", u32::MAX).unwrap();
        let staged_resident = db.pool().resident();
        assert!(staged_resident <= 512, "sanity");
        // Cap is pool/4 = 128 pins.
        db.clear_buffer();
        assert!(db.pool().resident() <= 128 + 1);
        db.unstage("employee");
    }

    #[test]
    fn unsupported_staged_tracks_graph() {
        let mut db = emp_db();
        db.stage("employee", 4).unwrap();
        let mut g = QueryGraph::new();
        g.add_relation("employee");
        assert!(db.unsupported_staged(&g).is_empty());
        let empty = QueryGraph::new();
        assert_eq!(db.unsupported_staged(&empty), vec!["employee".to_string()]);
    }

    #[test]
    fn execute_discard_counts_without_rows() {
        let mut db = emp_db();
        let out = db.execute_discard(&age_query(30)).unwrap();
        assert!(out.rows.is_empty());
        assert!(out.row_count > 0);
    }

    #[test]
    fn aggregates_compute_correctly() {
        let mut db = emp_db();
        // Global aggregates over a filtered scan.
        let q = parse_sql(
            &db,
            "SELECT count(*), min(age), max(age), sum(age), avg(age) \
             FROM employee WHERE age < 25",
        )
        .unwrap();
        let out = db.execute(&q).unwrap();
        assert_eq!(out.row_count, 1);
        let row = &out.rows[0];
        // Ages cycle 20..59; ages 20-24 → 5/40 of 2000 = 250 rows.
        assert_eq!(row.get(0), &Value::Int(250));
        assert_eq!(row.get(1), &Value::Int(20));
        assert_eq!(row.get(2), &Value::Int(24));
        // sum = 250/5 * (20+21+22+23+24) = 50 * 110 = 5500.
        assert_eq!(row.get(3), &Value::Float(5500.0));
        assert_eq!(row.get(4), &Value::Float(22.0));
        assert_eq!(
            out.cols,
            vec![
                "count(*)",
                "min(employee.age)",
                "max(employee.age)",
                "sum(employee.age)",
                "avg(employee.age)"
            ]
        );
    }

    #[test]
    fn group_by_produces_sorted_groups() {
        let mut db = emp_db();
        let q = parse_sql(&db, "SELECT age, count(*) FROM employee WHERE age < 23 GROUP BY age")
            .unwrap();
        let out = db.execute(&q).unwrap();
        assert_eq!(out.row_count, 3);
        for (i, row) in out.rows.iter().enumerate() {
            assert_eq!(row.get(0), &Value::Int(20 + i as i64));
            assert_eq!(row.get(1), &Value::Int(50));
        }
    }

    #[test]
    fn empty_input_global_aggregate_yields_one_row() {
        let mut db = emp_db();
        let q = parse_sql(&db, "SELECT count(*) FROM employee WHERE age < 0").unwrap();
        let out = db.execute(&q).unwrap();
        assert_eq!(out.row_count, 1);
        assert_eq!(out.rows[0].get(0), &Value::Int(0));
        // ... but a grouped aggregate over nothing yields no rows.
        let q = parse_sql(&db, "SELECT age, count(*) FROM employee WHERE age < 0 GROUP BY age")
            .unwrap();
        assert_eq!(db.execute(&q).unwrap().row_count, 0);
    }

    #[test]
    fn aggregates_survive_view_rewriting() {
        let mut db = emp_db();
        let q = parse_sql(&db, "SELECT age, count(*) FROM employee WHERE age < 30 GROUP BY age")
            .unwrap();
        let before = db.execute(&q).unwrap();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        db.materialize(&sub, CancelToken::new()).unwrap();
        let after = db.execute(&q).unwrap();
        assert!(!after.used_views.is_empty(), "forced mode must rewrite the core");
        assert_eq!(before.rows, after.rows, "aggregates over a view must agree");
    }

    #[test]
    fn batch_and_row_paths_agree_end_to_end() {
        let mut batch_db = emp_db();
        let mut row_db = emp_db();
        row_db.set_batch_exec(false);
        assert!(batch_db.batch_exec_enabled());
        assert!(!row_db.batch_exec_enabled());
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let mat_b = batch_db.materialize(&sub, CancelToken::new()).unwrap();
        let mat_r = row_db.materialize(&sub, CancelToken::new()).unwrap();
        assert_eq!(mat_b.rows, mat_r.rows);
        assert_eq!(mat_b.demand, mat_r.demand);
        for q in [age_query(30), age_query(55)] {
            batch_db.clear_buffer();
            row_db.clear_buffer();
            let b = batch_db.execute(&q).unwrap();
            let r = row_db.execute(&q).unwrap();
            assert_eq!(b.rows, r.rows, "tuples and order must be identical");
            assert_eq!(b.demand, r.demand, "virtual-time accounting must be identical");
            assert_eq!(b.elapsed, r.elapsed);
        }
    }

    #[test]
    fn materialized_views_are_segment_cached() {
        let mut db = emp_db();
        let mut sub = QueryGraph::new();
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let mat = db.materialize(&sub, CancelToken::new()).unwrap();
        let file = db.catalog().table(&mat.table).unwrap().heap.file;
        assert!(db.pool().is_hot(file), "materialize must pin the result heap");
        // A query over the view populates the decoded segment cache.
        db.execute_discard(&age_query(30)).unwrap();
        assert!(db.pool().seg_resident() > 0);
        db.drop_materialized(&mat.table);
        assert!(!db.pool().is_hot(file), "drop must release the pin");
    }

    #[test]
    fn cache_table_segments_round_trip() {
        let mut db = emp_db();
        db.cache_table_segments("employee").unwrap();
        let file = db.catalog().table("employee").unwrap().heap.file;
        assert!(db.pool().is_hot(file));
        db.execute_discard(&age_query(60)).unwrap();
        assert!(db.pool().seg_resident() > 0);
        db.uncache_table_segments("employee").unwrap();
        assert!(!db.pool().is_hot(file));
        assert!(db.cache_table_segments("ghost").is_err());
    }

    #[test]
    fn join_materialization_round_trip() {
        // Two-table schema; materialize the join; final query uses it.
        let mut db = emp_db();
        db.create_table(
            "dept",
            Schema::new(vec![
                ColumnDef::new("age", DataType::Int),
                ColumnDef::new("label", DataType::Str),
            ]),
        )
        .unwrap();
        db.load(
            "dept",
            (20..60i64).map(|a| Tuple::new(vec![Value::Int(a), Value::Str(format!("d{a}"))])),
        )
        .unwrap();
        let mut sub = QueryGraph::new();
        sub.add_join(Join::new("employee", "age", "dept", "age"));
        sub.add_selection(Selection::new("employee", Predicate::new("age", CompareOp::Lt, 30)));
        let mat = db.materialize(&sub, CancelToken::new()).unwrap();
        assert!(mat.rows > 0);
        // Final query adds a predicate on dept on top of the join.
        let mut g = sub.clone();
        g.add_selection(Selection::new("dept", Predicate::new("label", CompareOp::Eq, "d25")));
        let out = db.execute(&Query::star(g)).unwrap();
        assert_eq!(out.used_views, vec![mat.table]);
        assert_eq!(out.row_count, 2000 / 40);
    }
}
