#![warn(missing_docs)]
//! Offline stand-in for `criterion`.
//!
//! Provides the macro-and-builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`) backed by a simple adaptive wall-clock
//! timer: each routine is run in growing batches until the measurement
//! window is long enough to trust, then mean ns/iteration is printed.
//!
//! # Baselines
//!
//! Regression tracking without the real criterion's statistics engine:
//!
//! * `--save-baseline <name>` records every benchmark's mean ns/iter to
//!   `target/criterion-baselines/<name>.json` (merging with any earlier
//!   runs saved under the same name, so multi-binary bench suites
//!   accumulate into one file).
//! * `--baseline <name>` loads that file and prints a percentage delta
//!   next to each benchmark that has a recorded baseline.
//!
//! Both flags accept `--flag value` and `--flag=value` forms and are
//! parsed from `std::env::args`, ignoring everything else (cargo bench
//! passes `--bench` etc.). The directory can be redirected with the
//! `CRITERION_BASELINE_DIR` environment variable. The file format is a
//! flat JSON object `{"bench name": mean_ns, ...}` — stable, diffable,
//! and parseable without a JSON library.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Where baseline files live unless `CRITERION_BASELINE_DIR` overrides.
const DEFAULT_BASELINE_DIR: &str = "target/criterion-baselines";

/// Benchmark registry and configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    save_baseline: Option<String>,
    baseline: Option<String>,
    baseline_dir: PathBuf,
    /// Baseline means loaded for comparison (`--baseline`).
    loaded: BTreeMap<String, f64>,
    /// Means measured this run, pending save (`--save-baseline`).
    results: BTreeMap<String, f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }
}

impl Criterion {
    /// Build from an explicit argument list (`Default` feeds it
    /// `std::env::args`). Unknown arguments are ignored.
    pub fn from_args(args: &[String]) -> Self {
        let dir = std::env::var("CRITERION_BASELINE_DIR")
            .unwrap_or_else(|_| DEFAULT_BASELINE_DIR.to_string());
        let mut c = Criterion {
            sample_size: 10,
            save_baseline: flag_value(args, "--save-baseline"),
            baseline: flag_value(args, "--baseline"),
            baseline_dir: PathBuf::from(dir),
            loaded: BTreeMap::new(),
            results: BTreeMap::new(),
        };
        if let Some(name) = c.baseline.clone() {
            match std::fs::read_to_string(c.baseline_path(&name)) {
                Ok(text) => c.loaded = parse_flat_json(&text),
                Err(e) => eprintln!(
                    "criterion: baseline '{name}' not readable at {}: {e}",
                    c.baseline_path(&name).display()
                ),
            }
        }
        c
    }

    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Redirect baseline storage (primarily for tests).
    pub fn baseline_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.baseline_dir = dir.into();
        self
    }

    fn baseline_path(&self, name: &str) -> PathBuf {
        self.baseline_dir.join(format!("{name}.json"))
    }

    /// Measure `routine` and print its mean time per iteration, plus a
    /// delta against the loaded baseline when one is present.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            routine(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        if iters == 0 {
            eprintln!("bench {name:<40} (no iterations recorded)");
            return self;
        }
        let ns = total.as_nanos() as f64 / iters as f64;
        let delta = match self.loaded.get(name) {
            Some(&base) if base > 0.0 => {
                let pct = (ns - base) / base * 100.0;
                format!("  {pct:+7.1}% vs baseline ({base:.1} ns)")
            }
            _ => String::new(),
        };
        eprintln!("bench {name:<40} {ns:>14.1} ns/iter ({iters} iters){delta}");
        if self.save_baseline.is_some() {
            self.results.insert(name.to_string(), ns);
        }
        self
    }

    /// Write pending results to the save-baseline file, merging with any
    /// existing content so several bench binaries share one baseline.
    /// Called by `Drop`; public so tests can flush deterministically.
    pub fn flush_baseline(&mut self) {
        let Some(name) = self.save_baseline.clone() else { return };
        if self.results.is_empty() {
            return;
        }
        let path = self.baseline_path(&name);
        let mut merged =
            std::fs::read_to_string(&path).map(|t| parse_flat_json(&t)).unwrap_or_default();
        merged.append(&mut self.results);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, write_flat_json(&merged)) {
            Ok(()) => eprintln!("criterion: saved baseline '{name}' to {}", path.display()),
            Err(e) => eprintln!("criterion: failed to save baseline '{name}': {e}"),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush_baseline();
    }
}

/// Extract `--flag value` or `--flag=value` from an argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == flag {
            return iter.next().cloned();
        }
        if let Some(rest) = a.strip_prefix(flag) {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Serialize `{"name": mean_ns, ...}` with sorted keys.
fn write_flat_json(map: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 < map.len() { "," } else { "" };
        out.push_str(&format!("  \"{}\": {v}{comma}\n", escape_json(k)));
    }
    out.push('}');
    out.push('\n');
    out
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parse the flat `{"name": number, ...}` format written above. Not a
/// general JSON parser; tolerant of whitespace and trailing commas,
/// silently skipping lines it cannot interpret.
fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        // Find the closing quote, honouring backslash escapes.
        let mut key = String::new();
        let mut chars = rest.chars();
        let mut closed = false;
        while let Some(ch) = chars.next() {
            match ch {
                '\\' => {
                    if let Some(esc) = chars.next() {
                        key.push(esc);
                    }
                }
                '"' => {
                    closed = true;
                    break;
                }
                _ => key.push(ch),
            }
        }
        if !closed {
            continue;
        }
        let value = chars.as_str().trim_start().strip_prefix(':').map(str::trim);
        if let Some(v) = value.and_then(|v| v.parse::<f64>().ok()) {
            map.insert(key, v);
        }
    }
    map
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the batch size so the measurement
    /// window is at least a few milliseconds.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || n >= 1 << 20 {
                self.elapsed = elapsed;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(4);
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("counts", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn flag_parsing_accepts_both_forms_and_ignores_noise() {
        let args: Vec<String> = ["bench-bin", "--bench", "--save-baseline", "main", "--quiet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--save-baseline").as_deref(), Some("main"));
        assert_eq!(flag_value(&args, "--baseline"), None);
        let eq: Vec<String> = ["x", "--baseline=pr42"].iter().map(|s| s.to_string()).collect();
        assert_eq!(flag_value(&eq, "--baseline").as_deref(), Some("pr42"));
    }

    #[test]
    fn flat_json_roundtrips() {
        let mut m = BTreeMap::new();
        m.insert("decide/cached".to_string(), 123.5);
        m.insert("odd \"name\"\\path".to_string(), 7.0);
        let text = write_flat_json(&m);
        assert_eq!(parse_flat_json(&text), m);
        // Tolerates unknown surrounding lines.
        let noisy = format!("// header\n{text}\n[1,2,3]\n");
        assert_eq!(parse_flat_json(&noisy), m);
    }

    #[test]
    fn baseline_save_then_compare() {
        let dir = std::env::temp_dir().join(format!("crit-baseline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let args: Vec<String> =
            ["bin", "--save-baseline", "t"].iter().map(|s| s.to_string()).collect();
        let mut saver = Criterion::from_args(&args).sample_size(1).baseline_dir(&dir);
        saver.bench_function("fast_loop", |b| b.iter(|| black_box(2 * 2)));
        saver.flush_baseline();
        let path = dir.join("t.json");
        let saved = parse_flat_json(&std::fs::read_to_string(&path).unwrap());
        assert!(saved.contains_key("fast_loop"), "{saved:?}");

        // Merging: a second binary adds its own benches to the same file.
        let mut second = Criterion::from_args(&args).sample_size(1).baseline_dir(&dir);
        second.bench_function("other_bench", |b| b.iter(|| black_box(3 * 3)));
        drop(second); // Drop flushes
        let saved = parse_flat_json(&std::fs::read_to_string(&path).unwrap());
        assert!(saved.contains_key("fast_loop") && saved.contains_key("other_bench"));

        // Comparison prints deltas for benches present in the baseline.
        let mut cmp = Criterion::from_args(&["bin".to_string()]).sample_size(1).baseline_dir(&dir);
        cmp.loaded = saved;
        cmp.bench_function("fast_loop", |b| b.iter(|| black_box(2 * 2)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
