#![warn(missing_docs)]
//! Offline stand-in for `criterion`.
//!
//! Provides the macro-and-builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`) backed by a simple adaptive wall-clock
//! timer: each routine is run in growing batches until the measurement
//! window is long enough to trust, then mean ns/iteration is printed.
//! No statistics, plots, or baselines — just honest numbers on stderr.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry and configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Measure `routine` and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            routine(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        if iters == 0 {
            eprintln!("bench {name:<40} (no iterations recorded)");
        } else {
            let ns = total.as_nanos() as f64 / iters as f64;
            eprintln!("bench {name:<40} {ns:>14.1} ns/iter ({iters} iters)");
        }
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the batch size so the measurement
    /// window is at least a few milliseconds.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || n >= 1 << 20 {
                self.elapsed = elapsed;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(4);
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("counts", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }
}
