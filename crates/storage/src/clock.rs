//! Virtual time.
//!
//! All experiment timing in this workspace is *virtual*: durations are
//! derived from I/O and CPU counts by the [`crate::disk::DiskModel`], and
//! the simulation layer advances a virtual clock with them. Virtual time
//! is measured in microseconds and wrapped in a newtype so it cannot be
//! confused with wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in microseconds.
///
/// `VirtualTime` is used both as an instant (microseconds since the start
/// of a simulation) and as a duration; the arithmetic operators make the
/// common combinations ergonomic.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// The zero instant.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        VirtualTime(secs * 1_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest microsecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        VirtualTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        VirtualTime(us)
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero instant / empty duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for VirtualTime {
    type Output = VirtualTime;
    fn mul(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 * rhs)
    }
}

impl Mul<f64> for VirtualTime {
    type Output = VirtualTime;
    fn mul(self, rhs: f64) -> VirtualTime {
        VirtualTime((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for VirtualTime {
    type Output = VirtualTime;
    fn div(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 / rhs)
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> VirtualTime {
        iter.fold(VirtualTime::ZERO, Add::add)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.2}s")
        } else {
            write!(f, "{:.1}ms", s * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(VirtualTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(VirtualTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(VirtualTime::from_micros(7).as_micros(), 7);
        assert!((VirtualTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = VirtualTime::from_secs(2);
        let b = VirtualTime::from_secs(1);
        assert_eq!(a + b, VirtualTime::from_secs(3));
        assert_eq!(a - b, VirtualTime::from_secs(1));
        assert_eq!(a * 3, VirtualTime::from_secs(6));
        assert_eq!(a / 2, VirtualTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), VirtualTime::ZERO);
        let total: VirtualTime = vec![a, b, b].into_iter().sum();
        assert_eq!(total, VirtualTime::from_secs(4));
    }

    #[test]
    fn negative_f64_clamps_to_zero() {
        assert_eq!(VirtualTime::from_secs_f64(-2.0), VirtualTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", VirtualTime::from_secs(2)), "2.00s");
        assert_eq!(format!("{}", VirtualTime::from_millis(5)), "5.0ms");
    }

    #[test]
    fn mul_f64_rounds() {
        let t = VirtualTime::from_micros(10);
        assert_eq!(t * 1.25, VirtualTime::from_micros(13)); // 12.5 rounds to 13
    }
}
