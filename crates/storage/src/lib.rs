#![warn(missing_docs)]
//! Storage substrate for the speculative query processing reproduction.
//!
//! The paper ran on Oracle 8i; this crate provides the equivalent
//! low-level machinery built from scratch:
//!
//! * [`page`] — fixed-size slotted pages holding encoded tuples,
//! * [`heap`] — heap files (ordered collections of pages) with append and scan,
//! * [`buffer`] — an LRU buffer pool with pin/unpin and hit/miss accounting,
//! * [`disk`] — a virtual-time disk model that converts I/O counts into
//!   simulated elapsed time calibrated to 2002-era hardware,
//! * [`mod@tuple`] — the value/tuple representation and its page encoding,
//! * [`clock`] — virtual time types shared by the whole workspace.
//!
//! Everything is deterministic and in-memory: the "disk" is a map of page
//! images, and reads that miss the buffer pool are charged virtual time
//! by the [`disk::DiskModel`]. Query "execution time" throughout the
//! workspace is the virtual time accumulated here, which is what lets the
//! experiment harness reproduce the paper's timing-based figures without
//! the original testbed.

pub mod buffer;
pub mod clock;
pub mod column;
pub mod disk;
pub mod error;
pub mod heap;
pub mod page;
pub mod segcache;
pub mod tuple;

pub use buffer::{AccessKind, BufferPool, IoSnapshot, IoStats};
pub use clock::VirtualTime;
pub use column::{ColumnSegment, ColumnVec, EncodedCol, EncodingKind, ZoneMap};
pub use disk::{DiskModel, ResourceDemand};
pub use error::{StorageError, StorageResult};
pub use heap::{HeapFile, TupleId};
pub use page::{FileId, Page, PageId, PAGE_SIZE};
pub use segcache::{encoding_from_env, PrefetchKind, SegCache};
pub use tuple::{Tuple, Value};
