//! Values, tuples, and their page encoding.
//!
//! The type system is the minimum needed for the paper's TPC-H subset
//! workload: 64-bit integers, 64-bit floats, strings, and null. Values
//! have a total order (used by indexes and selection predicates) in which
//! null sorts first and cross-type comparisons order by type tag, so the
//! order is total even on heterogeneous columns.

use crate::error::{StorageError, StorageResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (also used for dates as day numbers).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Variable-length string.
    Str(String),
}

impl Value {
    /// Stable type tag used for encoding and cross-type ordering.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Interpret as f64 for numeric comparisons and histogram bucketing.
    /// Strings hash to a stable numeric surrogate; null maps to -inf.
    pub fn as_numeric(&self) -> f64 {
        match self {
            Value::Null => f64::NEG_INFINITY,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(s) => {
                // Order-preserving-ish surrogate: first eight bytes as a
                // big-endian integer, so lexicographic order is roughly
                // preserved for histogram purposes.
                let mut buf = [0u8; 8];
                for (i, b) in s.bytes().take(8).enumerate() {
                    buf[i] = b;
                }
                u64::from_be_bytes(buf) as f64
            }
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Size of the encoded representation in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and round floats identically so Int(3) == Float(3.0)
            // hash the same way they compare.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A tuple: an ordered list of values matching some schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Construct from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column index.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Consume the tuple, yielding its values in column order.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenate two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project to the given column indexes.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple { values: cols.iter().map(|&c| self.values[c].clone()).collect() }
    }

    /// Encoded size in bytes (2-byte arity header plus values).
    pub fn encoded_len(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_len).sum::<usize>()
    }

    /// Encode into a byte buffer suitable for a page slot.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            match v {
                Value::Null => buf.push(0),
                Value::Int(i) => {
                    buf.push(1);
                    buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    buf.push(2);
                    buf.extend_from_slice(&f.to_le_bytes());
                }
                Value::Str(s) => {
                    buf.push(3);
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
            }
        }
        buf
    }

    /// Decode from page bytes.
    pub fn decode(buf: &[u8]) -> StorageResult<Tuple> {
        let mut values = Vec::new();
        Tuple::decode_each(buf, |_, v| values.push(v))?;
        Ok(Tuple { values })
    }

    /// Streaming decode: parse an encoded tuple and hand each value to
    /// `f` together with its column index, without materializing a
    /// `Tuple`. Returns the arity. This is how pages are transposed
    /// directly into column vectors (see `specdb_storage::column`).
    pub fn decode_each(buf: &[u8], mut f: impl FnMut(usize, Value)) -> StorageResult<usize> {
        let corrupt = |msg: &str| StorageError::Corrupt(msg.to_string());
        if buf.len() < 2 {
            return Err(corrupt("tuple shorter than header"));
        }
        let arity = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        let mut pos = 2;
        for col in 0..arity {
            let tag = *buf.get(pos).ok_or_else(|| corrupt("truncated value tag"))?;
            pos += 1;
            let value = match tag {
                0 => Value::Null,
                1 => {
                    let bytes: [u8; 8] = buf
                        .get(pos..pos + 8)
                        .ok_or_else(|| corrupt("truncated int"))?
                        .try_into()
                        .unwrap();
                    pos += 8;
                    Value::Int(i64::from_le_bytes(bytes))
                }
                2 => {
                    let bytes: [u8; 8] = buf
                        .get(pos..pos + 8)
                        .ok_or_else(|| corrupt("truncated float"))?
                        .try_into()
                        .unwrap();
                    pos += 8;
                    Value::Float(f64::from_le_bytes(bytes))
                }
                3 => {
                    let len_bytes: [u8; 4] = buf
                        .get(pos..pos + 4)
                        .ok_or_else(|| corrupt("truncated string length"))?
                        .try_into()
                        .unwrap();
                    pos += 4;
                    let len = u32::from_le_bytes(len_bytes) as usize;
                    let raw =
                        buf.get(pos..pos + len).ok_or_else(|| corrupt("truncated string body"))?;
                    pos += len;
                    Value::Str(
                        std::str::from_utf8(raw)
                            .map_err(|_| corrupt("invalid utf8 in string"))?
                            .to_string(),
                    )
                }
                t => return Err(corrupt(&format!("unknown value tag {t}"))),
            };
            f(col, value);
        }
        Ok(arity)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![Value::Int(42), Value::Float(3.25), Value::Str("acme".into()), Value::Null])
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample();
        let decoded = Tuple::decode(&t.encode()).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn encoded_len_matches_actual() {
        let t = sample();
        assert_eq!(t.encode().len(), t.encoded_len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = sample().encode();
        for cut in [0, 1, 3, enc.len() - 1] {
            assert!(Tuple::decode(&enc[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn value_ordering_is_total() {
        let vals = vec![
            Value::Null,
            Value::Int(-5),
            Value::Int(3),
            Value::Float(3.5),
            Value::Str("a".into()),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(sorted, vals);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(vec![Value::Str("x".into())]);
        let joined = a.concat(&b);
        assert_eq!(joined.arity(), 3);
        let projected = joined.project(&[2, 0]);
        assert_eq!(projected.values(), &[Value::Str("x".into()), Value::Int(1)]);
    }

    #[test]
    fn as_numeric_preserves_string_prefix_order() {
        let a = Value::Str("apple".into()).as_numeric();
        let b = Value::Str("banana".into()).as_numeric();
        assert!(a < b);
    }

    #[test]
    fn hash_consistent_with_eq_across_types() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }
}
