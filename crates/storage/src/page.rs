//! Fixed-size slotted pages.
//!
//! A page is the unit of buffering and (virtual) I/O. Tuples are stored
//! with the classic slotted layout: a header, a slot directory growing
//! forward from the header, and tuple payloads growing backward from the
//! end of the page. Deleting a tuple marks its slot dead; space is
//! reclaimed only by rewriting the file (sufficient for the paper's
//! read-only exploratory workload, where deletion only happens when whole
//! materialized relations are dropped).

use crate::error::{StorageError, StorageResult};
use serde::{Deserialize, Serialize};

/// Size of every page in bytes (8 KB, matching common 2002-era DBMS defaults).
pub const PAGE_SIZE: usize = 8192;

/// Bytes of page header: tuple count (u16) + free-space offset (u16).
const HEADER_SIZE: usize = 4;
/// Bytes per slot directory entry: offset (u16) + length (u16).
const SLOT_SIZE: usize = 4;
/// Length sentinel marking a deleted slot.
const DEAD: u16 = u16::MAX;

/// Identifier of a heap file within a database instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Identifier of a page: a file and a page number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId {
    /// File this page belongs to.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page_no: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(file: FileId, page_no: u32) -> Self {
        PageId { file, page_no }
    }
}

/// An in-memory page image with slotted-tuple accessors.
///
/// The maximum tuple payload a page can hold is
/// [`Page::max_tuple_size`] bytes; larger tuples are rejected rather
/// than spilled (the TPC-H subset schema never approaches the limit).
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Create an empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // Free space starts at the end of the page and grows downward.
        write_u16(&mut data[..], 2, PAGE_SIZE as u16);
        Page { data }
    }

    /// Reconstruct a page from a raw image (e.g. read back from the
    /// virtual disk). The image is trusted; accessors validate slots.
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image has {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    /// The raw page image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    /// Number of slots in the directory (including dead ones).
    pub fn slot_count(&self) -> usize {
        read_u16(&self.data[..], 0) as usize
    }

    /// Number of live (non-deleted) tuples.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count()).filter(|&i| self.slot(i).1 != DEAD).count()
    }

    fn free_offset(&self) -> usize {
        read_u16(&self.data[..], 2) as usize
    }

    fn slot(&self, idx: usize) -> (u16, u16) {
        let base = HEADER_SIZE + idx * SLOT_SIZE;
        (read_u16(&self.data[..], base), read_u16(&self.data[..], base + 2))
    }

    /// Free bytes available for a new tuple (accounting for its slot entry).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_SIZE + self.slot_count() * SLOT_SIZE;
        self.free_offset().saturating_sub(slots_end).saturating_sub(SLOT_SIZE)
    }

    /// Largest tuple payload that fits in an empty page.
    pub fn max_tuple_size() -> usize {
        PAGE_SIZE - HEADER_SIZE - SLOT_SIZE
    }

    /// Insert a tuple payload, returning its slot index, or `None` if the
    /// page is full. Errors if the tuple cannot fit in any page.
    pub fn insert(&mut self, payload: &[u8]) -> StorageResult<Option<usize>> {
        if payload.len() > Self::max_tuple_size() {
            return Err(StorageError::TupleTooLarge {
                size: payload.len(),
                max: Self::max_tuple_size(),
            });
        }
        if payload.len() > self.free_space() {
            return Ok(None);
        }
        let count = self.slot_count();
        let new_off = self.free_offset() - payload.len();
        self.data[new_off..new_off + payload.len()].copy_from_slice(payload);
        let base = HEADER_SIZE + count * SLOT_SIZE;
        write_u16(&mut self.data[..], base, new_off as u16);
        write_u16(&mut self.data[..], base + 2, payload.len() as u16);
        write_u16(&mut self.data[..], 0, (count + 1) as u16);
        write_u16(&mut self.data[..], 2, new_off as u16);
        Ok(Some(count))
    }

    /// Read the payload of a slot; `None` if the slot is dead.
    pub fn get(&self, slot: usize) -> StorageResult<Option<&[u8]>> {
        if slot >= self.slot_count() {
            return Err(StorageError::Corrupt(format!(
                "slot {slot} out of range (count {})",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(slot);
        if len == DEAD {
            return Ok(None);
        }
        let (off, len) = (off as usize, len as usize);
        if off + len > PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "slot {slot} extends past page end ({off}+{len})"
            )));
        }
        Ok(Some(&self.data[off..off + len]))
    }

    /// Mark a slot dead. Space is not reclaimed.
    pub fn delete(&mut self, slot: usize) -> StorageResult<()> {
        if slot >= self.slot_count() {
            return Err(StorageError::Corrupt(format!("delete of bad slot {slot}")));
        }
        let base = HEADER_SIZE + slot * SLOT_SIZE;
        write_u16(&mut self.data[..], base + 2, DEAD);
        Ok(())
    }

    /// Iterate over `(slot, payload)` for all live tuples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |i| {
            let (off, len) = self.slot(i);
            if len == DEAD {
                None
            } else {
                Some((i, &self.data[off as usize..off as usize + len as usize]))
            }
        })
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("free", &self.free_space())
            .finish()
    }
}

fn read_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn write_u16(buf: &mut [u8], off: usize, val: u16) {
    buf[off..off + 2].copy_from_slice(&val.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page_has_no_tuples() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.live_count(), 0);
        assert!(p.free_space() > 8000);
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap().unwrap();
        let s1 = p.insert(b"world!").unwrap().unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0).unwrap().unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap().unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_marks_slot_dead() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        p.delete(0).unwrap();
        assert_eq!(p.get(0).unwrap(), None);
        assert_eq!(p.get(1).unwrap().unwrap(), b"b");
        assert_eq!(p.live_count(), 1);
        let collected: Vec<_> = p.iter().map(|(i, _)| i).collect();
        assert_eq!(collected, vec![1]);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new();
        let payload = vec![7u8; 1000];
        let mut inserted = 0;
        while p.insert(&payload).unwrap().is_some() {
            inserted += 1;
        }
        // 8188 usable bytes / (1000 + 4 slot) ≈ 8 tuples.
        assert_eq!(inserted, 8);
        assert_eq!(p.live_count(), 8);
    }

    #[test]
    fn oversized_tuple_is_an_error() {
        let mut p = Page::new();
        let err = p.insert(&vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::TupleTooLarge { .. }));
    }

    #[test]
    fn bytes_round_trip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let restored = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(restored.get(0).unwrap().unwrap(), b"persist me");
    }

    #[test]
    fn from_bytes_rejects_wrong_size() {
        assert!(Page::from_bytes(&[0u8; 16]).is_err());
    }

    #[test]
    fn get_out_of_range_is_error() {
        let p = Page::new();
        assert!(p.get(0).is_err());
    }
}
