//! Error types for the storage layer.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that does not exist on the virtual disk.
    PageNotFound(crate::page::PageId),
    /// A tuple id referenced a slot that does not exist or was deleted.
    TupleNotFound(crate::heap::TupleId),
    /// A tuple was too large to fit in a single page.
    TupleTooLarge {
        /// Encoded tuple size in bytes.
        size: usize,
        /// Maximum payload a page accepts.
        max: usize,
    },
    /// The buffer pool could not evict any frame (all pinned).
    PoolExhausted {
        /// Pool capacity in frames.
        capacity: usize,
    },
    /// A tuple could not be decoded from its page bytes.
    Corrupt(String),
    /// Execution was cancelled via a cancellation token.
    Cancelled,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageNotFound(pid) => write!(f, "page not found: {pid:?}"),
            StorageError::TupleNotFound(tid) => write!(f, "tuple not found: {tid:?}"),
            StorageError::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::Cancelled => write!(f, "execution cancelled"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
