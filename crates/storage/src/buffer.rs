//! Buffer pool with CLOCK (second-chance) replacement and I/O accounting.
//!
//! The pool fronts a virtual disk (an in-memory map of page images). All
//! page traffic in the workspace flows through [`BufferPool::read_page`]
//! and [`BufferPool::put_page`], so the hit/miss/write counters here are
//! an exact record of the I/O a real system would have performed — the
//! raw material for the paper's timing results.
//!
//! Frames can be pinned (pinned frames are never evicted), which is what
//! the paper's *data staging* manipulation requires; it is exposed here
//! even though the reproduction, like the paper's prototype, focuses on
//! materialization-based manipulations.

use crate::column::ColumnSegment;
use crate::disk::ResourceDemand;
use crate::error::{StorageError, StorageResult};
use crate::page::{FileId, Page, PageId, PAGE_SIZE};
use crate::segcache::SegCache;
use crate::tuple::Tuple;
use specdb_obs::{Counter, Event, EventKind, Observer};
use std::collections::HashMap;
use std::sync::Arc;

/// Pre-resolved metric handles so the per-access hot path never touches
/// the registry's name map. All handles are no-ops until
/// [`BufferPool::set_observer`] installs a live observer.
#[derive(Clone, Default)]
struct PoolMetrics {
    hit: Counter,
    read_seq: Counter,
    read_rand: Counter,
    write: Counter,
    eviction: Counter,
    cpu_tuples: Counter,
    mem_bytes: Counter,
}

impl PoolMetrics {
    fn resolve(observer: &Observer) -> Self {
        let m = observer.metrics();
        PoolMetrics {
            hit: m.counter("buffer.hit"),
            read_seq: m.counter("disk.read.seq"),
            read_rand: m.counter("disk.read.rand"),
            write: m.counter("disk.write"),
            eviction: m.counter("buffer.eviction"),
            cpu_tuples: m.counter("cpu.tuples"),
            mem_bytes: m.counter("mem.build.bytes"),
        }
    }

    /// Segment-cache handles, resolved alongside the pool's own.
    fn resolve_seg(observer: &Observer) -> crate::segcache::SegMetricHandles {
        let m = observer.metrics();
        crate::segcache::SegMetricHandles {
            hit: m.counter("segcache.hit"),
            miss: m.counter("segcache.miss"),
            evict: m.counter("segcache.evictions"),
            prefetch_issued: m.counter("segcache.prefetch_issued"),
            prefetch_useful_manip: m.counter("segcache.prefetch_useful.manip"),
            prefetch_useful_predict: m.counter("segcache.prefetch_useful.predict"),
            resident_bytes: m.gauge("segcache.resident_bytes"),
            decode_us: m.histogram("segcache.decode_us"),
            decode_plain_us: m.histogram("lat.decode_plain_us"),
            decode_dict_us: m.histogram("lat.decode_dict_us"),
            decode_rle_us: m.histogram("lat.decode_rle_us"),
        }
    }
}

/// How a page is being accessed; misses are charged differently by the
/// disk model (sequential transfer vs. seek + read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Part of a sequential scan of a file.
    Sequential,
    /// A random fetch (index traversal, rid lookup).
    Random,
}

/// Monotonic I/O counters. Snapshot before an execution and diff after to
/// obtain its [`ResourceDemand`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer hits.
    pub hits: u64,
    /// Misses during sequential access.
    pub seq_misses: u64,
    /// Misses during random access.
    pub rand_misses: u64,
    /// Pages written.
    pub writes: u64,
    /// Tuples processed by operators (charged by the executor).
    pub cpu_tuples: u64,
    /// Operator working-memory bytes charged by the executor (hash-join
    /// build sides). Footprint accounting, not timed by the disk model.
    pub mem_bytes: u64,
}

/// An opaque snapshot of [`IoStats`], used to compute deltas.
#[derive(Debug, Clone, Copy)]
pub struct IoSnapshot(IoStats);

#[derive(Clone)]
struct Frame {
    pid: PageId,
    page: Arc<Page>,
    pin: u32,
    referenced: bool,
}

/// An LRU-approximating (CLOCK) buffer pool over an in-memory virtual disk.
///
/// Cloning is cheap-ish (page images are `Arc`-shared): the experiment
/// harness clones a loaded database once per trace replay.
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    hand: usize,
    disk: HashMap<PageId, Arc<Page>>,
    file_pages: HashMap<FileId, u32>,
    next_file: u32,
    stats: IoStats,
    spill_model: bool,
    observer: Observer,
    metrics: PoolMetrics,
    /// Decoded segment cache: pages of small or hot files kept in
    /// columnar form ([`ColumnSegment`]) so batch scans skip per-tuple
    /// decoding and share column vectors zero-copy. Purely a wall-clock
    /// fast path — every access still goes through
    /// [`BufferPool::read_page`] accounting, so virtual-time I/O charges
    /// are identical whether or not a segment is cached. `Arc`-shared so
    /// morsel-scan workers can consult and populate it concurrently
    /// without the pool's exclusive borrow (see [`SegCache`]).
    seg_cache: Arc<SegCache>,
}

impl Clone for BufferPool {
    fn clone(&self) -> Self {
        BufferPool {
            capacity: self.capacity,
            frames: self.frames.clone(),
            page_table: self.page_table.clone(),
            hand: self.hand,
            disk: self.disk.clone(),
            file_pages: self.file_pages.clone(),
            next_file: self.next_file,
            stats: self.stats,
            spill_model: self.spill_model,
            observer: self.observer.clone(),
            metrics: self.metrics.clone(),
            // Deep copy, never a shared handle: a clone can allocate the
            // same fresh `FileId` as the original for a different
            // relation, so sharing decoded segments across clones would
            // serve wrong data.
            seg_cache: Arc::new(self.seg_cache.deep_clone()),
        }
    }
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity),
            page_table: HashMap::new(),
            hand: 0,
            disk: HashMap::new(),
            file_pages: HashMap::new(),
            next_file: 0,
            stats: IoStats::default(),
            spill_model: true,
            observer: Observer::disabled(),
            metrics: PoolMetrics::default(),
            // The decoded-segment cache budgets by resident encoded
            // bytes; give it the pool's own nominal byte size.
            seg_cache: Arc::new(SegCache::new(capacity * PAGE_SIZE)),
        }
    }

    /// Install an observer: buffer and disk traffic is counted against
    /// its metrics registry, and evictions are emitted as events. The
    /// default observer is disabled and costs nothing.
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = PoolMetrics::resolve(&observer);
        self.seg_cache.set_metrics(PoolMetrics::resolve_seg(&observer));
        self.observer = observer;
    }

    /// The observer currently attached to this pool.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Create a pool sized in bytes (rounded down to whole pages).
    pub fn with_bytes(bytes: usize) -> Self {
        Self::new((bytes / PAGE_SIZE).max(1))
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate a fresh file id.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.file_pages.insert(id, 0);
        id
    }

    /// Number of pages currently allocated to a file.
    pub fn file_len(&self, file: FileId) -> u32 {
        self.file_pages.get(&file).copied().unwrap_or(0)
    }

    /// Drop a file: remove its pages from the disk and the pool.
    /// Used when materialized relations are garbage-collected.
    pub fn free_file(&mut self, file: FileId) {
        let pages = self.file_len(file);
        self.seg_cache.drop_file(file);
        for page_no in 0..pages {
            let pid = PageId::new(file, page_no);
            self.disk.remove(&pid);
            if let Some(idx) = self.page_table.remove(&pid) {
                // Replace the frame with a tombstone by swap-removing from
                // the frame vector and fixing up the moved frame's index.
                let last = self.frames.len() - 1;
                self.frames.swap(idx, last);
                self.frames.pop();
                if idx < self.frames.len() {
                    let moved_pid = self.frames[idx].pid;
                    self.page_table.insert(moved_pid, idx);
                }
                if self.hand >= self.frames.len() {
                    self.hand = 0;
                }
            }
        }
        self.file_pages.remove(&file);
    }

    /// Read a page through the pool, charging a hit or a miss.
    pub fn read_page(&mut self, pid: PageId, kind: AccessKind) -> StorageResult<Arc<Page>> {
        if let Some(&idx) = self.page_table.get(&pid) {
            self.stats.hits += 1;
            self.metrics.hit.incr();
            self.frames[idx].referenced = true;
            return Ok(Arc::clone(&self.frames[idx].page));
        }
        let page = Arc::clone(self.disk.get(&pid).ok_or(StorageError::PageNotFound(pid))?);
        match kind {
            AccessKind::Sequential => {
                self.stats.seq_misses += 1;
                self.metrics.read_seq.incr();
            }
            AccessKind::Random => {
                self.stats.rand_misses += 1;
                self.metrics.read_rand.incr();
            }
        }
        self.install(pid, Arc::clone(&page))?;
        Ok(page)
    }

    /// Write a page image: it goes to the virtual disk (write-through) and
    /// is installed in the pool. Appending past the end of the file grows it.
    pub fn put_page(&mut self, pid: PageId, page: Page) -> StorageResult<()> {
        let page = Arc::new(page);
        self.stats.writes += 1;
        self.metrics.write.incr();
        // Decoded image is stale now.
        self.seg_cache.invalidate(pid);
        self.disk.insert(pid, Arc::clone(&page));
        let len = self.file_pages.entry(pid.file).or_insert(0);
        if pid.page_no >= *len {
            *len = pid.page_no + 1;
        }
        if let Some(&idx) = self.page_table.get(&pid) {
            self.frames[idx].page = Arc::clone(&page);
            self.frames[idx].referenced = true;
            Ok(())
        } else {
            self.install(pid, page)
        }
    }

    /// Pin a page in the pool (loading it if necessary); pinned pages are
    /// never evicted until unpinned. Supports the paper's data-staging
    /// manipulation.
    pub fn pin(&mut self, pid: PageId) -> StorageResult<()> {
        self.pin_with(pid, AccessKind::Random)
    }

    /// [`BufferPool::pin`] with an explicit access kind (staging warms
    /// pages with sequential reads).
    pub fn pin_with(&mut self, pid: PageId, kind: AccessKind) -> StorageResult<()> {
        self.read_page(pid, kind)?;
        let idx = self.page_table[&pid];
        self.frames[idx].pin += 1;
        Ok(())
    }

    /// Release one pin on a page. Unpinning an unpinned page is a no-op.
    pub fn unpin(&mut self, pid: PageId) {
        if let Some(&idx) = self.page_table.get(&pid) {
            let f = &mut self.frames[idx];
            f.pin = f.pin.saturating_sub(1);
        }
    }

    /// Charge `n` tuples of CPU work to the current execution.
    pub fn charge_cpu(&mut self, n: u64) {
        self.stats.cpu_tuples += n;
        self.metrics.cpu_tuples.add(n);
    }

    /// Charge `bytes` of operator working memory (hash-join build sides).
    /// Footprint accounting only: the disk model assigns it no time, but
    /// it flows through [`ResourceDemand::mem_bytes`] and the
    /// `mem.build.bytes` metric so the cost model and observability layer
    /// see pipeline-breaker memory.
    pub fn charge_mem(&mut self, bytes: u64) {
        self.stats.mem_bytes += bytes;
        self.metrics.mem_bytes.add(bytes);
    }

    /// Number of pages a file may have auto-cached in decoded form before
    /// the segment cache stops growing (hot files are exempt).
    const SEG_SMALL_PAGES: u32 = 256;

    /// Read a page through the pool and return it as a columnar
    /// [`ColumnSegment`], serving repeat reads of small or hot files from
    /// the decoded segment cache. The underlying
    /// [`BufferPool::read_page`] is always performed first, so hit/miss
    /// accounting, frame installs, and evictions are bit-identical to the
    /// undecoded path — the cache only skips the per-tuple decode work on
    /// repeat access (the dominant wall-clock cost of memory-resident
    /// scans).
    pub fn read_page_columnar(
        &mut self,
        pid: PageId,
        kind: AccessKind,
    ) -> StorageResult<Arc<ColumnSegment>> {
        let page = self.read_page(pid, kind)?;
        let small = self.file_len(pid.file) <= Self::SEG_SMALL_PAGES;
        self.seg_cache.get_or_decode(pid, &page, small)
    }

    /// Whether `file` is small enough for the segment cache to auto-
    /// cache its pages (hot files are cached regardless). Scan
    /// coordinators pass this to workers calling
    /// [`SegCache::get_or_decode`] directly.
    pub fn seg_cacheable_size(&self, file: FileId) -> bool {
        self.file_len(file) <= Self::SEG_SMALL_PAGES
    }

    /// A shareable handle to the decoded segment cache, for morsel-scan
    /// workers that decode pages off-thread.
    pub fn seg_cache(&self) -> Arc<SegCache> {
        Arc::clone(&self.seg_cache)
    }

    /// Row-major compatibility wrapper over
    /// [`BufferPool::read_page_columnar`]: gathers the columnar segment
    /// back into tuples. Kept for the legacy row-major batch arm of the
    /// `executor` bench; accounting is identical to the columnar read.
    pub fn read_page_decoded(
        &mut self,
        pid: PageId,
        kind: AccessKind,
    ) -> StorageResult<Arc<Vec<Tuple>>> {
        let seg = self.read_page_columnar(pid, kind)?;
        Ok(Arc::new(seg.to_tuples()))
    }

    /// Pin `file` into the decoded segment cache: its pages are cached on
    /// first decoded read regardless of file size or cache budget, and
    /// stay cached until the file is written or freed. Used for
    /// materialized speculation results and explicitly cached tables.
    pub fn mark_hot(&mut self, file: FileId) {
        self.seg_cache.mark_hot(file);
    }

    /// Remove `file` from the hot set and drop its decoded pages.
    pub fn unmark_hot(&mut self, file: FileId) {
        self.seg_cache.unmark_hot(file);
    }

    /// True if `file` is pinned into the decoded segment cache.
    pub fn is_hot(&self, file: FileId) -> bool {
        self.seg_cache.is_hot(file)
    }

    /// Number of decoded pages currently held by the segment cache.
    pub fn seg_resident(&self) -> usize {
        self.seg_cache.resident()
    }

    /// Resident encoded bytes held by the segment cache.
    pub fn seg_resident_bytes(&self) -> usize {
        self.seg_cache.resident_bytes()
    }

    /// Bytes the resident segments would occupy fully decoded — divide
    /// by [`BufferPool::seg_resident_bytes`] for the compression ratio.
    pub fn seg_resident_plain_bytes(&self) -> usize {
        self.seg_cache.resident_plain_bytes()
    }

    /// Replace the auto-caching budget, denominated in pages for caller
    /// convenience (the cache itself budgets the equivalent bytes of
    /// *encoded* segments, so compression stretches the same budget over
    /// more pages; default = pool capacity).
    pub fn set_seg_budget(&mut self, pages: usize) {
        self.seg_cache.set_budget(pages * PAGE_SIZE);
    }

    /// Toggle dictionary/RLE segment encoding for future decodes
    /// (`SPECDB_ENCODING`; results are identical either way).
    pub fn set_encoding(&mut self, on: bool) {
        self.seg_cache.set_encoding(on);
    }

    /// True when segment decodes apply dictionary/RLE encoding.
    pub fn encoding(&self) -> bool {
        self.seg_cache.encoding()
    }

    /// Look at a page's current disk image **without** any buffer-pool
    /// accounting: no frame install, no hit/miss counters, no eviction
    /// pressure. This is the speculative-prefetch read path — prefetch
    /// must not perturb the deterministic virtual-time replay, so it
    /// never goes through [`BufferPool::read_page`].
    pub fn peek_page(&self, pid: PageId) -> Option<Arc<Page>> {
        self.disk.get(&pid).cloned()
    }

    /// Charge synthetic I/O that bypasses the page cache — used for
    /// modelled effects like hash-join partition spills, whose scratch
    /// files a real system streams straight to and from disk.
    pub fn charge_io(&mut self, seq_reads: u64, writes: u64) {
        self.stats.seq_misses += seq_reads;
        self.stats.writes += writes;
        self.metrics.read_seq.add(seq_reads);
        self.metrics.write.add(writes);
    }

    /// Whether memory-overflow spills are modelled (hybrid hash joins
    /// charge partition I/O when their build side exceeds this pool).
    pub fn spill_model(&self) -> bool {
        self.spill_model
    }

    /// Toggle spill modelling. The experiment harness turns it off: the
    /// paper's reported per-query times imply its workload ran in a
    /// regime where plans rarely spilled (filtered intermediates), and
    /// the reproduction targets that observable regime.
    pub fn set_spill_model(&mut self, on: bool) {
        self.spill_model = on;
    }

    /// Snapshot the counters (use with [`BufferPool::demand_since`]).
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot(self.stats)
    }

    /// Resource demand accumulated since `snap`.
    pub fn demand_since(&self, snap: IoSnapshot) -> ResourceDemand {
        ResourceDemand {
            seq_reads: self.stats.seq_misses - snap.0.seq_misses,
            rand_reads: self.stats.rand_misses - snap.0.rand_misses,
            writes: self.stats.writes - snap.0.writes,
            hits: self.stats.hits - snap.0.hits,
            cpu_tuples: self.stats.cpu_tuples - snap.0.cpu_tuples,
            mem_bytes: self.stats.mem_bytes - snap.0.mem_bytes,
        }
    }

    /// Current raw counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Number of resident (buffered) pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Evict everything unpinned (cold restart between trace replays).
    pub fn clear(&mut self) {
        let pinned: Vec<Frame> = self.frames.drain(..).filter(|f| f.pin > 0).collect();
        self.page_table.clear();
        self.frames = pinned;
        for (idx, f) in self.frames.iter().enumerate() {
            self.page_table.insert(f.pid, idx);
        }
        self.hand = 0;
    }

    /// Bytes of data stored on the virtual disk.
    pub fn disk_bytes(&self) -> usize {
        self.disk.len() * PAGE_SIZE
    }

    fn install(&mut self, pid: PageId, page: Arc<Page>) -> StorageResult<()> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame { pid, page, pin: 0, referenced: true });
            self.page_table.insert(pid, self.frames.len() - 1);
            return Ok(());
        }
        // CLOCK sweep: clear reference bits until an unreferenced,
        // unpinned victim is found. Two full sweeps guarantee progress
        // unless every frame is pinned.
        let n = self.frames.len();
        for _ in 0..2 * n {
            let f = &mut self.frames[self.hand];
            if f.pin == 0 && !f.referenced {
                let victim = self.hand;
                let evicted = self.frames[victim].pid;
                self.page_table.remove(&evicted);
                self.frames[victim] = Frame { pid, page, pin: 0, referenced: true };
                self.page_table.insert(pid, victim);
                self.hand = (self.hand + 1) % n;
                self.metrics.eviction.incr();
                if self.observer.wants(EventKind::BufferEviction) {
                    self.observer.emit(Event::BufferEviction {
                        file: evicted.file.0,
                        page: evicted.page_no as u64,
                    });
                }
                return Ok(());
            }
            f.referenced = false;
            self.hand = (self.hand + 1) % n;
        }
        Err(StorageError::PoolExhausted { capacity: self.capacity })
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(byte: u8) -> Page {
        let mut p = Page::new();
        p.insert(&[byte; 16]).unwrap();
        p
    }

    #[test]
    fn pool_and_segcache_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
        assert_send_sync::<SegCache>();
    }

    #[test]
    fn clone_does_not_share_segment_cache() {
        let mut pool = BufferPool::new(4);
        let f = pool.create_file();
        let mut page = Page::new();
        page.insert(&Tuple::new(vec![crate::tuple::Value::Int(7)]).encode()).unwrap();
        pool.put_page(PageId::new(f, 0), page).unwrap();
        pool.read_page_columnar(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        let mut copy = pool.clone();
        assert_eq!(copy.seg_resident(), 1);
        copy.unmark_hot(f); // no-op on hot set, but exercises the copy
        copy.set_seg_budget(0);
        assert_eq!(copy.seg_resident(), 0);
        assert_eq!(pool.seg_resident(), 1, "clone eviction must not leak into the original");
    }

    #[test]
    fn read_miss_then_hit() {
        let mut pool = BufferPool::new(4);
        let f = pool.create_file();
        let pid = PageId::new(f, 0);
        pool.put_page(pid, page_with(1)).unwrap();
        let before = pool.snapshot();
        pool.read_page(pid, AccessKind::Sequential).unwrap();
        let d = pool.demand_since(before);
        // Already resident from the write: a hit, not a miss.
        assert_eq!(d.hits, 1);
        assert_eq!(d.seq_reads, 0);
    }

    #[test]
    fn eviction_causes_miss_on_reread() {
        let mut pool = BufferPool::new(2);
        let f = pool.create_file();
        for i in 0..4u32 {
            pool.put_page(PageId::new(f, i), page_with(i as u8)).unwrap();
        }
        // Pages 0 and 1 must have been evicted; rereading them misses.
        let before = pool.snapshot();
        pool.read_page(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        pool.read_page(PageId::new(f, 1), AccessKind::Random).unwrap();
        let d = pool.demand_since(before);
        assert_eq!(d.seq_reads, 1);
        assert_eq!(d.rand_reads, 1);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut pool = BufferPool::new(2);
        let f = pool.create_file();
        let hot = PageId::new(f, 0);
        pool.put_page(hot, page_with(0)).unwrap();
        pool.pin(hot).unwrap();
        for i in 1..10u32 {
            pool.put_page(PageId::new(f, i), page_with(i as u8)).unwrap();
        }
        let before = pool.snapshot();
        pool.read_page(hot, AccessKind::Random).unwrap();
        assert_eq!(pool.demand_since(before).hits, 1);
        pool.unpin(hot);
    }

    #[test]
    fn all_pinned_pool_exhausts() {
        let mut pool = BufferPool::new(1);
        let f = pool.create_file();
        pool.put_page(PageId::new(f, 0), page_with(0)).unwrap();
        pool.pin(PageId::new(f, 0)).unwrap();
        pool.put_page(PageId::new(f, 1), page_with(1)).unwrap_err();
    }

    #[test]
    fn free_file_removes_pages() {
        let mut pool = BufferPool::new(8);
        let f = pool.create_file();
        for i in 0..3u32 {
            pool.put_page(PageId::new(f, i), page_with(i as u8)).unwrap();
        }
        assert_eq!(pool.file_len(f), 3);
        pool.free_file(f);
        assert_eq!(pool.file_len(f), 0);
        assert!(pool.read_page(PageId::new(f, 0), AccessKind::Random).is_err());
    }

    #[test]
    fn free_file_fixes_swapped_frame_index() {
        let mut pool = BufferPool::new(8);
        let a = pool.create_file();
        let b = pool.create_file();
        pool.put_page(PageId::new(a, 0), page_with(1)).unwrap();
        pool.put_page(PageId::new(b, 0), page_with(2)).unwrap();
        pool.free_file(a);
        // b's frame index must still resolve after the swap-remove.
        let before = pool.snapshot();
        pool.read_page(PageId::new(b, 0), AccessKind::Random).unwrap();
        assert_eq!(pool.demand_since(before).hits, 1);
    }

    #[test]
    fn clear_flushes_unpinned_only() {
        let mut pool = BufferPool::new(4);
        let f = pool.create_file();
        pool.put_page(PageId::new(f, 0), page_with(0)).unwrap();
        pool.put_page(PageId::new(f, 1), page_with(1)).unwrap();
        pool.pin(PageId::new(f, 1)).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 1);
        let before = pool.snapshot();
        pool.read_page(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        pool.read_page(PageId::new(f, 1), AccessKind::Sequential).unwrap();
        let d = pool.demand_since(before);
        assert_eq!(d.seq_reads, 1);
        assert_eq!(d.hits, 1);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_frames() {
        // Fill capacity-3 pool with pages 0,1,2. Inserting page 3 sweeps
        // all reference bits clear and evicts page 0 (hand at 0). Then
        // touch page 1 (sets its bit) and insert page 4: the sweep must
        // skip the referenced page 1 and evict page 2 instead.
        let mut pool = BufferPool::new(3);
        let f = pool.create_file();
        for i in 0..5u32 {
            pool.put_page(PageId::new(f, i), page_with(i as u8)).unwrap();
            if i == 2 {
                pool.clear();
                for j in 0..3u32 {
                    pool.read_page(PageId::new(f, j), AccessKind::Sequential).unwrap();
                }
            }
            if i == 3 {
                pool.read_page(PageId::new(f, 1), AccessKind::Sequential).unwrap();
            }
        }
        let before = pool.snapshot();
        pool.read_page(PageId::new(f, 1), AccessKind::Sequential).unwrap();
        assert_eq!(pool.demand_since(before).hits, 1, "referenced page 1 must survive");
        pool.read_page(PageId::new(f, 2), AccessKind::Sequential).unwrap();
        assert_eq!(
            pool.demand_since(before).seq_reads,
            1,
            "unreferenced page 2 must have been evicted"
        );
    }

    #[test]
    fn cpu_charge_flows_to_demand() {
        let mut pool = BufferPool::new(2);
        let before = pool.snapshot();
        pool.charge_cpu(123);
        assert_eq!(pool.demand_since(before).cpu_tuples, 123);
    }

    #[test]
    fn mem_charge_flows_to_demand_without_io() {
        let mut pool = BufferPool::new(2);
        let before = pool.snapshot();
        pool.charge_mem(4096);
        let d = pool.demand_since(before);
        assert_eq!(d.mem_bytes, 4096);
        assert_eq!(d.disk_reads(), 0);
        assert_eq!(d.cpu_tuples, 0);
    }

    #[test]
    fn decoded_reads_charge_identically_to_raw_reads() {
        let mut pool = BufferPool::new(4);
        let f = pool.create_file();
        let mut page = Page::new();
        page.insert(&Tuple::new(vec![crate::tuple::Value::Int(7)]).encode()).unwrap();
        pool.put_page(PageId::new(f, 0), page).unwrap();
        pool.clear();
        // First columnar read: one sequential miss, exactly like read_page.
        let before = pool.snapshot();
        let seg = pool.read_page_columnar(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        assert_eq!(seg.rows(), 1);
        let d = pool.demand_since(before);
        assert_eq!((d.seq_reads, d.hits), (1, 0));
        // Repeat read: a buffer hit, served from the segment cache.
        let before = pool.snapshot();
        let again = pool.read_page_columnar(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        let d = pool.demand_since(before);
        assert_eq!((d.seq_reads, d.hits), (0, 1));
        assert!(Arc::ptr_eq(&seg, &again), "repeat read must reuse the decoded segment");
        // The row-major adapter reads through the same cache and charges
        // the same way.
        let before = pool.snapshot();
        let tuples = pool.read_page_decoded(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        assert_eq!(tuples.len(), 1);
        let d = pool.demand_since(before);
        assert_eq!((d.seq_reads, d.hits), (0, 1));
    }

    #[test]
    fn segment_cache_invalidated_by_write_and_free() {
        let mut pool = BufferPool::new(4);
        let f = pool.create_file();
        let mut page = Page::new();
        page.insert(&Tuple::new(vec![crate::tuple::Value::Int(1)]).encode()).unwrap();
        pool.put_page(PageId::new(f, 0), page).unwrap();
        pool.read_page_decoded(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        assert_eq!(pool.seg_resident(), 1);
        // Overwriting the page drops the stale decode.
        let mut page2 = Page::new();
        page2.insert(&Tuple::new(vec![crate::tuple::Value::Int(2)]).encode()).unwrap();
        pool.put_page(PageId::new(f, 0), page2).unwrap();
        assert_eq!(pool.seg_resident(), 0);
        let t = pool.read_page_decoded(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        assert_eq!(t[0], Tuple::new(vec![crate::tuple::Value::Int(2)]));
        // Freeing the file drops its decoded pages and hot mark.
        pool.mark_hot(f);
        pool.free_file(f);
        assert_eq!(pool.seg_resident(), 0);
        assert!(!pool.is_hot(f));
    }

    #[test]
    fn hot_files_bypass_budget_and_unmark_drops() {
        let mut pool = BufferPool::new(8);
        pool.set_seg_budget(0); // auto-caching off
        let f = pool.create_file();
        let mut page = Page::new();
        page.insert(&Tuple::new(vec![crate::tuple::Value::Int(1)]).encode()).unwrap();
        pool.put_page(PageId::new(f, 0), page).unwrap();
        pool.read_page_decoded(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        assert_eq!(pool.seg_resident(), 0, "budget 0 blocks auto-caching");
        pool.mark_hot(f);
        pool.read_page_decoded(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        assert_eq!(pool.seg_resident(), 1, "hot files cache regardless of budget");
        pool.unmark_hot(f);
        assert_eq!(pool.seg_resident(), 0);
    }

    #[test]
    fn segcache_evictions_are_counted_on_every_removal_path() {
        use crate::tuple::Value;
        let observer = Observer::enabled();
        let mut pool = BufferPool::new(16);
        pool.set_observer(observer.clone());
        let evictions = || observer.metrics().snapshot().counter("segcache.evictions");

        let f = pool.create_file();
        for i in 0..3u32 {
            let mut page = Page::new();
            page.insert(&Tuple::new(vec![Value::Int(i as i64)]).encode()).unwrap();
            pool.put_page(PageId::new(f, i), page).unwrap();
            pool.read_page_columnar(PageId::new(f, i), AccessKind::Sequential).unwrap();
        }
        assert_eq!(pool.seg_resident(), 3);
        assert_eq!(evictions(), 0, "populating the cache evicts nothing");

        // Shrinking the budget drops all non-hot segments (the
        // set_seg_budget retain path).
        pool.set_seg_budget(0);
        assert_eq!(pool.seg_resident(), 0);
        assert_eq!(evictions(), 3);

        // Stale-invalidation on overwrite.
        pool.mark_hot(f);
        pool.read_page_columnar(PageId::new(f, 0), AccessKind::Sequential).unwrap();
        let mut page = Page::new();
        page.insert(&Tuple::new(vec![Value::Int(9)]).encode()).unwrap();
        pool.put_page(PageId::new(f, 0), page).unwrap();
        assert_eq!(evictions(), 4);

        // Unmarking a hot file drops its cached pages.
        pool.read_page_columnar(PageId::new(f, 1), AccessKind::Sequential).unwrap();
        pool.unmark_hot(f);
        assert_eq!(evictions(), 5);

        // Freeing a file drops whatever it still has cached.
        pool.mark_hot(f);
        pool.read_page_columnar(PageId::new(f, 2), AccessKind::Sequential).unwrap();
        pool.free_file(f);
        assert_eq!(pool.seg_resident(), 0);
        assert_eq!(evictions(), 6);
    }

    #[test]
    fn observer_counts_traffic_and_emits_evictions() {
        use specdb_obs::MemorySink;

        let sink = Arc::new(MemorySink::new());
        let observer = Observer::enabled().with_sink(sink.clone());
        let mut pool = BufferPool::new(2);
        pool.set_observer(observer.clone());

        let f = pool.create_file();
        for i in 0..4u32 {
            pool.put_page(PageId::new(f, i), page_with(i as u8)).unwrap();
        }
        pool.read_page(PageId::new(f, 3), AccessKind::Sequential).unwrap();
        pool.read_page(PageId::new(f, 0), AccessKind::Random).unwrap();
        pool.charge_cpu(10);

        let snap = observer.metrics().snapshot();
        assert_eq!(snap.counter("disk.write"), 4);
        assert_eq!(snap.counter("buffer.hit"), 1);
        assert_eq!(snap.counter("disk.read.rand"), 1);
        assert_eq!(snap.counter("cpu.tuples"), 10);
        // Four writes into two frames force evictions, plus one more to
        // bring page 0 back in.
        assert_eq!(snap.counter("buffer.eviction"), 3);

        let evictions: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|(_, e)| e.kind() == EventKind::BufferEviction)
            .collect();
        assert_eq!(evictions.len(), 3);
        assert!(matches!(evictions[0].1, Event::BufferEviction { file, page: 0 } if file == f.0));
    }

    #[test]
    fn metrics_match_iostats_exactly() {
        let observer = Observer::enabled();
        let mut pool = BufferPool::new(4);
        pool.set_observer(observer.clone());
        let f = pool.create_file();
        for i in 0..6u32 {
            pool.put_page(PageId::new(f, i), page_with(i as u8)).unwrap();
        }
        for i in 0..6u32 {
            let _ = pool.read_page(PageId::new(f, i), AccessKind::Sequential);
        }
        pool.charge_io(5, 2);
        let stats = pool.stats();
        let snap = observer.metrics().snapshot();
        assert_eq!(snap.counter("buffer.hit"), stats.hits);
        assert_eq!(snap.counter("disk.read.seq"), stats.seq_misses);
        assert_eq!(snap.counter("disk.read.rand"), stats.rand_misses);
        assert_eq!(snap.counter("disk.write"), stats.writes);
    }
}
