//! Columnar page segments with lightweight compression.
//!
//! A [`ColumnSegment`] is one heap page transposed into per-column
//! vectors: column `j` of the segment holds the `j`-th value of every
//! live tuple on the page, in slot order. The batch executor scans these
//! instead of row-major `Vec<Tuple>` — a filter touches only the
//! predicate's column, a projection is `Arc` pointer selection, and a
//! hash join gathers keys from the key column alone.
//!
//! Since PR 7 the segment is an *encoded* format. At decode time each
//! column is sniffed and stored as one of three layouts
//! ([`EncodedCol`]):
//!
//! - **Dictionary**: low-cardinality columns become `u32` codes into a
//!   per-column dictionary of distinct values. Predicates are evaluated
//!   once per dictionary entry and rows compare codes, never strings.
//! - **Run-length**: sorted/clustered columns become `(value, run
//!   start)` pairs; filters accept or reject whole runs.
//! - **Plain**: the uncompressed `Vec<Value>` fallback.
//!
//! Every segment also carries a per-column [`ZoneMap`] (min/max over
//! non-null values plus a null count) that the executor consults before
//! touching column data — a page whose zones exclude a predicate is
//! skipped whole.
//!
//! Decoded (`Vec<Value>`) columns are materialized *lazily*: filter
//! columns are evaluated in encoded form and only columns that survive
//! into an output batch ever inflate to values, memoized per column via
//! [`OnceLock`]. Encoding is grouped by **exact representation** (float
//! bit patterns, exact enum variant), never by `Value`'s cross-type
//! equality (`Int(3) == Float(3.0)`), so materialization reproduces the
//! page bit-for-bit and all executor modes stay identical to the
//! row-at-a-time oracle, encodings on or off.

use crate::error::StorageResult;
use crate::page::Page;
use crate::tuple::{Tuple, Value};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One decoded column of a page segment, shared by reference between the
/// segment cache and the batches built over it.
pub type ColumnVec = Arc<Vec<Value>>;

/// Columns shorter than this are stored plain: the fixed overhead of a
/// dictionary or run index cannot pay for itself.
const MIN_ENCODE_ROWS: usize = 16;

/// Maximum dictionary size. Past this the column is not low-cardinality
/// enough for code-based filtering to win.
const DICT_MAX: usize = 256;

/// Approximate resident bytes of one `Value` in a `Vec<Value>` (enum
/// header; string heap bytes are added separately).
const VALUE_BYTES: usize = std::mem::size_of::<Value>();

/// Per-column min/max/null summary, computed once at page-decode time.
///
/// `min`/`max` are taken over **non-null** values under [`Value`]'s
/// total order — the same order every filter kernel uses — so a page
/// whose zone excludes a predicate provably contains no matching row.
/// `None` bounds mean the column has no non-null values.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Smallest non-null value on the page, if any.
    pub min: Option<Value>,
    /// Largest non-null value on the page, if any.
    pub max: Option<Value>,
    /// Number of NULLs on the page.
    pub null_count: u32,
}

impl ZoneMap {
    fn of(vals: &[Value]) -> ZoneMap {
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        let mut null_count = 0u32;
        for v in vals {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            min = Some(match min {
                Some(m) if m.cmp(v).is_le() => m,
                _ => v,
            });
            max = Some(match max {
                Some(m) if m.cmp(v).is_ge() => m,
                _ => v,
            });
        }
        ZoneMap { min: min.cloned(), max: max.cloned(), null_count }
    }
}

/// Which physical layout a column was encoded into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingKind {
    /// Uncompressed `Vec<Value>`.
    Plain,
    /// `u32` codes into a distinct-value dictionary.
    Dict,
    /// Run-length `(value, run start)` pairs.
    Rle,
}

impl EncodingKind {
    /// Stable lowercase label (metrics, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            EncodingKind::Plain => "plain",
            EncodingKind::Dict => "dict",
            EncodingKind::Rle => "rle",
        }
    }
}

/// One column in its encoded (resident) form.
#[derive(Debug, Clone)]
pub enum EncodedCol {
    /// Uncompressed values.
    Plain(ColumnVec),
    /// Dictionary codes: row `i` holds `dict[codes[i]]`. The dictionary
    /// lists distinct values in first-occurrence order (deterministic).
    Dict {
        /// Per-row dictionary code.
        codes: Vec<u32>,
        /// Distinct values, indexed by code.
        dict: Arc<Vec<Value>>,
    },
    /// Run-length runs: run `j` covers rows `starts[j] ..
    /// starts[j+1]` (the last run ends at the segment's row count) and
    /// every row in it holds `values[j]`.
    Rle {
        /// One value per run.
        values: Vec<Value>,
        /// First row index of each run (strictly increasing, starts at 0).
        starts: Vec<u32>,
    },
}

/// True when two values have the *same representation* — stricter than
/// `Value::eq`, which compares `Int(3) == Float(3.0)` and `-0.0 == 0.0`.
/// Encoding groups by representation so decode is bit-exact.
fn same_repr(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// Hashable exact-representation key for dictionary building.
#[derive(Hash, PartialEq, Eq)]
enum ReprKey {
    Null,
    Int(i64),
    Float(u64),
    Str(String),
}

impl ReprKey {
    fn of(v: &Value) -> ReprKey {
        match v {
            Value::Null => ReprKey::Null,
            Value::Int(i) => ReprKey::Int(*i),
            Value::Float(f) => ReprKey::Float(f.to_bits()),
            Value::Str(s) => ReprKey::Str(s.clone()),
        }
    }
}

fn heap_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len(),
        _ => 0,
    }
}

fn values_bytes(vals: &[Value]) -> usize {
    vals.len() * VALUE_BYTES + vals.iter().map(heap_bytes).sum::<usize>()
}

impl EncodedCol {
    /// Sniff and encode one column: run-length when runs compress at
    /// least 4:1 (sorted/clustered data), else a dictionary when the
    /// column is low-cardinality, else plain.
    fn encode(vals: Vec<Value>) -> EncodedCol {
        let rows = vals.len();
        if rows < MIN_ENCODE_ROWS {
            return EncodedCol::Plain(Arc::new(vals));
        }
        let mut runs = 1usize;
        for w in vals.windows(2) {
            if !same_repr(&w[0], &w[1]) {
                runs += 1;
            }
        }
        if runs * 4 <= rows {
            let mut values = Vec::with_capacity(runs);
            let mut starts = Vec::with_capacity(runs);
            for (i, v) in vals.iter().enumerate() {
                if values.last().map(|p| same_repr(p, v)) != Some(true) {
                    values.push(v.clone());
                    starts.push(i as u32);
                }
            }
            return EncodedCol::Rle { values, starts };
        }
        // Dictionary attempt: bail as soon as cardinality exceeds the cap
        // or the column repeats too little to pay for the code array.
        let mut index: HashMap<ReprKey, u32> = HashMap::with_capacity(DICT_MAX + 1);
        let mut dict: Vec<Value> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(rows);
        for v in &vals {
            let next = dict.len() as u32;
            let code = *index.entry(ReprKey::of(v)).or_insert_with(|| {
                dict.push(v.clone());
                next
            });
            codes.push(code);
            if dict.len() > DICT_MAX {
                return EncodedCol::Plain(Arc::new(vals));
            }
        }
        if dict.len() * 2 > rows {
            return EncodedCol::Plain(Arc::new(vals));
        }
        EncodedCol::Dict { codes, dict: Arc::new(dict) }
    }

    /// The layout this column was stored in.
    pub fn kind(&self) -> EncodingKind {
        match self {
            EncodedCol::Plain(_) => EncodingKind::Plain,
            EncodedCol::Dict { .. } => EncodingKind::Dict,
            EncodedCol::Rle { .. } => EncodingKind::Rle,
        }
    }

    /// Approximate resident bytes of the encoded form.
    pub fn bytes(&self) -> usize {
        match self {
            EncodedCol::Plain(vals) => values_bytes(vals),
            EncodedCol::Dict { codes, dict } => codes.len() * 4 + values_bytes(dict),
            EncodedCol::Rle { values, starts } => values_bytes(values) + starts.len() * 4,
        }
    }

    /// Inflate to a plain value vector (bit-exact with the source page).
    fn materialize(&self, rows: usize) -> ColumnVec {
        match self {
            EncodedCol::Plain(vals) => Arc::clone(vals),
            EncodedCol::Dict { codes, dict } => {
                Arc::new(codes.iter().map(|&c| dict[c as usize].clone()).collect())
            }
            EncodedCol::Rle { values, starts } => {
                let mut out = Vec::with_capacity(rows);
                for (j, v) in values.iter().enumerate() {
                    let end = starts.get(j + 1).map(|&s| s as usize).unwrap_or(rows);
                    out.resize(end, v.clone());
                }
                Arc::new(out)
            }
        }
    }
}

/// Index of the run covering `row` in an RLE `starts` array.
/// `starts` must be non-empty and `starts[0] == 0`.
pub fn rle_run_of(starts: &[u32], row: u32) -> usize {
    starts.partition_point(|&s| s <= row) - 1
}

/// One column slot: the encoded form plus its lazily materialized
/// plain twin.
#[derive(Debug)]
struct ColumnSlot {
    enc: EncodedCol,
    plain: OnceLock<ColumnVec>,
}

impl Clone for ColumnSlot {
    fn clone(&self) -> Self {
        let plain = OnceLock::new();
        if let Some(p) = self.plain.get() {
            let _ = plain.set(Arc::clone(p));
        }
        ColumnSlot { enc: self.enc.clone(), plain }
    }
}

/// A heap page decoded into (encoded) columnar form: `width` columns of
/// `rows` values each, in slot order, with per-column zone maps.
#[derive(Debug, Clone)]
pub struct ColumnSegment {
    cols: Vec<ColumnSlot>,
    zones: Arc<Vec<ZoneMap>>,
    rows: usize,
    encoded_bytes: usize,
    plain_bytes: usize,
}

impl ColumnSegment {
    /// Transpose a page's live tuples into encoded column vectors (the
    /// default: encodings on). All tuples on a page share the arity of
    /// the first (heap files are per-table); decoding fails on a page
    /// that violates this.
    pub fn decode_page(page: &Page) -> StorageResult<ColumnSegment> {
        Self::decode_page_with(page, true)
    }

    /// [`ColumnSegment::decode_page`] with encoding selection explicit:
    /// `encode = false` stores every column plain (the `SPECDB_ENCODING=0`
    /// comparison arm). Results are identical either way; only resident
    /// bytes and scan wall-clock differ.
    pub fn decode_page_with(page: &Page, encode: bool) -> StorageResult<ColumnSegment> {
        let mut cols: Vec<Vec<Value>> = Vec::new();
        let mut rows = 0usize;
        for (_, bytes) in page.iter() {
            if rows == 0 {
                let arity = Tuple::decode_each(bytes, |_, _| {})?;
                cols = (0..arity).map(|_| Vec::new()).collect();
                // Re-decode the first tuple into the freshly sized columns.
            }
            let arity = Tuple::decode_each(bytes, |col, v| {
                if let Some(c) = cols.get_mut(col) {
                    c.push(v);
                }
            })?;
            if arity != cols.len() {
                return Err(crate::error::StorageError::Corrupt(format!(
                    "page mixes tuple arities ({} vs {})",
                    arity,
                    cols.len()
                )));
            }
            rows += 1;
        }
        let zones: Vec<ZoneMap> = cols.iter().map(|c| ZoneMap::of(c)).collect();
        let mut plain_bytes = 0usize;
        let mut encoded_bytes = 0usize;
        let cols: Vec<ColumnSlot> = cols
            .into_iter()
            .map(|vals| {
                plain_bytes += values_bytes(&vals);
                let slot = if encode {
                    let enc = EncodedCol::encode(vals);
                    let plain = OnceLock::new();
                    if let EncodedCol::Plain(v) = &enc {
                        // Plain columns are their own materialization.
                        let _ = plain.set(Arc::clone(v));
                    }
                    ColumnSlot { enc, plain }
                } else {
                    let arc = Arc::new(vals);
                    let plain = OnceLock::new();
                    let _ = plain.set(Arc::clone(&arc));
                    ColumnSlot { enc: EncodedCol::Plain(arc), plain }
                };
                encoded_bytes += slot.enc.bytes();
                slot
            })
            .collect();
        Ok(ColumnSegment { cols, zones: Arc::new(zones), rows, encoded_bytes, plain_bytes })
    }

    /// Number of rows (live tuples of the source page).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Materialize every column, in schema order. Prefer
    /// [`ColumnSegment::col`] on a subset when a projection is known —
    /// that is what keeps filter-only columns encoded.
    pub fn cols(&self) -> Vec<ColumnVec> {
        (0..self.cols.len()).map(|i| Arc::clone(self.col(i))).collect()
    }

    /// One column, materialized on first access and memoized.
    pub fn col(&self, idx: usize) -> &ColumnVec {
        let slot = &self.cols[idx];
        slot.plain.get_or_init(|| slot.enc.materialize(self.rows))
    }

    /// One column in its encoded form (never materializes).
    pub fn encoded(&self, idx: usize) -> &EncodedCol {
        &self.cols[idx].enc
    }

    /// Per-column zone maps, in schema order.
    pub fn zones(&self) -> &[ZoneMap] {
        &self.zones
    }

    /// Shared handle to the zone maps (retained by the segment cache
    /// even after the segment itself is evicted).
    pub fn zones_arc(&self) -> Arc<Vec<ZoneMap>> {
        Arc::clone(&self.zones)
    }

    /// Approximate resident bytes of the encoded columns — the unit the
    /// segment cache budgets by.
    pub fn encoded_bytes(&self) -> usize {
        self.encoded_bytes
    }

    /// Approximate resident bytes the same columns would occupy fully
    /// decoded (the compression-ratio denominator).
    pub fn plain_bytes(&self) -> usize {
        self.plain_bytes
    }

    /// The encoding that covers the most columns (metrics attribution;
    /// ties prefer the compressed kinds).
    pub fn dominant_encoding(&self) -> EncodingKind {
        let mut counts = [0usize; 3];
        for slot in &self.cols {
            counts[match slot.enc.kind() {
                EncodingKind::Plain => 0,
                EncodingKind::Dict => 1,
                EncodingKind::Rle => 2,
            }] += 1;
        }
        if counts[1] >= counts[2] && counts[1] > 0 && counts[1] >= counts[0] {
            EncodingKind::Dict
        } else if counts[2] > 0 && counts[2] >= counts[0] {
            EncodingKind::Rle
        } else {
            EncodingKind::Plain
        }
    }

    /// Value at `(row, col)` (materializes the column).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.col(col)[row]
    }

    /// Gather one row back into a [`Tuple`] (materialization boundary).
    pub fn tuple(&self, row: usize) -> Tuple {
        Tuple::new((0..self.cols.len()).map(|c| self.col(c)[row].clone()).collect())
    }

    /// Gather every row back into row-major tuples — the compatibility
    /// adapter the legacy row-major batch path scans through.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|r| self.tuple(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(tuples: &[Tuple]) -> Page {
        let mut p = Page::new();
        for t in tuples {
            p.insert(&t.encode()).unwrap().expect("fits");
        }
        p
    }

    #[test]
    fn decode_transposes_rows_into_columns() {
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    if i % 2 == 0 { Value::Null } else { Value::Float(i as f64 / 2.0) },
                    Value::Str(format!("r{i}")),
                ])
            })
            .collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        assert_eq!((seg.rows(), seg.width()), (5, 3));
        assert_eq!(seg.col(0).as_slice(), &(0..5).map(Value::Int).collect::<Vec<_>>()[..]);
        assert_eq!(seg.value(2, 1), &Value::Null);
        assert_eq!(seg.tuple(3), tuples[3]);
        assert_eq!(seg.to_tuples(), tuples);
    }

    #[test]
    fn empty_page_decodes_empty() {
        let seg = ColumnSegment::decode_page(&Page::new()).unwrap();
        assert_eq!((seg.rows(), seg.width()), (0, 0));
        assert!(seg.to_tuples().is_empty());
    }

    #[test]
    fn mixed_arity_page_is_corrupt() {
        let mut p = Page::new();
        p.insert(&Tuple::new(vec![Value::Int(1)]).encode()).unwrap();
        p.insert(&Tuple::new(vec![Value::Int(1), Value::Int(2)]).encode()).unwrap();
        assert!(ColumnSegment::decode_page(&p).is_err());
    }

    #[test]
    fn low_cardinality_column_dictionary_encodes_and_round_trips() {
        let tuples: Vec<Tuple> = (0..200)
            .map(|i| Tuple::new(vec![Value::Str(format!("nation{}", i % 5)), Value::Int(i)]))
            .collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        assert_eq!(seg.encoded(0).kind(), EncodingKind::Dict);
        if let EncodedCol::Dict { dict, .. } = seg.encoded(0) {
            assert_eq!(dict.len(), 5, "five distinct nations, first-occurrence order");
            assert_eq!(dict[0], Value::Str("nation0".into()));
        }
        // The id column is unique: must stay plain.
        assert_eq!(seg.encoded(1).kind(), EncodingKind::Plain);
        assert!(seg.encoded_bytes() < seg.plain_bytes(), "dictionary must compress");
        assert_eq!(seg.to_tuples(), tuples, "bit-exact round trip");
        assert_eq!(seg.dominant_encoding(), EncodingKind::Dict);
    }

    #[test]
    fn sorted_column_rle_encodes_and_round_trips() {
        let tuples: Vec<Tuple> = (0..256).map(|i| Tuple::new(vec![Value::Int(i / 64)])).collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        assert_eq!(seg.encoded(0).kind(), EncodingKind::Rle);
        if let EncodedCol::Rle { values, starts } = seg.encoded(0) {
            assert_eq!(values.len(), 4);
            assert_eq!(starts, &[0, 64, 128, 192]);
            assert_eq!(rle_run_of(starts, 0), 0);
            assert_eq!(rle_run_of(starts, 63), 0);
            assert_eq!(rle_run_of(starts, 64), 1);
            assert_eq!(rle_run_of(starts, 255), 3);
        }
        assert!(seg.encoded_bytes() < seg.plain_bytes());
        assert_eq!(seg.to_tuples(), tuples);
    }

    #[test]
    fn cross_type_equal_values_never_conflate() {
        // Int(3) == Float(3.0) under Value::eq; encoding must keep the
        // exact variants or decode diverges from the row oracle.
        let mut vals = Vec::new();
        for _ in 0..50 {
            vals.push(Value::Int(3));
            vals.push(Value::Float(3.0));
        }
        let tuples: Vec<Tuple> = vals.iter().map(|v| Tuple::new(vec![v.clone()])).collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        assert_eq!(seg.to_tuples(), tuples, "variants must survive encoding");
    }

    #[test]
    fn zone_maps_summarize_each_column() {
        let tuples: Vec<Tuple> = (0..100)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(10 + i),
                    if i % 4 == 0 { Value::Null } else { Value::Str(format!("s{i:03}")) },
                ])
            })
            .collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        let z = &seg.zones()[0];
        assert_eq!((z.min.clone(), z.max.clone()), (Some(Value::Int(10)), Some(Value::Int(109))));
        assert_eq!(z.null_count, 0);
        let z = &seg.zones()[1];
        assert_eq!(z.null_count, 25);
        assert_eq!(z.min, Some(Value::Str("s001".into())));
    }

    #[test]
    fn encoding_off_stores_plain() {
        let tuples: Vec<Tuple> = (0..100).map(|i| Tuple::new(vec![Value::Int(i % 3)])).collect();
        let page = page_of(&tuples);
        let enc = ColumnSegment::decode_page_with(&page, true).unwrap();
        let plain = ColumnSegment::decode_page_with(&page, false).unwrap();
        assert_ne!(enc.encoded(0).kind(), EncodingKind::Plain);
        assert_eq!(plain.encoded(0).kind(), EncodingKind::Plain);
        assert_eq!(plain.encoded_bytes(), plain.plain_bytes());
        assert_eq!(enc.to_tuples(), plain.to_tuples());
        assert_eq!(plain.dominant_encoding(), EncodingKind::Plain);
        // Zone maps exist either way: page skipping works unencoded.
        assert_eq!(enc.zones(), plain.zones());
    }

    #[test]
    fn tiny_columns_stay_plain() {
        let tuples: Vec<Tuple> = (0..8).map(|_| Tuple::new(vec![Value::Int(7)])).collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        assert_eq!(seg.encoded(0).kind(), EncodingKind::Plain);
    }
}
