//! Columnar page segments.
//!
//! A [`ColumnSegment`] is one heap page transposed into per-column value
//! vectors: column `j` of the segment holds the `j`-th value of every
//! live tuple on the page, in slot order. The batch executor scans these
//! instead of row-major `Vec<Tuple>` — a filter touches only the
//! predicate's column, a projection is `Arc` pointer selection, and a
//! hash join gathers keys from the key column alone.
//!
//! Columns are `Vec<Value>`-backed rather than type-specialized arrays
//! because the type system is deliberately loose: a `Float` column may
//! store `Int` values (see `DataType::admits`) and NULLs appear inline
//! as [`Value::Null`], and executor results must stay bit-identical to
//! the row-at-a-time oracle. Type-specialized *kernels* (not layouts)
//! live in the executor, chosen from catalog column metadata.

use crate::error::StorageResult;
use crate::page::Page;
use crate::tuple::{Tuple, Value};
use std::sync::Arc;

/// One decoded column of a page segment, shared by reference between the
/// segment cache and the batches built over it.
pub type ColumnVec = Arc<Vec<Value>>;

/// A heap page decoded into columnar form: `width` column vectors of
/// `rows` values each, in slot order.
#[derive(Debug, Clone)]
pub struct ColumnSegment {
    cols: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnSegment {
    /// Transpose a page's live tuples into column vectors. All tuples on
    /// a page share the arity of the first (heap files are per-table);
    /// decoding fails on a page that violates this.
    pub fn decode_page(page: &Page) -> StorageResult<ColumnSegment> {
        let mut cols: Vec<Vec<Value>> = Vec::new();
        let mut rows = 0usize;
        for (_, bytes) in page.iter() {
            if rows == 0 {
                let arity = Tuple::decode_each(bytes, |_, _| {})?;
                cols = (0..arity).map(|_| Vec::new()).collect();
                // Re-decode the first tuple into the freshly sized columns.
            }
            let arity = Tuple::decode_each(bytes, |col, v| {
                if let Some(c) = cols.get_mut(col) {
                    c.push(v);
                }
            })?;
            if arity != cols.len() {
                return Err(crate::error::StorageError::Corrupt(format!(
                    "page mixes tuple arities ({} vs {})",
                    arity,
                    cols.len()
                )));
            }
            rows += 1;
        }
        Ok(ColumnSegment { cols: cols.into_iter().map(Arc::new).collect(), rows })
    }

    /// Number of rows (live tuples of the source page).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The column vectors, in schema order.
    pub fn cols(&self) -> &[ColumnVec] {
        &self.cols
    }

    /// One column vector by index.
    pub fn col(&self, idx: usize) -> &ColumnVec {
        &self.cols[idx]
    }

    /// Value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.cols[col][row]
    }

    /// Gather one row back into a [`Tuple`] (materialization boundary).
    pub fn tuple(&self, row: usize) -> Tuple {
        Tuple::new(self.cols.iter().map(|c| c[row].clone()).collect())
    }

    /// Gather every row back into row-major tuples — the compatibility
    /// adapter the legacy row-major batch path scans through.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|r| self.tuple(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(tuples: &[Tuple]) -> Page {
        let mut p = Page::new();
        for t in tuples {
            p.insert(&t.encode()).unwrap().expect("fits");
        }
        p
    }

    #[test]
    fn decode_transposes_rows_into_columns() {
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    if i % 2 == 0 { Value::Null } else { Value::Float(i as f64 / 2.0) },
                    Value::Str(format!("r{i}")),
                ])
            })
            .collect();
        let seg = ColumnSegment::decode_page(&page_of(&tuples)).unwrap();
        assert_eq!((seg.rows(), seg.width()), (5, 3));
        assert_eq!(seg.col(0).as_slice(), &(0..5).map(Value::Int).collect::<Vec<_>>()[..]);
        assert_eq!(seg.value(2, 1), &Value::Null);
        assert_eq!(seg.tuple(3), tuples[3]);
        assert_eq!(seg.to_tuples(), tuples);
    }

    #[test]
    fn empty_page_decodes_empty() {
        let seg = ColumnSegment::decode_page(&Page::new()).unwrap();
        assert_eq!((seg.rows(), seg.width()), (0, 0));
        assert!(seg.to_tuples().is_empty());
    }

    #[test]
    fn mixed_arity_page_is_corrupt() {
        let mut p = Page::new();
        p.insert(&Tuple::new(vec![Value::Int(1)]).encode()).unwrap();
        p.insert(&Tuple::new(vec![Value::Int(1), Value::Int(2)]).encode()).unwrap();
        assert!(ColumnSegment::decode_page(&p).is_err());
    }
}
