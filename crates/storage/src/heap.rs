//! Heap files: unordered tuple storage over slotted pages.
//!
//! A [`HeapFile`] is a sequence of pages in a [`BufferPool`] file. Tuples
//! are appended through a [`BulkLoader`] (which buffers the tail page to
//! avoid read-modify-write traffic during loads and materializations) and
//! read back either page-at-a-time for scans or by [`TupleId`] for index
//! lookups.

use crate::buffer::{AccessKind, BufferPool};
use crate::error::{StorageError, StorageResult};
use crate::page::{FileId, Page, PageId};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};

/// Physical address of a tuple: page plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId {
    /// Page holding the tuple.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// A heap file handle. Cheap to copy; all state lives in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapFile {
    /// Underlying buffer-pool file.
    pub file: FileId,
}

impl HeapFile {
    /// Create an empty heap file.
    pub fn create(pool: &mut BufferPool) -> Self {
        HeapFile { file: pool.create_file() }
    }

    /// Number of pages in the file.
    pub fn pages(&self, pool: &BufferPool) -> u32 {
        pool.file_len(self.file)
    }

    /// Read all live tuples of one page (sequential access).
    pub fn read_page(&self, pool: &mut BufferPool, page_no: u32) -> StorageResult<Vec<Tuple>> {
        let page = pool.read_page(PageId::new(self.file, page_no), AccessKind::Sequential)?;
        page.iter().map(|(_, bytes)| Tuple::decode(bytes)).collect()
    }

    /// Read one page as a columnar segment through the decoded segment
    /// cache (sequential access) — the batch executor's scan primitive.
    /// I/O accounting is identical to [`HeapFile::read_page`]; repeat
    /// reads of small or hot files skip per-tuple decoding entirely (see
    /// [`BufferPool::read_page_columnar`]).
    pub fn read_page_columnar(
        &self,
        pool: &mut BufferPool,
        page_no: u32,
    ) -> StorageResult<std::sync::Arc<crate::column::ColumnSegment>> {
        pool.read_page_columnar(PageId::new(self.file, page_no), AccessKind::Sequential)
    }

    /// Row-major wrapper over [`HeapFile::read_page_columnar`], kept for
    /// the legacy row-major batch arm of the `executor` bench.
    pub fn read_page_decoded(
        &self,
        pool: &mut BufferPool,
        page_no: u32,
    ) -> StorageResult<std::sync::Arc<Vec<Tuple>>> {
        pool.read_page_decoded(PageId::new(self.file, page_no), AccessKind::Sequential)
    }

    /// Read all live tuples of one page together with their ids.
    pub fn read_page_with_ids(
        &self,
        pool: &mut BufferPool,
        page_no: u32,
    ) -> StorageResult<Vec<(TupleId, Tuple)>> {
        let pid = PageId::new(self.file, page_no);
        let page = pool.read_page(pid, AccessKind::Sequential)?;
        page.iter()
            .map(|(slot, bytes)| {
                Ok((TupleId { page: pid, slot: slot as u16 }, Tuple::decode(bytes)?))
            })
            .collect()
    }

    /// Fetch a single tuple by id (random access).
    pub fn get(&self, pool: &mut BufferPool, tid: TupleId) -> StorageResult<Tuple> {
        let page = pool.read_page(tid.page, AccessKind::Random)?;
        match page.get(tid.slot as usize)? {
            Some(bytes) => Tuple::decode(bytes),
            None => Err(StorageError::TupleNotFound(tid)),
        }
    }

    /// Visit every live tuple; the closure may stop the scan early by
    /// returning `false`.
    pub fn for_each(
        &self,
        pool: &mut BufferPool,
        mut f: impl FnMut(TupleId, Tuple) -> bool,
    ) -> StorageResult<()> {
        for page_no in 0..self.pages(pool) {
            for (tid, tuple) in self.read_page_with_ids(pool, page_no)? {
                if !f(tid, tuple) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Collect every tuple (test/convenience helper; scans the whole file).
    pub fn collect_all(&self, pool: &mut BufferPool) -> StorageResult<Vec<Tuple>> {
        let mut out = Vec::new();
        self.for_each(pool, |_, t| {
            out.push(t);
            true
        })?;
        Ok(out)
    }

    /// Drop the file's pages (garbage collection of materializations).
    pub fn destroy(self, pool: &mut BufferPool) {
        pool.free_file(self.file);
    }
}

/// Buffered appender for a heap file.
///
/// Keeps the tail page in memory and flushes it when full or on
/// [`BulkLoader::finish`]; each flush is a single page write.
pub struct BulkLoader {
    heap: HeapFile,
    next_page_no: u32,
    current: Page,
    current_dirty: bool,
    loaded: u64,
}

impl BulkLoader {
    /// Start loading at the end of `heap`.
    pub fn new(heap: HeapFile, pool: &BufferPool) -> Self {
        BulkLoader {
            heap,
            next_page_no: heap.pages(pool),
            current: Page::new(),
            current_dirty: false,
            loaded: 0,
        }
    }

    /// Append one tuple, returning its id.
    pub fn push(&mut self, pool: &mut BufferPool, tuple: &Tuple) -> StorageResult<TupleId> {
        let encoded = tuple.encode();
        let slot = match self.current.insert(&encoded)? {
            Some(slot) => slot,
            None => {
                self.flush(pool)?;
                self.current
                    .insert(&encoded)?
                    .expect("fresh page must accept a tuple that fits a page")
            }
        };
        self.current_dirty = true;
        self.loaded += 1;
        Ok(TupleId { page: PageId::new(self.heap.file, self.next_page_no), slot: slot as u16 })
    }

    /// Number of tuples pushed so far.
    pub fn loaded(&self) -> u64 {
        self.loaded
    }

    fn flush(&mut self, pool: &mut BufferPool) -> StorageResult<()> {
        if self.current_dirty {
            let page = std::mem::take(&mut self.current);
            pool.put_page(PageId::new(self.heap.file, self.next_page_no), page)?;
            self.next_page_no += 1;
            self.current_dirty = false;
        }
        Ok(())
    }

    /// Flush the tail page and return the tuple count loaded.
    pub fn finish(mut self, pool: &mut BufferPool) -> StorageResult<u64> {
        self.flush(pool)?;
        Ok(self.loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    fn tuple(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
    }

    fn load(pool: &mut BufferPool, n: i64) -> (HeapFile, Vec<TupleId>) {
        let heap = HeapFile::create(pool);
        let mut loader = BulkLoader::new(heap, pool);
        let tids: Vec<_> = (0..n).map(|i| loader.push(pool, &tuple(i)).unwrap()).collect();
        loader.finish(pool).unwrap();
        (heap, tids)
    }

    #[test]
    fn load_and_scan_round_trip() {
        let mut pool = BufferPool::new(64);
        let (heap, _) = load(&mut pool, 1000);
        let all = heap.collect_all(&mut pool).unwrap();
        assert_eq!(all.len(), 1000);
        assert_eq!(all[0], tuple(0));
        assert_eq!(all[999], tuple(999));
        assert!(heap.pages(&pool) > 1, "1000 tuples should span pages");
    }

    #[test]
    fn get_by_tuple_id() {
        let mut pool = BufferPool::new(64);
        let (heap, tids) = load(&mut pool, 500);
        assert_eq!(heap.get(&mut pool, tids[123]).unwrap(), tuple(123));
        assert_eq!(heap.get(&mut pool, tids[499]).unwrap(), tuple(499));
    }

    #[test]
    fn for_each_early_stop() {
        let mut pool = BufferPool::new(64);
        let (heap, _) = load(&mut pool, 100);
        let mut seen = 0;
        heap.for_each(&mut pool, |_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn destroy_frees_pages() {
        let mut pool = BufferPool::new(64);
        let (heap, tids) = load(&mut pool, 100);
        heap.destroy(&mut pool);
        assert!(HeapFile { file: heap.file }.get(&mut pool, tids[0]).is_err());
    }

    #[test]
    fn loader_counts_and_flushes_partial_page() {
        let mut pool = BufferPool::new(64);
        let heap = HeapFile::create(&mut pool);
        let mut loader = BulkLoader::new(heap, &pool);
        loader.push(&mut pool, &tuple(1)).unwrap();
        assert_eq!(loader.loaded(), 1);
        assert_eq!(loader.finish(&mut pool).unwrap(), 1);
        assert_eq!(heap.pages(&pool), 1);
        assert_eq!(heap.collect_all(&mut pool).unwrap().len(), 1);
    }

    #[test]
    fn appending_after_finish_continues_file() {
        let mut pool = BufferPool::new(64);
        let (heap, _) = load(&mut pool, 10);
        let mut loader = BulkLoader::new(heap, &pool);
        loader.push(&mut pool, &tuple(100)).unwrap();
        loader.finish(&mut pool).unwrap();
        assert_eq!(heap.collect_all(&mut pool).unwrap().len(), 11);
    }

    #[test]
    fn scan_of_large_file_counts_sequential_misses() {
        let mut pool = BufferPool::new(4);
        let (heap, _) = load(&mut pool, 5000);
        pool.clear();
        let before = pool.snapshot();
        heap.collect_all(&mut pool).unwrap();
        let d = pool.demand_since(before);
        assert_eq!(d.seq_reads as u32, heap.pages(&pool));
        assert_eq!(d.rand_reads, 0);
    }
}
