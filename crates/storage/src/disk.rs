//! Virtual-time disk model.
//!
//! The paper measured wall-clock query times on a 2002-era dual
//! Pentium-II with Oracle 8i. We reproduce the *shape* of those timings
//! by converting measured resource demand — buffer-pool misses split into
//! sequential and random reads, page writes, and tuples processed — into
//! virtual elapsed time with a simple linear disk/CPU model calibrated to
//! hardware of that era.
//!
//! The `time_multiplier` supports the scaled-dataset substitution
//! described in DESIGN.md: a dataset generated at 1/k of its nominal size
//! uses `time_multiplier = k`, so virtual durations match the full-size
//! system while wall-clock replay stays tractable.

use crate::clock::VirtualTime;
use serde::{Deserialize, Serialize};

/// Resource demand accumulated by an execution (deltas of [`crate::buffer::IoStats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// Buffer misses served as part of a sequential scan.
    pub seq_reads: u64,
    /// Buffer misses served as random page fetches (index traversals).
    pub rand_reads: u64,
    /// Pages written (materializations, index builds).
    pub writes: u64,
    /// Buffer hits (no disk time, small CPU charge).
    pub hits: u64,
    /// Tuples processed by operators.
    pub cpu_tuples: u64,
    /// Bytes of operator working memory allocated (hash-join build
    /// sides). Footprint accounting only: the disk model charges no time
    /// for it, but the cost model and observability layer see how much
    /// memory an execution's pipeline breakers held.
    pub mem_bytes: u64,
}

impl ResourceDemand {
    /// Total pages read from "disk".
    pub fn disk_reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            seq_reads: self.seq_reads + other.seq_reads,
            rand_reads: self.rand_reads + other.rand_reads,
            writes: self.writes + other.writes,
            hits: self.hits + other.hits,
            cpu_tuples: self.cpu_tuples + other.cpu_tuples,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }
}

/// Linear disk/CPU timing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskModel {
    /// Time to read one page during a sequential scan, microseconds.
    pub seq_page_us: f64,
    /// Time to read one page at a random location, microseconds.
    pub rand_page_us: f64,
    /// Time to write one page, microseconds.
    pub write_page_us: f64,
    /// CPU time per tuple processed, microseconds.
    pub cpu_tuple_us: f64,
    /// CPU time per buffer hit, microseconds.
    pub hit_us: f64,
    /// Global multiplier applied to the final duration (dataset scaling).
    pub time_multiplier: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        // ~20 MB/s sequential (8 KB page ≈ 0.4 ms), ~8 ms random I/O,
        // ~1.5 µs of CPU per tuple: year-2002 commodity hardware.
        DiskModel {
            seq_page_us: 400.0,
            rand_page_us: 8000.0,
            write_page_us: 500.0,
            cpu_tuple_us: 1.5,
            hit_us: 5.0,
            time_multiplier: 1.0,
        }
    }
}

impl DiskModel {
    /// A model whose virtual durations are scaled by `k` (see DESIGN.md
    /// substitution 3: dataset generated at 1/k nominal size).
    pub fn scaled(k: f64) -> Self {
        DiskModel { time_multiplier: k, ..Default::default() }
    }

    /// Convert a resource demand into virtual elapsed time.
    pub fn time(&self, d: &ResourceDemand) -> VirtualTime {
        let us = d.seq_reads as f64 * self.seq_page_us
            + d.rand_reads as f64 * self.rand_page_us
            + d.writes as f64 * self.write_page_us
            + d.hits as f64 * self.hit_us
            + d.cpu_tuples as f64 * self.cpu_tuple_us;
        VirtualTime::from_micros((us * self.time_multiplier).round() as u64)
    }

    /// Estimated time for a pure sequential scan of `pages` pages holding
    /// `tuples` tuples, assuming a cold buffer. Used by the cost model.
    pub fn scan_time(&self, pages: u64, tuples: u64) -> VirtualTime {
        self.time(&ResourceDemand { seq_reads: pages, cpu_tuples: tuples, ..Default::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_land_in_paper_range() {
        // A full scan of a 100 MB table (12800 pages, ~1M tuples) should
        // take single-digit seconds, matching the paper's 3-13 s bucket
        // range for the 100 MB dataset.
        let m = DiskModel::default();
        let t = m.scan_time(12_800, 1_000_000);
        let secs = t.as_secs_f64();
        assert!((3.0..15.0).contains(&secs), "scan took {secs}s");
    }

    #[test]
    fn random_reads_cost_more_than_sequential() {
        let m = DiskModel::default();
        let seq = m.time(&ResourceDemand { seq_reads: 100, ..Default::default() });
        let rand = m.time(&ResourceDemand { rand_reads: 100, ..Default::default() });
        assert!(rand > seq * 10);
    }

    #[test]
    fn multiplier_scales_linearly() {
        let d = ResourceDemand { seq_reads: 1000, cpu_tuples: 500, ..Default::default() };
        let base = DiskModel::default().time(&d);
        let scaled = DiskModel::scaled(10.0).time(&d);
        let ratio = scaled.as_micros() as f64 / base.as_micros() as f64;
        assert!((ratio - 10.0).abs() < 0.01);
    }

    #[test]
    fn demand_plus_adds_componentwise() {
        let a = ResourceDemand {
            seq_reads: 1,
            rand_reads: 2,
            writes: 3,
            hits: 4,
            cpu_tuples: 5,
            mem_bytes: 6,
        };
        let b = ResourceDemand {
            seq_reads: 10,
            rand_reads: 20,
            writes: 30,
            hits: 40,
            cpu_tuples: 50,
            mem_bytes: 60,
        };
        let c = a.plus(&b);
        assert_eq!(c.seq_reads, 11);
        assert_eq!(c.rand_reads, 22);
        assert_eq!(c.writes, 33);
        assert_eq!(c.hits, 44);
        assert_eq!(c.cpu_tuples, 55);
        assert_eq!(c.mem_bytes, 66);
        assert_eq!(c.disk_reads(), 33);
    }
}
