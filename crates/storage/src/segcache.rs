//! Shared decoded-segment cache.
//!
//! PR 4 kept decoded [`ColumnSegment`]s in a plain `HashMap` inside the
//! buffer pool, reachable only through `&mut BufferPool`. Morsel-driven
//! execution needs worker threads to consult and populate the cache
//! *without* the pool's exclusive borrow, so the cache now lives behind
//! an [`Arc`] with a vendored `parking_lot` mutex: the pool holds one
//! handle, every scan worker holds another.
//!
//! Since PR 7 the cached unit is the *encoded* segment
//! (dictionary/RLE/plain, see [`crate::column`]) and the cache budgets
//! by **resident encoded bytes** rather than entry count — compression
//! directly grows effective cache capacity. The cache also retains two
//! lightweight side structures:
//!
//! - **Zone maps** ([`crate::column::ZoneMap`]) survive segment
//!   eviction: they are a few dozen bytes per page, and a retained zone
//!   map lets a re-scan skip the page without re-decoding it.
//! - **Prefetch marks** track pages warmed speculatively (see
//!   [`SegCache::prefetch`]), remembering *why* each page was warmed
//!   ([`PrefetchKind`]); a later regular lookup that hits a marked page
//!   counts as `segcache.prefetch_useful.manip` or
//!   `segcache.prefetch_useful.predict` depending on whether a one-step
//!   manipulation or a whole-query prediction issued the warm-up.
//!
//! The cache is a wall-clock fast path only. Virtual-time I/O accounting
//! happens in [`crate::buffer::BufferPool::read_page`] *before* any
//! segment lookup, so whether a decode is served from the cache or
//! recomputed never changes a replay's [`crate::disk::ResourceDemand`].
//! Under concurrent decodes the `segcache.hit`/`segcache.miss` counters
//! may attribute a racing decode to two misses where a serial run would
//! see a miss then a hit — the cached *contents* are identical either
//! way because [`ColumnSegment::decode_page`] is deterministic.
//! Speculative prefetch is asynchronous and guarded by a cache version:
//! any page write or file drop bumps the version and in-flight prefetch
//! results against the old version are discarded, so a stale page image
//! can never enter the cache.

use crate::column::{ColumnSegment, EncodingKind, ZoneMap};
use crate::error::StorageResult;
use crate::page::{FileId, Page, PageId};
use parking_lot::Mutex;
use specdb_obs::{Counter, Gauge, Histogram};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default encoding selection: `SPECDB_ENCODING` unset or anything but
/// `0`/`off`/`false`/`no` means encodings are on.
pub fn encoding_from_env() -> bool {
    match std::env::var("SPECDB_ENCODING") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// Why a page was speculatively warmed. Useful-prefetch accounting is
/// split by kind so the observability layer can tell whether warm hits
/// came from one-step manipulation builds or from whole-query
/// prediction pre-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchKind {
    /// Warmed ahead of a one-step speculative manipulation build.
    Manipulation,
    /// Warmed ahead of a predicted completed query's pre-execution.
    Prediction,
}

/// Metric handles bumped by the cache (no-ops until an observer is
/// installed via [`SegCache::set_metrics`]).
#[derive(Clone, Default)]
struct SegMetrics {
    hit: Counter,
    miss: Counter,
    evict: Counter,
    prefetch_issued: Counter,
    prefetch_useful_manip: Counter,
    prefetch_useful_predict: Counter,
    resident_bytes: Gauge,
    /// Wall-clock decode cost per page, microseconds. Observational
    /// only — never feeds virtual accounting.
    decode_us: Histogram,
    /// Same samples, split by the segment's dominant encoding so
    /// operator profiles can attribute scan time to decode flavor.
    decode_plain_us: Histogram,
    decode_dict_us: Histogram,
    decode_rle_us: Histogram,
}

impl SegMetrics {
    fn record_decode(&self, kind: EncodingKind, us: f64) {
        self.decode_us.record(us);
        match kind {
            EncodingKind::Plain => self.decode_plain_us.record(us),
            EncodingKind::Dict => self.decode_dict_us.record(us),
            EncodingKind::Rle => self.decode_rle_us.record(us),
        }
    }
}

/// A retained zone-map entry. `confirmed` means a synchronous
/// (deterministic) code path — a regular scan or decode — has touched
/// this page; entries populated only by asynchronous prefetch stay
/// unconfirmed until then. Consumers that must stay deterministic
/// across prefetch timing (the cost estimator) only read confirmed
/// entries; scans may use either, since a zone-based skip decision is a
/// pure function of page content.
struct ZoneEntry {
    zones: Arc<Vec<ZoneMap>>,
    confirmed: bool,
}

#[derive(Default)]
struct SegCacheInner {
    map: HashMap<PageId, Arc<ColumnSegment>>,
    /// Zone maps by page, retained after segment eviction (dropped only
    /// when the page is overwritten or its file freed).
    zones: HashMap<PageId, ZoneEntry>,
    /// Pages inserted by speculative prefetch and not yet re-read,
    /// tagged with the kind of speculation that warmed them.
    prefetched: HashMap<PageId, PrefetchKind>,
    /// Files pinned into the cache regardless of size or budget
    /// (materialized speculation results, explicitly cached tables).
    hot: HashSet<FileId>,
    /// Max resident encoded bytes auto-cached for files not marked hot.
    budget_bytes: usize,
    /// Resident encoded bytes across all cached segments.
    resident_bytes: usize,
    /// What those segments would occupy fully decoded (compression-ratio
    /// denominator).
    resident_plain_bytes: usize,
    /// Bumped on every invalidation/file drop; in-flight prefetches
    /// carry the version they observed and discard on mismatch.
    version: u64,
    metrics: SegMetrics,
}

impl SegCacheInner {
    fn insert(&mut self, pid: PageId, seg: &Arc<ColumnSegment>) {
        if self.map.insert(pid, Arc::clone(seg)).is_none() {
            self.resident_bytes += seg.encoded_bytes();
            self.resident_plain_bytes += seg.plain_bytes();
            self.metrics.resident_bytes.set(self.resident_bytes as f64);
        }
    }

    fn forget(&mut self, pid: PageId) -> bool {
        match self.map.remove(&pid) {
            Some(seg) => {
                self.resident_bytes -= seg.encoded_bytes();
                self.resident_plain_bytes -= seg.plain_bytes();
                self.prefetched.remove(&pid);
                self.metrics.resident_bytes.set(self.resident_bytes as f64);
                true
            }
            None => false,
        }
    }

    /// Drop every cached segment not matching `keep`, counting
    /// evictions. Zone maps are retained: the underlying pages are
    /// unchanged.
    fn evict_where(&mut self, keep: impl Fn(&PageId) -> bool) {
        let victims: Vec<PageId> = self.map.keys().filter(|pid| !keep(pid)).copied().collect();
        for pid in victims {
            self.forget(pid);
            self.metrics.evict.incr();
        }
    }

    fn put_zones(&mut self, pid: PageId, seg: &ColumnSegment, confirmed: bool) {
        match self.zones.get_mut(&pid) {
            Some(e) => e.confirmed |= confirmed,
            None => {
                self.zones.insert(pid, ZoneEntry { zones: seg.zones_arc(), confirmed });
            }
        }
    }
}

/// A thread-safe cache of decoded column segments, shared between the
/// buffer pool and morsel-scan workers via `Arc<SegCache>`.
pub struct SegCache {
    inner: Mutex<SegCacheInner>,
    /// Whether decodes apply dictionary/RLE encoding (`SPECDB_ENCODING`,
    /// default on). Changing it mid-flight is safe: both forms decode to
    /// identical values.
    encoding: AtomicBool,
}

impl SegCache {
    /// Create a cache that may auto-cache up to `budget_bytes` of
    /// encoded segments from non-hot files.
    pub fn new(budget_bytes: usize) -> Self {
        SegCache {
            inner: Mutex::new(SegCacheInner { budget_bytes, ..SegCacheInner::default() }),
            encoding: AtomicBool::new(encoding_from_env()),
        }
    }

    /// Install metric handles (called when the pool's observer changes).
    pub(crate) fn set_metrics(&self, m: SegMetricHandles) {
        let mut inner = self.inner.lock();
        inner.metrics = SegMetrics {
            hit: m.hit,
            miss: m.miss,
            evict: m.evict,
            prefetch_issued: m.prefetch_issued,
            prefetch_useful_manip: m.prefetch_useful_manip,
            prefetch_useful_predict: m.prefetch_useful_predict,
            resident_bytes: m.resident_bytes,
            decode_us: m.decode_us,
            decode_plain_us: m.decode_plain_us,
            decode_dict_us: m.decode_dict_us,
            decode_rle_us: m.decode_rle_us,
        };
        inner.metrics.resident_bytes.set(inner.resident_bytes as f64);
    }

    /// Toggle dictionary/RLE encoding for future decodes.
    pub fn set_encoding(&self, on: bool) {
        self.encoding.store(on, Ordering::Relaxed);
    }

    /// True when decodes apply dictionary/RLE encoding.
    pub fn encoding(&self) -> bool {
        self.encoding.load(Ordering::Relaxed)
    }

    /// Look up the decoded form of `pid`, decoding (and caching, when
    /// eligible) on miss. `small_file` is the caller's judgement that
    /// the owning file is small enough to auto-cache — the pool knows
    /// file lengths; the cache does not.
    ///
    /// The decode itself runs outside the lock so concurrent workers
    /// never serialize on CPU work; a racing double-decode inserts one
    /// winner and both callers get a correct segment.
    pub fn get_or_decode(
        &self,
        pid: PageId,
        page: &Page,
        small_file: bool,
    ) -> StorageResult<Arc<ColumnSegment>> {
        let cache_hot;
        let metrics;
        {
            let mut inner = self.inner.lock();
            if let Some(seg) = inner.map.get(&pid) {
                let seg = Arc::clone(seg);
                inner.metrics.hit.incr();
                if let Some(kind) = inner.prefetched.remove(&pid) {
                    match kind {
                        PrefetchKind::Manipulation => inner.metrics.prefetch_useful_manip.incr(),
                        PrefetchKind::Prediction => inner.metrics.prefetch_useful_predict.incr(),
                    }
                }
                // A regular read confirms the page's zones for
                // deterministic consumers.
                if let Some(e) = inner.zones.get_mut(&pid) {
                    e.confirmed = true;
                }
                return Ok(seg);
            }
            inner.metrics.miss.incr();
            cache_hot = inner.hot.contains(&pid.file);
            metrics = inner.metrics.clone();
        }
        let t0 = std::time::Instant::now();
        let seg = Arc::new(ColumnSegment::decode_page_with(page, self.encoding())?);
        metrics.record_decode(seg.dominant_encoding(), t0.elapsed().as_micros() as f64);
        let mut inner = self.inner.lock();
        inner.put_zones(pid, &seg, true);
        let fits = inner.resident_bytes + seg.encoded_bytes() <= inner.budget_bytes;
        if cache_hot || inner.hot.contains(&pid.file) || (small_file && fits) {
            if let Some(existing) = inner.map.get(&pid) {
                return Ok(Arc::clone(existing));
            }
            inner.insert(pid, &seg);
        }
        Ok(seg)
    }

    /// Speculatively warm `pid`: decode and cache it ahead of a
    /// predicted query, without touching hit/miss accounting. `version`
    /// must be [`SegCache::version`] observed when the page image was
    /// captured; if the cache has been invalidated since, the result is
    /// discarded (the image may be stale). `kind` records whether a
    /// manipulation or a whole-query prediction is warming the page, so
    /// a later useful hit is attributed to the right counter. Returns
    /// `true` if the page was newly warmed.
    pub fn prefetch(
        &self,
        pid: PageId,
        page: &Page,
        small_file: bool,
        version: u64,
        kind: PrefetchKind,
    ) -> bool {
        let cache_hot;
        let metrics;
        {
            let inner = self.inner.lock();
            if inner.version != version || inner.map.contains_key(&pid) {
                return false;
            }
            cache_hot = inner.hot.contains(&pid.file);
            metrics = inner.metrics.clone();
        }
        metrics.prefetch_issued.incr();
        let t0 = std::time::Instant::now();
        let Ok(seg) = ColumnSegment::decode_page_with(page, self.encoding()) else {
            return false;
        };
        let seg = Arc::new(seg);
        metrics.record_decode(seg.dominant_encoding(), t0.elapsed().as_micros() as f64);
        let mut inner = self.inner.lock();
        if inner.version != version || inner.map.contains_key(&pid) {
            return false;
        }
        inner.put_zones(pid, &seg, false);
        let fits = inner.resident_bytes + seg.encoded_bytes() <= inner.budget_bytes;
        if cache_hot || inner.hot.contains(&pid.file) || (small_file && fits) {
            inner.insert(pid, &seg);
            inner.prefetched.insert(pid, kind);
            return true;
        }
        false
    }

    /// True if `pid`'s segment is currently resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.inner.lock().map.contains_key(&pid)
    }

    /// Current invalidation version (pair with [`SegCache::prefetch`]).
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }

    /// Retained zone maps for `pid`, if any — available even after the
    /// segment itself was evicted. Calling this from a scan confirms
    /// the entry (scans are deterministic readers).
    pub fn zone_maps(&self, pid: PageId) -> Option<Arc<Vec<ZoneMap>>> {
        let mut inner = self.inner.lock();
        inner.zones.get_mut(&pid).map(|e| {
            e.confirmed = true;
            Arc::clone(&e.zones)
        })
    }

    /// Zone maps for `pid` only if a deterministic (non-prefetch) path
    /// has touched the page — safe for cost estimation, which must not
    /// vary with asynchronous prefetch timing.
    pub fn confirmed_zone_maps(&self, pid: PageId) -> Option<Arc<Vec<ZoneMap>>> {
        let inner = self.inner.lock();
        inner.zones.get(&pid).filter(|e| e.confirmed).map(|e| Arc::clone(&e.zones))
    }

    /// Drop the cached decode of `pid` (its page image was overwritten).
    /// Its zone maps go with it, and in-flight prefetches are fenced.
    pub(crate) fn invalidate(&self, pid: PageId) {
        let mut inner = self.inner.lock();
        inner.version += 1;
        inner.zones.remove(&pid);
        if inner.forget(pid) {
            inner.metrics.evict.incr();
        }
    }

    /// Pin `file`: cache its pages on first decode regardless of size
    /// or budget.
    pub(crate) fn mark_hot(&self, file: FileId) {
        self.inner.lock().hot.insert(file);
    }

    /// Unpin `file` and drop its cached pages (zone maps are kept — the
    /// pages themselves are unchanged).
    pub(crate) fn unmark_hot(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.hot.remove(&file);
        inner.evict_where(|pid| pid.file != file);
    }

    /// True if `file` is pinned into the cache.
    pub(crate) fn is_hot(&self, file: FileId) -> bool {
        self.inner.lock().hot.contains(&file)
    }

    /// Forget `file` entirely (it was freed): unpin it and drop its
    /// pages *and* zone maps, counting each segment as an eviction.
    /// `FileId`s are reused, so nothing may survive.
    pub(crate) fn drop_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.version += 1;
        inner.hot.remove(&file);
        inner.zones.retain(|pid, _| pid.file != file);
        inner.evict_where(|pid| pid.file != file);
    }

    /// Number of decoded pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Resident encoded bytes across all cached segments.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// Bytes the resident segments would occupy fully decoded; the
    /// compression ratio is `resident_plain_bytes / resident_bytes`.
    pub fn resident_plain_bytes(&self) -> usize {
        self.inner.lock().resident_plain_bytes
    }

    /// Replace the auto-caching byte budget; shrinking below the
    /// resident size drops every non-hot segment.
    pub(crate) fn set_budget(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        inner.budget_bytes = bytes;
        if inner.resident_bytes > bytes {
            let hot = inner.hot.clone();
            inner.evict_where(|pid| hot.contains(&pid.file));
        }
    }

    /// An independent copy with the same contents, hot set, budget and
    /// metric handles. Cloning a [`crate::buffer::BufferPool`] must
    /// *not* share cache state: two clones can allocate the same fresh
    /// `FileId` for different relations, and a shared cache would serve
    /// one clone's decodes to the other.
    pub(crate) fn deep_clone(&self) -> SegCache {
        let inner = self.inner.lock();
        SegCache {
            inner: Mutex::new(SegCacheInner {
                map: inner.map.clone(),
                zones: inner
                    .zones
                    .iter()
                    .map(|(pid, e)| {
                        (*pid, ZoneEntry { zones: Arc::clone(&e.zones), confirmed: e.confirmed })
                    })
                    .collect(),
                prefetched: inner.prefetched.clone(),
                hot: inner.hot.clone(),
                budget_bytes: inner.budget_bytes,
                resident_bytes: inner.resident_bytes,
                resident_plain_bytes: inner.resident_plain_bytes,
                version: inner.version,
                metrics: inner.metrics.clone(),
            }),
            encoding: AtomicBool::new(self.encoding()),
        }
    }
}

/// Bundle of metric handles resolved by the pool's observer hookup
/// (see [`crate::buffer::BufferPool::set_observer`]).
pub(crate) struct SegMetricHandles {
    pub hit: Counter,
    pub miss: Counter,
    pub evict: Counter,
    pub prefetch_issued: Counter,
    pub prefetch_useful_manip: Counter,
    pub prefetch_useful_predict: Counter,
    pub resident_bytes: Gauge,
    pub decode_us: Histogram,
    pub decode_plain_us: Histogram,
    pub decode_dict_us: Histogram,
    pub decode_rle_us: Histogram,
}

impl std::fmt::Debug for SegCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SegCache")
            .field("resident", &inner.map.len())
            .field("resident_bytes", &inner.resident_bytes)
            .field("zones", &inner.zones.len())
            .field("hot_files", &inner.hot.len())
            .field("budget_bytes", &inner.budget_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Tuple, Value};

    fn one_row_page(v: i64) -> Page {
        let mut p = Page::new();
        p.insert(&Tuple::new(vec![Value::Int(v)]).encode()).unwrap();
        p
    }

    /// A page big enough that its encoded bytes are nontrivial.
    fn wide_page(rows: i64) -> Page {
        let mut p = Page::new();
        for i in 0..rows {
            p.insert(&Tuple::new(vec![Value::Int(i), Value::Str(format!("v{}", i % 4))]).encode())
                .unwrap();
        }
        p
    }

    #[test]
    fn concurrent_get_or_decode_is_safe_and_correct() {
        let cache = Arc::new(SegCache::new(64 * crate::page::PAGE_SIZE));
        let f = FileId(0);
        let pages: Vec<Page> = (0..8).map(one_row_page).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let pages = &pages;
                s.spawn(move || {
                    for (i, page) in pages.iter().enumerate() {
                        let pid = PageId::new(f, i as u32);
                        let seg = cache.get_or_decode(pid, page, true).unwrap();
                        assert_eq!(seg.rows(), 1);
                        assert_eq!(seg.col(0)[0], Value::Int(i as i64));
                    }
                });
            }
        });
        assert_eq!(cache.resident(), 8);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn deep_clone_diverges_from_original() {
        let cache = SegCache::new(64 * crate::page::PAGE_SIZE);
        let f = FileId(3);
        let pid = PageId::new(f, 0);
        cache.get_or_decode(pid, &one_row_page(1), true).unwrap();
        let copy = cache.deep_clone();
        assert_eq!(copy.resident(), 1);
        copy.invalidate(pid);
        assert_eq!(copy.resident(), 0);
        assert_eq!(cache.resident(), 1, "clone removal must not touch the original");
    }

    #[test]
    fn budget_and_hot_rules_match_pool_semantics() {
        let cache = SegCache::new(0);
        let f = FileId(1);
        let page = one_row_page(7);
        cache.get_or_decode(PageId::new(f, 0), &page, true).unwrap();
        assert_eq!(cache.resident(), 0, "budget 0 blocks auto-caching");
        cache.mark_hot(f);
        cache.get_or_decode(PageId::new(f, 0), &page, true).unwrap();
        assert_eq!(cache.resident(), 1, "hot files bypass the budget");
        cache.unmark_hot(f);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn budget_is_in_resident_encoded_bytes() {
        let page = wide_page(100);
        // Pin encoding on: the compression assertion below must hold
        // regardless of the ambient SPECDB_ENCODING default.
        let probe = SegCache::new(usize::MAX);
        probe.set_encoding(true);
        let seg = probe.get_or_decode(PageId::new(FileId(9), 0), &page, true).unwrap();
        let one = seg.encoded_bytes();
        assert!(one > 0);
        // Budget for exactly two segments: the third must be refused.
        let cache = SegCache::new(2 * one);
        cache.set_encoding(true);
        for i in 0..3 {
            cache.get_or_decode(PageId::new(FileId(1), i), &page, true).unwrap();
        }
        assert_eq!(cache.resident(), 2, "third segment exceeds the byte budget");
        assert_eq!(cache.resident_bytes(), 2 * one);
        assert!(cache.resident_plain_bytes() > cache.resident_bytes(), "encoded must compress");
        // Shrinking the budget evicts down.
        cache.set_budget(one - 1);
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn zone_maps_survive_segment_eviction() {
        let cache = SegCache::new(usize::MAX);
        let f = FileId(2);
        let pid = PageId::new(f, 0);
        cache.get_or_decode(pid, &wide_page(50), true).unwrap();
        assert!(cache.zone_maps(pid).is_some());
        cache.set_budget(0); // evict everything
        assert_eq!(cache.resident(), 0);
        let zones = cache.zone_maps(pid).expect("zones outlive eviction");
        assert_eq!(zones[0].min, Some(Value::Int(0)));
        assert_eq!(zones[0].max, Some(Value::Int(49)));
        // A write to the page drops them (content changed).
        cache.invalidate(pid);
        assert!(cache.zone_maps(pid).is_none());
    }

    #[test]
    fn prefetch_warms_and_marks_pages() {
        let cache = SegCache::new(usize::MAX);
        let pid = PageId::new(FileId(4), 0);
        let page = wide_page(20);
        let v = cache.version();
        assert!(cache.prefetch(pid, &page, true, v, PrefetchKind::Manipulation));
        assert!(cache.contains(pid));
        assert!(!cache.prefetch(pid, &page, true, v, PrefetchKind::Prediction), "already resident");
        // Prefetch-only zones are unconfirmed: estimators must not see
        // them until a regular read lands.
        assert!(cache.confirmed_zone_maps(pid).is_none());
        cache.get_or_decode(pid, &page, true).unwrap();
        assert!(cache.confirmed_zone_maps(pid).is_some());
    }

    #[test]
    fn stale_prefetch_is_discarded() {
        let cache = SegCache::new(usize::MAX);
        let pid = PageId::new(FileId(5), 0);
        let v = cache.version();
        // A write lands between page capture and the prefetch decode.
        cache.invalidate(pid);
        assert!(
            !cache.prefetch(pid, &wide_page(20), true, v, PrefetchKind::Manipulation),
            "stale version must be fenced"
        );
        assert!(!cache.contains(pid));
        assert!(cache.zone_maps(pid).is_none());
    }
}
