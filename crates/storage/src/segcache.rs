//! Shared decoded-segment cache.
//!
//! PR 4 kept decoded [`ColumnSegment`]s in a plain `HashMap` inside the
//! buffer pool, reachable only through `&mut BufferPool`. Morsel-driven
//! execution needs worker threads to consult and populate the cache
//! *without* the pool's exclusive borrow, so the cache now lives behind
//! an [`Arc`] with a vendored `parking_lot` mutex: the pool holds one
//! handle, every scan worker holds another.
//!
//! The cache is a wall-clock fast path only. Virtual-time I/O accounting
//! happens in [`crate::buffer::BufferPool::read_page`] *before* any
//! segment lookup, so whether a decode is served from the cache or
//! recomputed never changes a replay's [`crate::disk::ResourceDemand`].
//! Under concurrent decodes the `segcache.hit`/`segcache.miss` counters
//! may attribute a racing decode to two misses where a serial run would
//! see a miss then a hit — the cached *contents* are identical either
//! way because [`ColumnSegment::decode_page`] is deterministic.

use crate::column::ColumnSegment;
use crate::error::StorageResult;
use crate::page::{FileId, Page, PageId};
use parking_lot::Mutex;
use specdb_obs::{Counter, Histogram};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Metric handles bumped by the cache (no-ops until an observer is
/// installed via [`SegCache::set_metrics`]).
#[derive(Clone, Default)]
struct SegMetrics {
    hit: Counter,
    miss: Counter,
    evict: Counter,
    /// Wall-clock decode cost per page, microseconds. Observational
    /// only — never feeds virtual accounting.
    decode_us: Histogram,
}

#[derive(Default)]
struct SegCacheInner {
    map: HashMap<PageId, Arc<ColumnSegment>>,
    /// Files pinned into the cache regardless of size or budget
    /// (materialized speculation results, explicitly cached tables).
    hot: HashSet<FileId>,
    /// Max pages auto-cached for files not marked hot.
    budget: usize,
    metrics: SegMetrics,
}

/// A thread-safe cache of decoded column segments, shared between the
/// buffer pool and morsel-scan workers via `Arc<SegCache>`.
pub struct SegCache {
    inner: Mutex<SegCacheInner>,
}

impl SegCache {
    /// Create a cache that may auto-cache up to `budget` pages of
    /// non-hot files.
    pub fn new(budget: usize) -> Self {
        SegCache { inner: Mutex::new(SegCacheInner { budget, ..SegCacheInner::default() }) }
    }

    /// Install metric handles (called when the pool's observer changes).
    pub(crate) fn set_metrics(
        &self,
        hit: Counter,
        miss: Counter,
        evict: Counter,
        decode_us: Histogram,
    ) {
        self.inner.lock().metrics = SegMetrics { hit, miss, evict, decode_us };
    }

    /// Look up the decoded form of `pid`, decoding (and caching, when
    /// eligible) on miss. `small_file` is the caller's judgement that
    /// the owning file is small enough to auto-cache — the pool knows
    /// file lengths; the cache does not.
    ///
    /// The decode itself runs outside the lock so concurrent workers
    /// never serialize on CPU work; a racing double-decode inserts one
    /// winner and both callers get a correct segment.
    pub fn get_or_decode(
        &self,
        pid: PageId,
        page: &Page,
        small_file: bool,
    ) -> StorageResult<Arc<ColumnSegment>> {
        let cache_hot;
        let decode_us;
        {
            let inner = self.inner.lock();
            if let Some(seg) = inner.map.get(&pid) {
                inner.metrics.hit.incr();
                return Ok(Arc::clone(seg));
            }
            inner.metrics.miss.incr();
            cache_hot = inner.hot.contains(&pid.file);
            decode_us = inner.metrics.decode_us.clone();
        }
        let t0 = std::time::Instant::now();
        let seg = Arc::new(ColumnSegment::decode_page(page)?);
        decode_us.record(t0.elapsed().as_micros() as f64);
        let mut inner = self.inner.lock();
        if cache_hot
            || inner.hot.contains(&pid.file)
            || (small_file && inner.map.len() < inner.budget)
        {
            return Ok(Arc::clone(inner.map.entry(pid).or_insert_with(|| Arc::clone(&seg))));
        }
        Ok(seg)
    }

    /// Drop the cached decode of `pid` (its page image was overwritten).
    pub(crate) fn invalidate(&self, pid: PageId) {
        let mut inner = self.inner.lock();
        if inner.map.remove(&pid).is_some() {
            inner.metrics.evict.incr();
        }
    }

    /// Pin `file`: cache its pages on first decode regardless of size
    /// or budget.
    pub(crate) fn mark_hot(&self, file: FileId) {
        self.inner.lock().hot.insert(file);
    }

    /// Unpin `file` and drop its cached pages.
    pub(crate) fn unmark_hot(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.hot.remove(&file);
        let before = inner.map.len();
        inner.map.retain(|pid, _| pid.file != file);
        let evicted = (before - inner.map.len()) as u64;
        inner.metrics.evict.add(evicted);
    }

    /// True if `file` is pinned into the cache.
    pub(crate) fn is_hot(&self, file: FileId) -> bool {
        self.inner.lock().hot.contains(&file)
    }

    /// Forget `file` entirely (it was freed): unpin it and drop its
    /// pages, counting each as an eviction.
    pub(crate) fn drop_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.hot.remove(&file);
        let before = inner.map.len();
        inner.map.retain(|pid, _| pid.file != file);
        let evicted = (before - inner.map.len()) as u64;
        inner.metrics.evict.add(evicted);
    }

    /// Number of decoded pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Replace the auto-caching budget; shrinking below the resident
    /// count drops every non-hot segment.
    pub(crate) fn set_budget(&self, pages: usize) {
        let mut inner = self.inner.lock();
        inner.budget = pages;
        if inner.map.len() > pages {
            let hot = inner.hot.clone();
            let before = inner.map.len();
            inner.map.retain(|pid, _| hot.contains(&pid.file));
            let evicted = (before - inner.map.len()) as u64;
            inner.metrics.evict.add(evicted);
        }
    }

    /// An independent copy with the same contents, hot set, budget and
    /// metric handles. Cloning a [`crate::buffer::BufferPool`] must
    /// *not* share cache state: two clones can allocate the same fresh
    /// `FileId` for different relations, and a shared cache would serve
    /// one clone's decodes to the other.
    pub(crate) fn deep_clone(&self) -> SegCache {
        let inner = self.inner.lock();
        SegCache {
            inner: Mutex::new(SegCacheInner {
                map: inner.map.clone(),
                hot: inner.hot.clone(),
                budget: inner.budget,
                metrics: inner.metrics.clone(),
            }),
        }
    }
}

impl std::fmt::Debug for SegCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SegCache")
            .field("resident", &inner.map.len())
            .field("hot_files", &inner.hot.len())
            .field("budget", &inner.budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Tuple, Value};

    fn one_row_page(v: i64) -> Page {
        let mut p = Page::new();
        p.insert(&Tuple::new(vec![Value::Int(v)]).encode()).unwrap();
        p
    }

    #[test]
    fn concurrent_get_or_decode_is_safe_and_correct() {
        let cache = Arc::new(SegCache::new(64));
        let f = FileId(0);
        let pages: Vec<Page> = (0..8).map(one_row_page).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let pages = &pages;
                s.spawn(move || {
                    for (i, page) in pages.iter().enumerate() {
                        let pid = PageId::new(f, i as u32);
                        let seg = cache.get_or_decode(pid, page, true).unwrap();
                        assert_eq!(seg.rows(), 1);
                        assert_eq!(seg.col(0)[0], Value::Int(i as i64));
                    }
                });
            }
        });
        assert_eq!(cache.resident(), 8);
    }

    #[test]
    fn deep_clone_diverges_from_original() {
        let cache = SegCache::new(64);
        let f = FileId(3);
        let pid = PageId::new(f, 0);
        cache.get_or_decode(pid, &one_row_page(1), true).unwrap();
        let copy = cache.deep_clone();
        assert_eq!(copy.resident(), 1);
        copy.invalidate(pid);
        assert_eq!(copy.resident(), 0);
        assert_eq!(cache.resident(), 1, "clone removal must not touch the original");
    }

    #[test]
    fn budget_and_hot_rules_match_pool_semantics() {
        let cache = SegCache::new(0);
        let f = FileId(1);
        let page = one_row_page(7);
        cache.get_or_decode(PageId::new(f, 0), &page, true).unwrap();
        assert_eq!(cache.resident(), 0, "budget 0 blocks auto-caching");
        cache.mark_hot(f);
        cache.get_or_decode(PageId::new(f, 0), &page, true).unwrap();
        assert_eq!(cache.resident(), 1, "hot files bypass the budget");
        cache.unmark_hot(f);
        assert_eq!(cache.resident(), 0);
    }
}
