//! Predictive edit model: an n-gram/Markov chain over edit-operation
//! sequences (ROADMAP item 2, after *Speculative Ad-hoc Querying*).
//!
//! The paper's Learner estimates whether parts *survive*; this module
//! learns what the user will *do next*. Each observed formulation is a
//! sequence of [`EditOp`]s terminated by GO; the predictor counts
//! transitions `context → next op` where the context is the last
//! [`ORDER`] edits, abstracted to `(kind, relation, column)` shape so
//! that estimates generalize across predicate constants. Counts are
//! kept at every order from [`ORDER`] down to 0, and prediction backs
//! off to shorter contexts (with a stupid-backoff discount, `BACKOFF`)
//! when a specific context was never observed. Transition
//! values keep one *concrete* representative op, so a beam search can
//! replay predicted edits against the live partial query and emit
//! complete candidate queries — the top-k predicted *futures* the
//! speculator can pre-execute during think time.
//!
//! Everything is deterministic: contexts and successors live in
//! `BTreeMap`s, ties break on canonical keys, and no wall-clock or RNG
//! state participates. Two learners fed the same edit stream produce
//! bit-identical predictions at any thread count.

use serde::{Deserialize, Serialize};
use specdb_query::{canonical_key, EditOp, PartialQuery, Query, QueryGraph};
use std::collections::BTreeMap;

/// Markov order: number of trailing edits forming the context.
pub const ORDER: usize = 2;
/// Beam width of the completion search.
const BEAM_WIDTH: usize = 8;
/// Maximum predicted edits appended before forcing the beam to stop.
const MAX_DEPTH: usize = 6;
/// Successors expanded per beam state.
const BRANCH: usize = 4;
/// Transitions rarer than this are not followed.
const MIN_STEP_PROB: f64 = 0.02;
/// Stupid-backoff penalty per order level dropped: an unseen order-2
/// context falls back to the order-1 (then order-0) table, discounted
/// so specific contexts always dominate when available.
const BACKOFF: f64 = 0.4;

/// One observed successor of a context: how often it followed, plus a
/// concrete representative op the beam search can replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NextEntry {
    count: f64,
    op: EditOp,
}

/// All observed successors of one context.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ContextStats {
    total: f64,
    next: BTreeMap<String, NextEntry>,
}

/// The n-gram edit-sequence predictor. Part of the persisted profile:
/// serializes with the [`Learner`](crate::Learner) and restores
/// bit-identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EditPredictor {
    transitions: BTreeMap<String, ContextStats>,
    formulations: u64,
}

/// Shape-level token: op kind + relation/column coordinates, without
/// predicate constants, so counts pool across values.
fn abstract_token(op: &EditOp) -> String {
    match op {
        EditOp::AddRelation(r) => format!("+r:{r}"),
        EditOp::RemoveRelation(r) => format!("-r:{r}"),
        EditOp::AddSelection(s) => format!("+s:{}.{}", s.rel, s.pred.column),
        EditOp::RemoveSelection(s) => format!("-s:{}.{}", s.rel, s.pred.column),
        EditOp::UpdateSelection { old, new } => {
            format!("~s:{}.{}>{}.{}", old.rel, old.pred.column, new.rel, new.pred.column)
        }
        EditOp::AddJoin(j) => format!("+j:{j}"),
        EditOp::RemoveJoin(j) => format!("-j:{j}"),
        EditOp::AddProjection(r, c) => format!("+p:{r}.{c}"),
        EditOp::RemoveProjection(r, c) => format!("-p:{r}.{c}"),
        EditOp::Go => "go".to_string(),
    }
}

/// Value-level token: distinguishes successors that differ only in the
/// predicate constant (selection displays include the value).
fn concrete_token(op: &EditOp) -> String {
    match op {
        EditOp::AddSelection(s) => format!("+S:{s}"),
        EditOp::RemoveSelection(s) => format!("-S:{s}"),
        EditOp::UpdateSelection { old, new } => format!("~S:{old}>{new}"),
        other => abstract_token(other),
    }
}

/// The context key for a position given the abstract tokens before it:
/// the last `n` tokens, `^`-padded at the start of a formulation. Keys
/// of different orders cannot collide: order-2 keys contain `|`,
/// order-1 keys are a bare token, and the order-0 key is `*`.
fn context_key_n(toks: &[String], n: usize) -> String {
    if n == 0 {
        return "*".to_string();
    }
    let mut parts: Vec<&str> = Vec::with_capacity(n);
    for i in 0..n {
        let idx = toks.len() as isize - n as isize + i as isize;
        parts.push(if idx < 0 { "^" } else { &toks[idx as usize] });
    }
    parts.join("|")
}

impl EditPredictor {
    /// Train on one completed formulation. `ops` is the edit stream of a
    /// single formulation; everything from the first GO onward is
    /// ignored (GO itself is appended as the terminal symbol).
    pub fn observe_formulation(&mut self, ops: &[EditOp]) {
        let body: Vec<&EditOp> = ops.iter().take_while(|o| !o.is_go()).collect();
        let go = EditOp::Go;
        let mut toks: Vec<String> = Vec::with_capacity(body.len());
        for op in body.into_iter().chain(std::iter::once(&go)) {
            // Every order from ORDER down to 0 records the transition, so
            // prediction can back off from unseen specific contexts.
            for order in 0..=ORDER {
                let ctx = context_key_n(&toks, order);
                let stats = self.transitions.entry(ctx).or_default();
                stats.total += 1.0;
                let entry = stats
                    .next
                    .entry(concrete_token(op))
                    .or_insert_with(|| NextEntry { count: 0.0, op: op.clone() });
                entry.count += 1.0;
            }
            if !op.is_go() {
                toks.push(abstract_token(op));
            }
        }
        self.formulations += 1;
    }

    /// Number of formulations trained on.
    pub fn formulations(&self) -> u64 {
        self.formulations
    }

    /// Number of distinct contexts with observed successors.
    pub fn contexts(&self) -> usize {
        self.transitions.len()
    }

    /// Successor table for a beam position: the most specific context
    /// with observations wins, discounted by [`BACKOFF`] per order
    /// level dropped (stupid backoff).
    fn lookup(&self, toks: &[String]) -> Option<(&ContextStats, f64)> {
        let mut penalty = 1.0;
        for order in (0..=ORDER).rev() {
            if let Some(stats) = self.transitions.get(&context_key_n(toks, order)) {
                return Some((stats, penalty));
            }
            penalty *= BACKOFF;
        }
        None
    }

    /// Top-`k` predicted completed queries from the current partial,
    /// each with its sequence probability (product of step
    /// probabilities along the predicted edit path, ending in GO).
    ///
    /// `history` is the current formulation's edit stream so far; it
    /// seeds the Markov context. A prediction of "GO next" yields the
    /// current partial itself as a candidate completed query.
    pub fn predict(
        &self,
        history: &[EditOp],
        partial: &QueryGraph,
        k: usize,
    ) -> Vec<(QueryGraph, f64)> {
        if k == 0 || partial.is_empty() || self.formulations == 0 {
            return Vec::new();
        }
        struct State {
            pq: PartialQuery,
            toks: Vec<String>,
            logp: f64,
        }
        let init_toks: Vec<String> =
            history.iter().filter(|o| !o.is_go()).map(abstract_token).collect();
        let mut beam = vec![State {
            pq: PartialQuery::from_query(Query::star(partial.clone())),
            toks: init_toks,
            logp: 0.0,
        }];
        let mut found: BTreeMap<String, (QueryGraph, f64)> = BTreeMap::new();
        for _depth in 0..=MAX_DEPTH {
            let mut next_beam: Vec<State> = Vec::new();
            for st in &beam {
                let Some((stats, penalty)) = self.lookup(&st.toks) else {
                    continue;
                };
                let mut entries: Vec<(&String, &NextEntry)> = stats.next.iter().collect();
                entries.sort_by(|a, b| b.1.count.total_cmp(&a.1.count).then_with(|| a.0.cmp(b.0)));
                for (_tok, e) in entries.into_iter().take(BRANCH) {
                    let p = penalty * e.count / stats.total.max(1e-12);
                    if p < MIN_STEP_PROB {
                        continue;
                    }
                    let logp = st.logp + p.ln();
                    if e.op.is_go() {
                        let g = st.pq.graph().clone();
                        if g.is_empty() {
                            continue;
                        }
                        let prob = logp.exp();
                        let slot =
                            found.entry(canonical_key(&g)).or_insert_with(|| (g.clone(), 0.0));
                        if prob > slot.1 {
                            slot.1 = prob;
                        }
                    } else {
                        let mut pq = st.pq.clone();
                        pq.apply(&e.op);
                        let mut toks = st.toks.clone();
                        toks.push(abstract_token(&e.op));
                        next_beam.push(State { pq, toks, logp });
                    }
                }
            }
            next_beam.sort_by(|a, b| b.logp.total_cmp(&a.logp).then_with(|| a.toks.cmp(&b.toks)));
            next_beam.truncate(BEAM_WIDTH);
            beam = next_beam;
            if beam.is_empty() {
                break;
            }
        }
        let mut out: Vec<(String, QueryGraph, f64)> =
            found.into_iter().map(|(key, (g, p))| (key, g, p)).collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out.into_iter().map(|(_, g, p)| (g, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_query::{CompareOp, Join, Predicate, Selection};

    fn sel(rel: &str, col: &str, v: i64) -> Selection {
        Selection::new(rel, Predicate::new(col, CompareOp::Lt, v))
    }

    fn formulation(v: i64) -> Vec<EditOp> {
        vec![
            EditOp::AddRelation("orders".into()),
            EditOp::AddJoin(Join::new("orders", "o_custkey", "customer", "c_custkey")),
            EditOp::AddSelection(sel("orders", "o_totalprice", v)),
            EditOp::Go,
        ]
    }

    #[test]
    fn learns_go_transition_and_predicts_current_partial() {
        let mut p = EditPredictor::default();
        for v in 0..10 {
            p.observe_formulation(&formulation(v));
        }
        assert_eq!(p.formulations(), 10);
        // Mid-formulation: all three edits applied, GO should be the
        // top-probability next step → the partial itself is predicted.
        let ops = &formulation(99)[..3];
        let mut pq = PartialQuery::new();
        for op in ops {
            pq.apply(op);
        }
        let preds = p.predict(ops, pq.graph(), 3);
        assert!(!preds.is_empty());
        assert_eq!(&preds[0].0, pq.graph(), "top prediction must be the imminent GO");
        assert!(preds[0].1 > 0.9, "p(GO|ctx) should dominate: {}", preds[0].1);
    }

    #[test]
    fn multi_edit_lookahead_completes_the_query() {
        // Every formulation follows join → selection(42) → GO; after
        // only the join the predictor must look two edits ahead.
        let mut p = EditPredictor::default();
        for _ in 0..10 {
            p.observe_formulation(&formulation(42));
        }
        let ops = &formulation(42)[..2];
        let mut pq = PartialQuery::new();
        for op in ops {
            pq.apply(op);
        }
        let preds = p.predict(ops, pq.graph(), 3);
        let mut expect = pq.graph().clone();
        expect.add_selection(sel("orders", "o_totalprice", 42));
        assert!(
            preds.iter().any(|(g, _)| g == &expect),
            "lookahead must predict the completed query"
        );
    }

    #[test]
    fn predictions_are_deterministic_and_serializable() {
        let mut p = EditPredictor::default();
        for v in 0..7 {
            p.observe_formulation(&formulation(v % 3));
        }
        let ops = &formulation(1)[..2];
        let mut pq = PartialQuery::new();
        for op in ops {
            pq.apply(op);
        }
        let a = p.predict(ops, pq.graph(), 5);
        let b = p.predict(ops, pq.graph(), 5);
        assert_eq!(a, b);
        let json = serde_json::to_string(&p).unwrap();
        let restored: EditPredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.predict(ops, pq.graph(), 5), a);
    }

    #[test]
    fn untrained_predictor_stays_silent() {
        let p = EditPredictor::default();
        let g = QueryGraph::relation("orders");
        assert!(p.predict(&[], &g, 3).is_empty());
        assert!(p.predict(&[], &QueryGraph::new(), 3).is_empty());
    }
}
