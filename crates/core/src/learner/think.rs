//! Think-time modelling.
//!
//! The feasibility of speculation hinges on the user's formulation time
//! exceeding the manipulation's execution time (paper Section 5). The
//! model keeps an empirical sample of observed formulation durations and
//! answers the conditional question the speculator asks mid-formulation:
//! *given that the user has already been thinking for `elapsed`, what is
//! the probability they keep thinking for at least `additional` more?*

use serde::{Deserialize, Serialize};
use specdb_storage::VirtualTime;

/// Empirical think-time distribution with an exponential prior fallback.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThinkTimeModel {
    samples: Vec<f64>,
    cap: usize,
    prior_mean_secs: f64,
    next_slot: usize,
}

impl Default for ThinkTimeModel {
    fn default() -> Self {
        // Prior mean of 28 s: the average the paper reports in Section 5.
        ThinkTimeModel { samples: Vec::new(), cap: 512, prior_mean_secs: 28.0, next_slot: 0 }
    }
}

impl ThinkTimeModel {
    /// Model with an explicit prior mean (seconds).
    pub fn with_prior(prior_mean_secs: f64) -> Self {
        ThinkTimeModel { prior_mean_secs, ..Default::default() }
    }

    /// Record one observed formulation duration.
    pub fn observe(&mut self, duration: VirtualTime) {
        let secs = duration.as_secs_f64();
        if self.samples.len() < self.cap {
            self.samples.push(secs);
        } else {
            // Ring-buffer replacement keeps the model adaptive.
            self.samples[self.next_slot] = secs;
            self.next_slot = (self.next_slot + 1) % self.cap;
        }
    }

    /// Number of observed samples.
    pub fn samples(&self) -> usize {
        self.samples.len()
    }

    /// Mean of observed samples (prior mean when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.samples.is_empty() {
            self.prior_mean_secs
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// P(total think time > elapsed + additional | total > elapsed).
    pub fn p_exceeds(&self, elapsed: VirtualTime, additional: VirtualTime) -> f64 {
        let e = elapsed.as_secs_f64();
        let a = additional.as_secs_f64();
        if a <= 0.0 {
            return 1.0;
        }
        let qualifying: Vec<&f64> = self.samples.iter().filter(|&&s| s > e).collect();
        if qualifying.len() >= 8 {
            let beyond = qualifying.iter().filter(|&&&s| s > e + a).count();
            // Laplace smoothing keeps the tail probability nonzero.
            (beyond as f64 + 0.5) / (qualifying.len() as f64 + 1.0)
        } else {
            // Exponential fallback (memoryless, so `elapsed` drops out).
            (-a / self.mean_secs().max(1e-6)).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> VirtualTime {
        VirtualTime::from_secs_f64(s)
    }

    #[test]
    fn prior_fallback_is_exponential() {
        let m = ThinkTimeModel::with_prior(10.0);
        let p = m.p_exceeds(secs(0.0), secs(10.0));
        assert!((p - (-1.0f64).exp()).abs() < 1e-9);
        assert_eq!(m.p_exceeds(secs(5.0), secs(0.0)), 1.0);
    }

    #[test]
    fn empirical_tail_estimates() {
        let mut m = ThinkTimeModel::default();
        // 100 samples: half at 5 s, half at 50 s.
        for i in 0..100 {
            m.observe(secs(if i % 2 == 0 { 5.0 } else { 50.0 }));
        }
        // From t=0, probability of exceeding 20 s ≈ 0.5.
        let p = m.p_exceeds(secs(0.0), secs(20.0));
        assert!((p - 0.5).abs() < 0.05, "{p}");
        // Given 10 s already elapsed, only the 50 s sessions qualify:
        // exceeding 10+20=30 s is near-certain.
        let p = m.p_exceeds(secs(10.0), secs(20.0));
        assert!(p > 0.9, "{p}");
    }

    #[test]
    fn ring_buffer_wraps() {
        let mut m = ThinkTimeModel { cap: 4, ..Default::default() };
        for i in 0..10 {
            m.observe(secs(i as f64));
        }
        assert_eq!(m.samples(), 4);
    }

    #[test]
    fn mean_tracks_observations() {
        let mut m = ThinkTimeModel::default();
        m.observe(secs(10.0));
        m.observe(secs(20.0));
        assert!((m.mean_secs() - 15.0).abs() < 1e-9);
    }
}
