//! Decayed Bernoulli counters — the basic survival estimators.
//!
//! Each counter tracks a Bernoulli rate with exponential forgetting, so
//! the profile adapts when the user's behaviour drifts (the paper's
//! profile "is continuously updated with information on the most recent
//! actions of the user"). A Beta-style prior keeps early estimates sane.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// A decayed success/trial counter with a Beta prior.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayCounter {
    successes: f64,
    trials: f64,
    decay: f64,
    prior_mean: f64,
    prior_weight: f64,
}

impl DecayCounter {
    /// Counter with forgetting factor `decay` (1.0 = never forget) and a
    /// `Beta`-like prior of `prior_weight` pseudo-trials at `prior_mean`.
    pub fn new(decay: f64, prior_mean: f64, prior_weight: f64) -> Self {
        assert!((0.0..=1.0).contains(&decay));
        assert!((0.0..=1.0).contains(&prior_mean));
        DecayCounter { successes: 0.0, trials: 0.0, decay, prior_mean, prior_weight }
    }

    /// Record one outcome.
    pub fn update(&mut self, success: bool) {
        self.successes = self.successes * self.decay + if success { 1.0 } else { 0.0 };
        self.trials = self.trials * self.decay + 1.0;
    }

    /// Current rate estimate.
    pub fn estimate(&self) -> f64 {
        (self.successes + self.prior_mean * self.prior_weight) / (self.trials + self.prior_weight)
    }

    /// Effective number of observed trials (decayed).
    pub fn trials(&self) -> f64 {
        self.trials
    }
}

/// A family of [`DecayCounter`]s keyed by a feature (e.g. `(table,
/// column)` for selection survival). Unknown keys report the prior.
///
/// Keys are tuples, which JSON cannot use as object keys; the serde
/// layer represents maps as lists of pairs, so they survive JSON as-is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyedCounters<K: Eq + Hash + Clone> {
    counters: HashMap<K, DecayCounter>,
    decay: f64,
    prior_mean: f64,
    prior_weight: f64,
}

impl<K: Eq + Hash + Clone> KeyedCounters<K> {
    /// Family with shared decay and prior.
    pub fn new(decay: f64, prior_mean: f64, prior_weight: f64) -> Self {
        KeyedCounters { counters: HashMap::new(), decay, prior_mean, prior_weight }
    }

    /// Record an outcome for a key.
    pub fn update(&mut self, key: K, success: bool) {
        let (decay, pm, pw) = (self.decay, self.prior_mean, self.prior_weight);
        self.counters
            .entry(key)
            .or_insert_with(|| DecayCounter::new(decay, pm, pw))
            .update(success);
    }

    /// Estimate for a key (prior mean when unseen).
    pub fn estimate(&self, key: &K) -> f64 {
        self.counters.get(key).map(|c| c.estimate()).unwrap_or(self.prior_mean)
    }

    /// Number of distinct keys observed.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_dominates_early() {
        let c = DecayCounter::new(1.0, 0.8, 2.0);
        assert!((c.estimate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn converges_to_observed_rate() {
        let mut c = DecayCounter::new(1.0, 0.5, 2.0);
        for i in 0..1000 {
            c.update(i % 4 != 0); // 75% success
        }
        assert!((c.estimate() - 0.75).abs() < 0.02, "{}", c.estimate());
    }

    #[test]
    fn decay_forgets_old_behaviour() {
        let mut c = DecayCounter::new(0.9, 0.5, 1.0);
        for _ in 0..50 {
            c.update(true);
        }
        assert!(c.estimate() > 0.9);
        for _ in 0..50 {
            c.update(false);
        }
        assert!(c.estimate() < 0.2, "old successes must fade: {}", c.estimate());
    }

    #[test]
    fn keyed_counters_isolate_keys() {
        let mut k: KeyedCounters<&str> = KeyedCounters::new(1.0, 0.5, 1.0);
        for _ in 0..20 {
            k.update("a", true);
            k.update("b", false);
        }
        assert!(k.estimate(&"a") > 0.9);
        assert!(k.estimate(&"b") < 0.1);
        assert!((k.estimate(&"unseen") - 0.5).abs() < 1e-9);
        assert_eq!(k.len(), 2);
    }

    #[test]
    fn trials_decay() {
        let mut c = DecayCounter::new(0.5, 0.5, 0.0);
        c.update(true);
        c.update(true);
        // trials = 1*0.5 + 1 = 1.5
        assert!((c.trials() - 1.5).abs() < 1e-9);
    }
}
