//! The Learner (paper Section 3.4) and the [`Profile`] abstraction.
//!
//! The Learner watches the user's on-screen actions and trains three
//! families of estimators:
//!
//! 1. **survival** — once a part (selection or join edge) appears in the
//!    partial query, will it still be present when GO is pressed? This
//!    approximates the `f⊆(qm)` term of Theorem 3.1 (as the product of
//!    per-part survival probabilities).
//! 2. **persistence** — will a part of this final query reappear in the
//!    next final query? (Drives the depth-n cost model and amortized
//!    reuse of materializations.)
//! 3. **think time** — how long do formulations last? (Drives the
//!    completion-probability factor.)
//!
//! Counters ([`survival::KeyedCounters`]) are the default; an online
//! logistic regression ([`logistic::OnlineLogistic`]) is available as an
//! alternative survival estimator for the learner ablation.

pub mod logistic;
pub mod predict;
pub mod survival;
pub mod think;

use logistic::OnlineLogistic;
use predict::EditPredictor;
use serde::{Deserialize, Serialize};
use specdb_query::{EditOp, Join, PartialQuery, QueryGraph, Selection};
use specdb_storage::VirtualTime;
use std::collections::HashMap;
use survival::{DecayCounter, KeyedCounters};
use think::ThinkTimeModel;

/// Supplies the probability terms the cost model needs.
pub trait Profile {
    /// P(this selection edge survives to the final query).
    fn p_selection_survives(&self, s: &Selection) -> f64;
    /// P(this join edge survives to the final query).
    fn p_join_survives(&self, j: &Join) -> f64;
    /// P(a selection edge of the final query persists into the next one).
    fn p_selection_persists(&self) -> f64;
    /// P(a join edge of the final query persists into the next one).
    fn p_join_persists(&self) -> f64;
    /// P(think time exceeds `elapsed + additional`, given `elapsed`).
    fn p_think_exceeds(&self, elapsed: VirtualTime, additional: VirtualTime) -> f64;

    /// Top-`k` predicted *completed* queries reachable from the current
    /// partial, each with its sequence probability (whole-query
    /// speculation, ROADMAP item 2). Profiles without a predictive edit
    /// model return no candidates.
    fn predict_completions(&self, _partial: &QueryGraph, _k: usize) -> Vec<(QueryGraph, f64)> {
        Vec::new()
    }

    /// `f⊆(qm)`: P(every part of `qm` survives to the final query),
    /// under per-part independence.
    fn p_contained(&self, qm: &QueryGraph) -> f64 {
        let sels: f64 = qm.selections().map(|s| self.p_selection_survives(s)).product();
        let joins: f64 = qm.joins().map(|j| self.p_join_survives(j)).product();
        (sels * joins).clamp(0.0, 1.0)
    }

    /// P(every part of `qm` persists into the next query).
    fn p_graph_persists(&self, qm: &QueryGraph) -> f64 {
        let s = self.p_selection_persists().powi(qm.selection_count() as i32);
        let j = self.p_join_persists().powi(qm.join_count() as i32);
        (s * j).clamp(0.0, 1.0)
    }
}

/// A profile with fixed probabilities everywhere — the "no learning"
/// baseline of the learner ablation.
#[derive(Debug, Clone)]
pub struct UniformProfile {
    /// The constant probability returned for survival and persistence.
    pub p: f64,
    /// Mean think time (seconds) for the exponential think model.
    pub think_mean_secs: f64,
}

impl Default for UniformProfile {
    fn default() -> Self {
        UniformProfile { p: 0.5, think_mean_secs: 28.0 }
    }
}

impl Profile for UniformProfile {
    fn p_selection_survives(&self, _: &Selection) -> f64 {
        self.p
    }
    fn p_join_survives(&self, _: &Join) -> f64 {
        self.p
    }
    fn p_selection_persists(&self) -> f64 {
        self.p
    }
    fn p_join_persists(&self) -> f64 {
        self.p
    }
    fn p_think_exceeds(&self, _elapsed: VirtualTime, additional: VirtualTime) -> f64 {
        (-additional.as_secs_f64() / self.think_mean_secs.max(1e-6)).exp()
    }
}

/// A profile configured with the *true* parameters of the synthetic user
/// model — the upper bound of the learner ablation.
#[derive(Debug, Clone)]
pub struct OracleProfile {
    /// True selection survival probability.
    pub sel_survival: f64,
    /// True join survival probability.
    pub join_survival: f64,
    /// True selection persistence probability.
    pub sel_persistence: f64,
    /// True join persistence probability.
    pub join_persistence: f64,
    /// True mean think time in seconds.
    pub think_mean_secs: f64,
}

impl Profile for OracleProfile {
    fn p_selection_survives(&self, _: &Selection) -> f64 {
        self.sel_survival
    }
    fn p_join_survives(&self, _: &Join) -> f64 {
        self.join_survival
    }
    fn p_selection_persists(&self) -> f64 {
        self.sel_persistence
    }
    fn p_join_persists(&self) -> f64 {
        self.join_persistence
    }
    fn p_think_exceeds(&self, _elapsed: VirtualTime, additional: VirtualTime) -> f64 {
        (-additional.as_secs_f64() / self.think_mean_secs.max(1e-6)).exp()
    }
}

/// Which survival estimator the learner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SurvivalMode {
    /// Per-`(table, column)` decayed counters (default).
    #[default]
    Counting,
    /// Online logistic regression over hashed features.
    Logistic,
}

/// Learner configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Forgetting factor for all counters.
    pub decay: f64,
    /// Prior survival probability (parts usually survive: the paper's
    /// users kept selections for ~3 queries once placed).
    pub survival_prior: f64,
    /// Prior persistence probability.
    pub persistence_prior: f64,
    /// Pseudo-trials backing the priors.
    pub prior_weight: f64,
    /// Survival estimator choice.
    pub mode: SurvivalMode,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            decay: 0.995,
            survival_prior: 0.8,
            persistence_prior: 0.6,
            prior_weight: 4.0,
            mode: SurvivalMode::Counting,
        }
    }
}

/// Keys for tracked parts during a formulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Part {
    Sel(Selection),
    Join(Join),
}

/// The Learner: observes the edit stream and implements [`Profile`].
///
/// Profiles are serializable: the paper's Learner "observes users over
/// time", across sessions — persist with [`Learner::to_json`] and
/// restore with [`Learner::from_json`].
#[derive(Serialize, Deserialize)]
pub struct Learner {
    config: LearnerConfig,
    sel_survival: KeyedCounters<(String, String)>,
    join_survival: KeyedCounters<(String, String, String, String)>,
    logistic: OnlineLogistic,
    sel_persist: DecayCounter,
    join_persist: DecayCounter,
    think: ThinkTimeModel,
    #[serde(default)]
    predictor: EditPredictor,
    // Formulation-tracking state: transient, per-formulation — not part
    // of the persisted profile.
    #[serde(skip)]
    mirror: PartialQuery,
    #[serde(skip)]
    history: Vec<EditOp>,
    #[serde(skip)]
    seen: HashMap<Part, ()>,
    #[serde(skip)]
    formulation_start: Option<VirtualTime>,
    #[serde(skip)]
    prev_final: Option<QueryGraph>,
    observed_gos: u64,
}

impl Default for Learner {
    fn default() -> Self {
        Self::new(LearnerConfig::default())
    }
}

impl Learner {
    /// Learner with the given configuration.
    pub fn new(config: LearnerConfig) -> Self {
        let decay = config.decay;
        Learner {
            sel_survival: KeyedCounters::new(decay, config.survival_prior, config.prior_weight),
            join_survival: KeyedCounters::new(decay, config.survival_prior, config.prior_weight),
            logistic: OnlineLogistic::default(),
            sel_persist: DecayCounter::new(decay, config.persistence_prior, config.prior_weight),
            join_persist: DecayCounter::new(decay, config.persistence_prior, config.prior_weight),
            think: ThinkTimeModel::default(),
            predictor: EditPredictor::default(),
            mirror: PartialQuery::new(),
            history: Vec::new(),
            seen: HashMap::new(),
            formulation_start: None,
            prev_final: None,
            observed_gos: 0,
            config,
        }
    }

    /// Number of GO events observed (≈ training examples seen).
    pub fn observed_gos(&self) -> u64 {
        self.observed_gos
    }

    /// The learner's mirror of the current partial query.
    pub fn partial(&self) -> &QueryGraph {
        self.mirror.graph()
    }

    /// Virtual time the current formulation started, if one is active.
    pub fn formulation_start(&self) -> Option<VirtualTime> {
        self.formulation_start
    }

    /// Observe one user edit at virtual time `at`. GO events must be
    /// reported through [`Learner::observe_go`] instead (the learner
    /// needs the final graph).
    pub fn observe_edit(&mut self, at: VirtualTime, op: &EditOp) {
        if self.formulation_start.is_none() {
            self.formulation_start = Some(at);
        }
        // Track which parts appear during this formulation. Removing a
        // relation cascades, so capture the attached parts first.
        match op {
            EditOp::AddSelection(s) => {
                self.seen.insert(Part::Sel(s.clone()), ());
            }
            EditOp::UpdateSelection { new, .. } => {
                self.seen.insert(Part::Sel(new.clone()), ());
            }
            EditOp::AddJoin(j) => {
                self.seen.insert(Part::Join(j.clone()), ());
            }
            _ => {}
        }
        self.history.push(op.clone());
        self.mirror.apply(op);
    }

    /// Observe the GO event: train survival on every part seen during the
    /// formulation, persistence against the previous final query, and the
    /// think-time model on the formulation duration.
    pub fn observe_go(&mut self, at: VirtualTime, final_graph: &QueryGraph) {
        for (part, ()) in std::mem::take(&mut self.seen) {
            match part {
                Part::Sel(s) => {
                    let survived = final_graph.selections().any(|fs| fs == &s);
                    self.sel_survival.update((s.rel.clone(), s.pred.column.clone()), survived);
                    self.logistic.update(&s, survived);
                }
                Part::Join(j) => {
                    let survived = final_graph.joins().any(|fj| fj == &j);
                    self.join_survival.update(
                        (j.left.clone(), j.lcol.clone(), j.right.clone(), j.rcol.clone()),
                        survived,
                    );
                }
            }
        }
        if let Some(prev) = &self.prev_final {
            for s in prev.selections() {
                self.sel_persist.update(final_graph.selections().any(|fs| fs == s));
            }
            for j in prev.joins() {
                self.join_persist.update(final_graph.joins().any(|fj| fj == j));
            }
        }
        if let Some(start) = self.formulation_start.take() {
            self.think.observe(at.saturating_sub(start));
        }
        self.predictor.observe_formulation(&std::mem::take(&mut self.history));
        self.prev_final = Some(final_graph.clone());
        self.mirror = PartialQuery::from_query(specdb_query::Query::star(final_graph.clone()));
        self.observed_gos += 1;
    }

    /// Access to the think-time model (read-only).
    pub fn think_model(&self) -> &ThinkTimeModel {
        &self.think
    }

    /// Access to the edit-sequence predictor (read-only).
    pub fn predictor(&self) -> &EditPredictor {
        &self.predictor
    }

    /// Train the predictive edit model on one completed formulation
    /// without touching the survival/persistence/think estimators —
    /// the offline path for trace-corpus training splits.
    pub fn train_predictor(&mut self, formulation_ops: &[EditOp]) {
        self.predictor.observe_formulation(formulation_ops);
    }

    /// Serialize the trained profile (cross-session persistence).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("learner state is always serializable")
    }

    /// Restore a profile saved with [`Learner::to_json`].
    pub fn from_json(json: &str) -> Result<Learner, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl Profile for Learner {
    fn p_selection_survives(&self, s: &Selection) -> f64 {
        match self.config.mode {
            SurvivalMode::Counting => {
                self.sel_survival.estimate(&(s.rel.clone(), s.pred.column.clone()))
            }
            SurvivalMode::Logistic => {
                if self.logistic.updates() < 10 {
                    self.config.survival_prior
                } else {
                    self.logistic.predict(s)
                }
            }
        }
    }

    fn p_join_survives(&self, j: &Join) -> f64 {
        self.join_survival.estimate(&(
            j.left.clone(),
            j.lcol.clone(),
            j.right.clone(),
            j.rcol.clone(),
        ))
    }

    fn p_selection_persists(&self) -> f64 {
        self.sel_persist.estimate()
    }

    fn p_join_persists(&self) -> f64 {
        self.join_persist.estimate()
    }

    fn p_think_exceeds(&self, elapsed: VirtualTime, additional: VirtualTime) -> f64 {
        self.think.p_exceeds(elapsed, additional)
    }

    fn predict_completions(&self, partial: &QueryGraph, k: usize) -> Vec<(QueryGraph, f64)> {
        self.predictor.predict(&self.history, partial, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_query::{CompareOp, Predicate};

    fn sel(col: &str, v: i64) -> Selection {
        Selection::new("orders", Predicate::new(col, CompareOp::Lt, v))
    }

    fn secs(s: u64) -> VirtualTime {
        VirtualTime::from_secs(s)
    }

    #[test]
    fn survival_learned_from_removals() {
        let mut l = Learner::default();
        // Column "flaky" is always recanted; "solid" always survives.
        for q in 0..40 {
            let t0 = secs(q * 100);
            let flaky = sel("flaky", q as i64);
            let solid = sel("solid", q as i64);
            l.observe_edit(t0, &EditOp::AddSelection(flaky.clone()));
            l.observe_edit(t0 + secs(2), &EditOp::AddSelection(solid.clone()));
            l.observe_edit(t0 + secs(4), &EditOp::RemoveSelection(flaky.clone()));
            let mut final_graph = QueryGraph::new();
            final_graph.add_selection(solid.clone());
            l.observe_go(t0 + secs(10), &final_graph);
        }
        assert!(l.p_selection_survives(&sel("solid", 999)) > 0.85);
        assert!(l.p_selection_survives(&sel("flaky", 999)) < 0.3);
        assert_eq!(l.observed_gos(), 40);
    }

    #[test]
    fn persistence_learned_across_queries() {
        let mut l = Learner::default();
        let keeper = sel("kept", 1);
        for q in 0..30 {
            let t0 = secs(q * 100);
            let churn = sel("churn", q as i64);
            l.observe_edit(t0, &EditOp::AddSelection(keeper.clone()));
            l.observe_edit(t0, &EditOp::AddSelection(churn.clone()));
            let mut fg = QueryGraph::new();
            fg.add_selection(keeper.clone());
            fg.add_selection(churn.clone());
            l.observe_go(t0 + secs(10), &fg);
        }
        // Each query keeps `keeper` and replaces `churn`: of the two
        // selections in the previous final, one persists → ~0.5.
        let p = l.p_selection_persists();
        assert!((0.35..0.7).contains(&p), "{p}");
    }

    #[test]
    fn think_time_observed() {
        let mut l = Learner::default();
        l.observe_edit(secs(0), &EditOp::AddSelection(sel("a", 1)));
        let mut fg = QueryGraph::new();
        fg.add_selection(sel("a", 1));
        l.observe_go(secs(42), &fg);
        assert_eq!(l.think_model().samples(), 1);
        assert!((l.think_model().mean_secs() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn p_contained_is_product() {
        let profile = UniformProfile { p: 0.5, think_mean_secs: 28.0 };
        let mut g = QueryGraph::new();
        g.add_selection(sel("a", 1));
        g.add_selection(sel("b", 2));
        assert!((profile.p_contained(&g) - 0.25).abs() < 1e-9);
        g.add_join(Join::new("orders", "o_custkey", "customer", "c_custkey"));
        assert!((profile.p_contained(&g) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn oracle_profile_reports_configured_values() {
        let o = OracleProfile {
            sel_survival: 0.9,
            join_survival: 0.95,
            sel_persistence: 0.7,
            join_persistence: 0.9,
            think_mean_secs: 28.0,
        };
        assert_eq!(o.p_selection_survives(&sel("x", 1)), 0.9);
        assert_eq!(o.p_join_persists(), 0.9);
        let mut g = QueryGraph::new();
        g.add_join(Join::new("a", "x", "b", "y"));
        assert!((o.p_graph_persists(&g) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn logistic_mode_falls_back_until_trained() {
        let cfg = LearnerConfig { mode: SurvivalMode::Logistic, ..Default::default() };
        let l = Learner::new(cfg);
        assert!((l.p_selection_survives(&sel("a", 1)) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn profile_persists_across_sessions() {
        // Train, save, restore: the restored profile must report the
        // same learned probabilities.
        let mut l = Learner::default();
        for q in 0..30 {
            let t0 = secs(q * 100);
            let keep = sel("kept", 1);
            let drop_ = sel("dropped", q as i64);
            l.observe_edit(t0, &EditOp::AddSelection(keep.clone()));
            l.observe_edit(t0, &EditOp::AddSelection(drop_.clone()));
            l.observe_edit(t0 + secs(1), &EditOp::RemoveSelection(drop_));
            let mut fg = QueryGraph::new();
            fg.add_selection(keep);
            l.observe_go(t0 + secs(20), &fg);
        }
        let json = l.to_json();
        let restored = Learner::from_json(&json).expect("round trip");
        for probe in [sel("kept", 99), sel("dropped", 99), sel("never_seen", 1)] {
            assert!(
                (l.p_selection_survives(&probe) - restored.p_selection_survives(&probe)).abs()
                    < 1e-12,
                "{probe:?}"
            );
        }
        assert_eq!(l.observed_gos(), restored.observed_gos());
        assert!(
            (l.p_think_exceeds(secs(0), secs(10)) - restored.p_think_exceeds(secs(0), secs(10)))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn untrained_learner_uses_priors() {
        let l = Learner::default();
        assert!((l.p_selection_survives(&sel("a", 1)) - 0.8).abs() < 1e-9);
        assert!((l.p_selection_persists() - 0.6).abs() < 1e-9);
    }
}
