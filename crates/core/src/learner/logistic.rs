//! Online logistic regression over hashed edit features.
//!
//! An alternative survival estimator to the per-key counters: features of
//! a selection edge (table, column, operator, constant magnitude) are
//! hashed into a fixed-width weight vector trained by SGD. Generalizes
//! across predicates the counters treat as unrelated keys; the
//! learner-ablation bench compares the two.

use serde::{Deserialize, Serialize};
use specdb_query::{CompareOp, Selection};
use std::hash::{Hash, Hasher};

/// Width of the hashed feature space.
const DIM: usize = 64;

/// An online binary logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineLogistic {
    weights: Vec<f64>,
    bias: f64,
    lr: f64,
    updates: u64,
}

impl Default for OnlineLogistic {
    fn default() -> Self {
        Self::new(0.08)
    }
}

fn hash_to_dim(parts: &[&str]) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    (h.finish() % DIM as u64) as usize
}

/// Feature indexes active for a selection.
fn features(s: &Selection) -> Vec<usize> {
    let op = match s.pred.op {
        CompareOp::Eq => "eq",
        CompareOp::Ne => "ne",
        CompareOp::Lt | CompareOp::Le => "lt",
        CompareOp::Gt | CompareOp::Ge => "gt",
    };
    vec![
        hash_to_dim(&["table", &s.rel]),
        hash_to_dim(&["column", &s.rel, &s.pred.column]),
        hash_to_dim(&["op", op]),
        hash_to_dim(&["colop", &s.rel, &s.pred.column, op]),
    ]
}

impl OnlineLogistic {
    /// Model with the given learning rate.
    pub fn new(lr: f64) -> Self {
        OnlineLogistic { weights: vec![0.0; DIM], bias: 0.0, lr, updates: 0 }
    }

    /// Predicted survival probability for a selection.
    pub fn predict(&self, s: &Selection) -> f64 {
        let z: f64 = self.bias + features(s).iter().map(|&i| self.weights[i]).sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    /// SGD update with a binary label.
    pub fn update(&mut self, s: &Selection, survived: bool) {
        let p = self.predict(s);
        let err = (if survived { 1.0 } else { 0.0 }) - p;
        self.bias += self.lr * err;
        for i in features(s) {
            self.weights[i] += self.lr * err;
        }
        self.updates += 1;
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specdb_query::Predicate;

    fn sel(table: &str, col: &str, op: CompareOp, v: i64) -> Selection {
        Selection::new(table, Predicate::new(col, op, v))
    }

    #[test]
    fn starts_at_half() {
        let m = OnlineLogistic::default();
        let p = m.predict(&sel("t", "a", CompareOp::Lt, 5));
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn learns_column_specific_survival() {
        let mut m = OnlineLogistic::default();
        for i in 0..300 {
            m.update(&sel("orders", "o_orderdate", CompareOp::Gt, i), true);
            m.update(&sel("lineitem", "l_quantity", CompareOp::Lt, i), false);
        }
        assert!(m.predict(&sel("orders", "o_orderdate", CompareOp::Gt, 9999)) > 0.8);
        assert!(m.predict(&sel("lineitem", "l_quantity", CompareOp::Lt, -5)) < 0.2);
    }

    #[test]
    fn generalizes_over_constants() {
        let mut m = OnlineLogistic::default();
        for i in 0..200 {
            m.update(&sel("part", "p_size", CompareOp::Eq, i % 10), i % 10 < 8);
        }
        // A never-seen constant still gets the column-level signal (~0.8).
        let p = m.predict(&sel("part", "p_size", CompareOp::Eq, 4242));
        assert!(p > 0.6, "{p}");
    }

    #[test]
    fn update_counter_increments() {
        let mut m = OnlineLogistic::default();
        m.update(&sel("t", "a", CompareOp::Eq, 1), true);
        assert_eq!(m.updates(), 1);
    }
}
